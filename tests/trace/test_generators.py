"""Tests for the synthetic workload generators."""

import pytest

from repro.errors import TraceError
from repro.trace import EventKind, Trace
from repro.trace.generators import (
    c11_trace,
    deadlock_trace,
    history_trace,
    memory_trace,
    racy_trace,
    random_cross_edges,
    tso_trace,
)

ALL_TRACE_GENERATORS = [
    racy_trace, deadlock_trace, memory_trace, tso_trace, c11_trace, history_trace,
]


class TestCommonProperties:
    @pytest.mark.parametrize("generator", ALL_TRACE_GENERATORS)
    def test_determinism(self, generator):
        first = generator(seed=42)
        second = generator(seed=42)
        assert list(first.events) == list(second.events)

    @pytest.mark.parametrize("generator", ALL_TRACE_GENERATORS)
    def test_different_seeds_differ(self, generator):
        first = generator(seed=1)
        second = generator(seed=2)
        assert list(first.events) != list(second.events)

    @pytest.mark.parametrize("generator", ALL_TRACE_GENERATORS)
    def test_thread_count_respected(self, generator):
        trace = generator(num_threads=3, seed=0)
        assert trace.num_threads == 3

    @pytest.mark.parametrize("generator", [racy_trace, deadlock_trace, memory_trace,
                                           tso_trace, c11_trace])
    def test_invalid_parameters_rejected(self, generator):
        with pytest.raises(TraceError):
            generator(num_threads=0)
        with pytest.raises(TraceError):
            generator(events_per_thread=0)


class TestRacyTrace:
    def test_event_budget_respected(self):
        trace = racy_trace(num_threads=4, events_per_thread=50, seed=1)
        for thread in trace.threads:
            assert trace.thread_length(thread) == 50

    def test_locks_are_balanced(self):
        trace = racy_trace(num_threads=4, events_per_thread=60, seed=2)
        trace.critical_sections()  # raises on unbalanced locking

    def test_contains_unprotected_conflicts(self):
        trace = racy_trace(num_threads=4, events_per_thread=100,
                           protected_fraction=0.2, seed=3)
        grouped = trace.accesses_by_variable()
        assert any(
            len({event.thread for event in events}) > 1 for events in grouped.values()
        )


class TestDeadlockTrace:
    def test_contains_nested_critical_sections(self):
        trace = deadlock_trace(num_threads=4, events_per_thread=120, seed=1)
        held = trace.locks_held_map()
        assert any(len(locks) >= 2 for locks in held.values())

    def test_locks_are_balanced(self):
        trace = deadlock_trace(num_threads=3, events_per_thread=90, seed=5)
        trace.critical_sections()


class TestMemoryTrace:
    def test_objects_are_allocated_before_freed(self):
        trace = memory_trace(num_threads=3, events_per_thread=150, seed=1)
        allocated = set()
        for event in trace:
            if event.kind is EventKind.ALLOC:
                allocated.add(event.variable)
            elif event.kind is EventKind.FREE:
                assert event.variable in allocated

    def test_objects_escape_to_other_threads(self):
        trace = memory_trace(num_threads=4, events_per_thread=200, seed=2)
        allocating = {}
        escaped = False
        for event in trace:
            if event.kind is EventKind.ALLOC:
                allocating[event.variable] = event.thread
            elif event.is_access and event.variable in allocating:
                if event.thread != allocating[event.variable]:
                    escaped = True
        assert escaped


class TestTsoTrace:
    def test_written_values_are_unique(self):
        trace = tso_trace(num_threads=3, events_per_thread=100, seed=1)
        values = [event.value for event in trace if event.is_write]
        assert len(values) == len(set(values))

    def test_reads_observe_written_or_initial_values(self):
        trace = tso_trace(num_threads=3, events_per_thread=100, seed=1)
        written = {event.value for event in trace if event.is_write}
        for event in trace:
            if event.is_read:
                assert event.value == 0 or event.value in written

    def test_no_stale_reads_when_disabled(self):
        trace = tso_trace(num_threads=3, events_per_thread=120,
                          stale_read_fraction=0.0, seed=4)
        last_value = {}
        for event in trace:
            if event.is_write:
                last_value[event.variable] = event.value
            elif event.is_read:
                assert event.value == last_value.get(event.variable, 0)


class TestC11Trace:
    def test_mixes_atomic_and_plain_accesses(self):
        trace = c11_trace(num_threads=4, events_per_thread=150, seed=1)
        assert any(event.atomic for event in trace)
        assert any(event.is_access and not event.atomic for event in trace)

    def test_atomic_events_have_memory_orders(self):
        trace = c11_trace(num_threads=3, events_per_thread=100, seed=2)
        for event in trace:
            if event.atomic:
                assert event.memory_order is not None


class TestHistoryTrace:
    def test_begin_end_events_are_balanced(self):
        trace = history_trace(num_threads=3, operations_per_thread=20, seed=1)
        pending = {}
        for event in trace:
            if event.kind is EventKind.BEGIN:
                assert event.thread not in pending
                pending[event.thread] = event
            elif event.kind is EventKind.END:
                begin = pending.pop(event.thread)
                assert begin.operation == event.operation
        assert not pending

    def test_operation_count(self):
        trace = history_trace(num_threads=3, operations_per_thread=15, seed=2)
        begins = sum(1 for event in trace if event.kind is EventKind.BEGIN)
        assert begins == 45

    def test_operations_overlap(self):
        trace = history_trace(num_threads=3, operations_per_thread=20,
                              overlap=0.7, seed=3)
        open_count = 0
        max_open = 0
        for event in trace:
            if event.kind is EventKind.BEGIN:
                open_count += 1
                max_open = max(max_open, open_count)
            elif event.kind is EventKind.END:
                open_count -= 1
        assert max_open >= 2

    @pytest.mark.parametrize("structure", ["set", "queue", "register"])
    def test_supported_data_structures(self, structure):
        trace = history_trace(num_threads=2, operations_per_thread=10,
                              data_structure=structure, seed=1)
        assert len(trace) == 2 * 2 * 10

    def test_unknown_structure_rejected(self):
        with pytest.raises(TraceError):
            history_trace(data_structure="btree")

    def test_invalid_overlap_rejected(self):
        with pytest.raises(TraceError):
            history_trace(overlap=1.5)


class TestRandomCrossEdges:
    def test_edges_respect_window_and_chains(self):
        edges = random_cross_edges(4, 1000, 200, window=50, seed=1)
        assert len(edges) == 200
        for (source_chain, source_index), (target_chain, target_index) in edges:
            assert source_chain != target_chain
            assert abs(source_index - target_index) <= 50
            assert 0 <= source_index < 1000
            assert 0 <= target_index < 1000

    def test_requires_two_chains(self):
        with pytest.raises(TraceError):
            random_cross_edges(1, 100, 10)

    def test_determinism(self):
        assert random_cross_edges(3, 100, 50, seed=9) == random_cross_edges(3, 100, 50, seed=9)


class TestGeneratorRegistry:
    def test_every_cli_kind_is_registered(self):
        from repro.trace.generators import GENERATOR_REGISTRY

        classic = {kind for kind, entry in GENERATOR_REGISTRY.items()
                   if entry.source == "classic"}
        scenario = {kind for kind, entry in GENERATOR_REGISTRY.items()
                    if entry.source == "scenario"}
        assert classic == {
            "racy", "deadlock", "memory", "tso", "c11", "history"}
        assert scenario == {
            "locked-mix", "producer-consumer", "mpmc-queue",
            "barrier-phases", "fork-join", "heap-churn"}
        assert classic | scenario == set(GENERATOR_REGISTRY)

    def test_get_generator_rejects_unknown_kind(self):
        from repro.trace.generators import get_generator

        with pytest.raises(TraceError, match="unknown trace kind"):
            get_generator("quantum")

    def test_build_trace_uniform_size_vocabulary(self):
        from repro.trace.generators import build_trace

        racy = build_trace("racy", num_threads=2, events=30, seed=1)
        assert len(racy) == 60
        history = build_trace("history", num_threads=2, events=5, seed=1)
        begins = sum(1 for event in history if event.kind is EventKind.BEGIN)
        assert begins == 10

    def test_build_trace_forwards_name_and_kwargs(self):
        from repro.trace.generators import build_trace

        trace = build_trace("racy", num_threads=2, events=10, seed=0,
                            name="custom", num_variables=1)
        assert trace.name == "custom"

    def test_register_generator_round_trips(self):
        from repro.trace.generators import (
            GENERATOR_REGISTRY,
            build_trace,
            register_generator,
        )

        try:
            register_generator("tiny", lambda num_threads, events_per_thread,
                               seed=0, name="tiny": Trace(name=name))
            assert len(build_trace("tiny", num_threads=1, events=1)) == 0
        finally:
            GENERATOR_REGISTRY.pop("tiny", None)
