"""Golden fixtures: the ``.stc`` v1 wire format is pinned byte-for-byte.

Each fixture in ``tests/trace/data/`` was produced by the builder of the
same name in ``make_fixtures.py``.  Two assertions per fixture:

* **encode stability** -- building the trace today and encoding it
  yields exactly the checked-in bytes (any drift in interning order,
  section layout, or varint encoding fails loudly);
* **decode compatibility** -- the checked-in bytes decode to a trace
  equal to the built one (old files keep loading).

If a test here fails, either the encoder changed accidentally (fix the
encoder) or the format changed deliberately -- in which case bump
``STC_VERSION``, regenerate with ``make_fixtures.py``, and document the
revision in ``docs/formats.md``.
"""

from __future__ import annotations

import pytest

from make_fixtures import FIXTURES, fixture_path
from repro.trace import STC_MAGIC, decode_trace, encode_trace

FIXTURE_NAMES = sorted(FIXTURES)


@pytest.mark.parametrize("name", FIXTURE_NAMES)
def test_fixture_file_exists(name):
    path = fixture_path(name)
    assert path.is_file(), (
        f"missing golden fixture {path}; generate it with "
        f"'PYTHONPATH=src python tests/trace/make_fixtures.py'")
    assert path.read_bytes()[:4] == STC_MAGIC


@pytest.mark.parametrize("name", FIXTURE_NAMES)
def test_encode_matches_golden_bytes(name):
    built = FIXTURES[name]()
    golden = fixture_path(name).read_bytes()
    encoded = encode_trace(built)
    assert encoded == golden, (
        f"encoder output for {name!r} drifted from the golden fixture "
        f"({len(encoded)} vs {len(golden)} bytes); this is a wire-format "
        f"change -- see the module docstring before regenerating")


@pytest.mark.parametrize("name", FIXTURE_NAMES)
def test_golden_bytes_decode_to_built_trace(name):
    built = FIXTURES[name]()
    loaded = decode_trace(fixture_path(name).read_bytes())
    assert loaded.name == built.name
    assert len(loaded) == len(built)
    assert list(loaded) == list(built)
    assert loaded.threads == built.threads
    for thread in built.threads:
        assert loaded.thread_length(thread) == built.thread_length(thread)


@pytest.mark.parametrize("name", FIXTURE_NAMES)
def test_golden_bytes_reencode_identically(name):
    golden = fixture_path(name).read_bytes()
    assert encode_trace(decode_trace(golden)) == golden
