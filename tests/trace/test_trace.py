"""Tests for the Trace container and its derived indexes."""

import pytest

from repro.errors import TraceError
from repro.trace import Event, EventKind, Trace


@pytest.fixture
def locking_trace():
    trace = Trace(name="locking")
    trace.write(0, "x", value=1)
    trace.acquire(0, "l")
    trace.write(0, "y", value=2)
    trace.release(0, "l")
    trace.acquire(1, "l")
    trace.read(1, "y", value=2)
    trace.release(1, "l")
    trace.read(1, "x", value=1)
    return trace


class TestConstruction:
    def test_append_assigns_per_thread_indices(self):
        trace = Trace()
        first = trace.write(0, "x")
        second = trace.read(1, "x")
        third = trace.write(0, "y")
        assert first.node == (0, 0)
        assert second.node == (1, 0)
        assert third.node == (0, 1)

    def test_len_and_iteration(self, locking_trace):
        assert len(locking_trace) == 8
        assert len(list(locking_trace)) == 8

    def test_indexing_returns_events_in_observed_order(self, locking_trace):
        assert locking_trace[0].kind is EventKind.WRITE
        assert locking_trace[4].kind is EventKind.ACQUIRE

    def test_threads_and_lengths(self, locking_trace):
        assert locking_trace.threads == [0, 1]
        assert locking_trace.num_threads == 2
        assert locking_trace.thread_length(0) == 4
        assert locking_trace.max_thread_length == 4

    def test_thread_events_in_program_order(self, locking_trace):
        indices = [event.index for event in locking_trace.thread_events(0)]
        assert indices == [0, 1, 2, 3]

    def test_event_at_node(self, locking_trace):
        event = locking_trace.event_at((1, 1))
        assert event.kind is EventKind.READ
        assert event.variable == "y"

    def test_event_at_missing_node_raises(self, locking_trace):
        with pytest.raises(TraceError):
            locking_trace.event_at((1, 99))

    def test_prebuilt_events_must_be_contiguous(self):
        good = Event(thread=0, index=0, kind=EventKind.READ, variable="x")
        bad = Event(thread=0, index=5, kind=EventKind.READ, variable="x")
        with pytest.raises(TraceError):
            Trace([good, bad])

    def test_constructor_accepts_well_formed_events(self):
        events = [
            Event(thread=0, index=0, kind=EventKind.WRITE, variable="x"),
            Event(thread=1, index=0, kind=EventKind.READ, variable="x"),
            Event(thread=0, index=1, kind=EventKind.READ, variable="x"),
        ]
        trace = Trace(events)
        assert len(trace) == 3

    def test_convenience_constructors_set_metadata(self):
        trace = Trace()
        assert trace.fork(0, 1).target == 1
        assert trace.join(0, 1).target == 1
        assert trace.alloc(1, "p").variable == "p"
        assert trace.free(1, "p").variable == "p"
        assert trace.begin(2, "add", argument=5).argument == 5
        assert trace.end(2, "add", result=True).result is True
        assert trace.atomic_rmw(3, "a", value=1).atomic


class TestDerivedIndexes:
    def test_accesses_by_variable(self, locking_trace):
        grouped = locking_trace.accesses_by_variable()
        assert {event.thread for event in grouped["x"]} == {0, 1}
        assert len(grouped["y"]) == 2

    def test_writes_by_variable(self, locking_trace):
        grouped = locking_trace.writes_by_variable()
        assert len(grouped["x"]) == 1
        assert "l" not in grouped

    def test_reads_from_maps_to_latest_write(self, locking_trace):
        mapping = locking_trace.reads_from()
        read_y = locking_trace.event_at((1, 1))
        assert mapping[read_y].node == (0, 2)

    def test_reads_from_without_writer_is_none(self):
        trace = Trace()
        read = trace.read(0, "never_written")
        assert trace.reads_from()[read] is None

    def test_critical_sections_extraction(self, locking_trace):
        sections = locking_trace.critical_sections()
        assert len(sections) == 2
        first, second = sections
        assert first.thread == 0 and second.thread == 1
        assert first.release is not None
        assert first.contains(locking_trace.event_at((0, 2)))
        assert not first.contains(locking_trace.event_at((0, 0)))

    def test_unbalanced_release_raises(self):
        trace = Trace()
        trace.release(0, "l")
        with pytest.raises(TraceError):
            trace.critical_sections()

    def test_unclosed_critical_section_allowed(self):
        trace = Trace()
        trace.acquire(0, "l")
        trace.write(0, "x")
        sections = trace.critical_sections()
        assert sections[0].release is None
        assert sections[0].contains(trace.event_at((0, 1)))

    def test_critical_sections_returns_fresh_objects(self):
        """Mutating a returned section must not corrupt the trace's index,
        and a section handed out while open must not change under the
        caller when the release arrives later (streaming ingestion)."""
        trace = Trace()
        trace.acquire(0, "l")
        trace.write(0, "x")
        open_view = trace.critical_sections()[0]
        assert open_view.release is None
        release = trace.release(0, "l")
        # The earlier snapshot is unaffected; a fresh call sees the close.
        assert open_view.release is None
        assert trace.critical_sections()[0].release is release
        # Caller-side mutation does not leak back into the trace.
        tampered = trace.critical_sections()
        tampered[0].release = None
        assert trace.critical_sections()[0].release is release

    def test_locks_held_at(self, locking_trace):
        inside = locking_trace.event_at((0, 2))
        outside = locking_trace.event_at((0, 0))
        assert locking_trace.locks_held_at(inside) == frozenset({"l"})
        assert locking_trace.locks_held_at(outside) == frozenset()

    def test_locks_held_map_matches_point_queries(self, locking_trace):
        held_map = locking_trace.locks_held_map()
        for event in locking_trace:
            assert held_map[event.node] == locking_trace.locks_held_at(event)

    def test_nested_locks_held(self):
        trace = Trace()
        trace.acquire(0, "a")
        trace.acquire(0, "b")
        trace.write(0, "x")
        trace.release(0, "b")
        trace.write(0, "y")
        held_map = trace.locks_held_map()
        assert held_map[(0, 2)] == frozenset({"a", "b"})
        assert held_map[(0, 4)] == frozenset({"a"})

    def test_fork_join_edges(self):
        trace = Trace()
        trace.fork(0, 1)
        trace.write(1, "x")
        trace.write(1, "y")
        trace.join(0, 1)
        edges = trace.fork_join_edges()
        assert ((0, 0), (1, 0)) in edges
        assert ((1, 1), (0, 1)) in edges

    def test_fork_to_unknown_thread_produces_no_edge(self):
        trace = Trace()
        trace.fork(0, 9)
        assert trace.fork_join_edges() == []
