"""Columnar trace view: encoding correctness, interning, incremental sync."""

from repro.trace import Trace
from repro.trace.columns import (
    ACQUIRE_CODE,
    ALLOC_CODE,
    FREE_CODE,
    KIND_BY_CODE,
    KIND_CODES,
    RELEASE_CODE,
    TraceColumns,
)
from repro.trace.event import EventKind, MemoryOrder
from repro.trace.generators import c11_trace, memory_trace, racy_trace


def test_kind_codes_are_dense_and_invertible():
    assert sorted(KIND_CODES.values()) == list(range(len(EventKind)))
    for kind, code in KIND_CODES.items():
        assert KIND_BY_CODE[code] is kind
    assert KIND_BY_CODE[ACQUIRE_CODE] is EventKind.ACQUIRE
    assert KIND_BY_CODE[RELEASE_CODE] is EventKind.RELEASE
    assert KIND_BY_CODE[ALLOC_CODE] is EventKind.ALLOC
    assert KIND_BY_CODE[FREE_CODE] is EventKind.FREE


def _assert_columns_mirror_events(trace):
    columns = trace.columns()
    assert len(columns) == len(trace)
    for position, event in enumerate(trace):
        assert KIND_BY_CODE[columns.kinds[position]] is event.kind
        assert columns.threads[position] == event.thread
        assert columns.indexes[position] == event.index
        assert bool(columns.access_flags[position]) == event.is_access
        assert bool(columns.read_flags[position]) == event.is_read
        assert bool(columns.write_flags[position]) == event.is_write
        assert bool(columns.atomic_flags[position]) == event.atomic
        if event.variable is None:
            assert columns.var_ids[position] == -1
        else:
            var_id = columns.var_ids[position]
            assert columns.variables[var_id] == event.variable
            assert columns.variable_id(event.variable) == var_id
        if event.memory_order is None:
            assert not columns.acquire_mo_flags[position]
            assert not columns.release_mo_flags[position]
        else:
            assert bool(columns.acquire_mo_flags[position]) \
                == event.memory_order.is_acquire
            assert bool(columns.release_mo_flags[position]) \
                == event.memory_order.is_release
        assert columns.events[position] is event
    # Per-thread positions list the global positions in program order.
    for thread in trace.threads:
        positions = columns.thread_positions[thread]
        assert [columns.events[p] for p in positions] \
            == list(trace.thread_events(thread))


def test_columns_mirror_racy_trace():
    _assert_columns_mirror_events(racy_trace(num_threads=3,
                                             events_per_thread=60, seed=1))


def test_columns_mirror_c11_trace():
    _assert_columns_mirror_events(c11_trace(num_threads=4,
                                            events_per_thread=50, seed=2))


def test_columns_mirror_memory_trace():
    _assert_columns_mirror_events(memory_trace(num_threads=3,
                                               events_per_thread=50, seed=3))


def test_columns_view_is_cached_and_incremental():
    trace = Trace(name="live")
    trace.write(0, "x", value=1)
    columns = trace.columns()
    assert columns is trace.columns()  # same cached view
    assert len(columns) == 1
    trace.atomic_write(1, "a", value=2, memory_order=MemoryOrder.RELEASE)
    trace.read(0, "x")
    # The view advances in place on the next access.
    assert trace.columns() is columns
    assert len(columns) == 3
    assert bool(columns.atomic_flags[1])
    assert bool(columns.release_mo_flags[1])
    assert bool(columns.read_flags[2])
    assert columns.thread_positions == {0: [0, 2], 1: [1]}


def test_interning_is_stable_across_appends():
    trace = Trace(name="intern")
    trace.write(0, "x")
    trace.columns()
    trace.write(1, "y")
    trace.write(0, "x")
    columns = trace.columns()
    assert columns.var_ids[0] == columns.var_ids[2]
    assert columns.var_ids[1] != columns.var_ids[0]
    assert columns.variables[columns.var_ids[1]] == "y"


def test_standalone_columns_over_event_list():
    trace = racy_trace(num_threads=2, events_per_thread=20, seed=9)
    events = list(trace)
    columns = TraceColumns(events).sync()
    assert len(columns) == len(events)
    assert columns.variable_id("never-seen") == -1
