"""Tests for the trace metrics module."""

import pytest

from repro.trace import Trace, compute_metrics
from repro.trace.generators import deadlock_trace, racy_trace, tso_trace


@pytest.fixture
def small_trace():
    trace = Trace(name="metrics")
    trace.write(0, "x", value=1)
    trace.acquire(0, "l")
    trace.write(0, "y", value=2)
    trace.release(0, "l")
    trace.acquire(1, "l")
    trace.read(1, "y", value=2)
    trace.release(1, "l")
    trace.read(1, "x", value=1)
    trace.read(0, "x", value=1)
    return trace


class TestComputeMetrics:
    def test_basic_counts(self, small_trace):
        metrics = compute_metrics(small_trace)
        assert metrics.name == "metrics"
        assert metrics.events == 9
        assert metrics.threads == 2
        assert metrics.max_thread_length == 5
        assert metrics.reads == 3
        assert metrics.writes == 2
        assert metrics.variables == 2
        assert metrics.locks == 1
        assert metrics.lock_operations == 4
        assert metrics.critical_sections == 2

    def test_cross_thread_reads(self, small_trace):
        metrics = compute_metrics(small_trace)
        # Reads of thread 1 observe writes of thread 0 (2 of them); the read
        # of thread 0 observes its own write.
        assert metrics.cross_thread_reads == 2
        assert metrics.communication_density == pytest.approx(2 / 9)

    def test_accesses_per_variable(self, small_trace):
        metrics = compute_metrics(small_trace)
        assert metrics.accesses_per_variable == pytest.approx(5 / 2)

    def test_empty_trace(self):
        metrics = compute_metrics(Trace(name="empty"))
        assert metrics.events == 0
        assert metrics.accesses_per_variable == 0.0
        assert metrics.communication_density == 0.0

    def test_max_lock_nesting(self):
        trace = Trace()
        trace.acquire(0, "a")
        trace.acquire(0, "b")
        trace.acquire(0, "c")
        trace.release(0, "c")
        trace.release(0, "b")
        trace.release(0, "a")
        assert compute_metrics(trace).max_lock_nesting == 3

    def test_summary_mentions_key_figures(self, small_trace):
        summary = compute_metrics(small_trace).summary()
        assert "9 events" in summary
        assert "2 threads" in summary
        assert "critical sections" in summary


class TestOnGeneratedWorkloads:
    def test_racy_trace_metrics(self):
        trace = racy_trace(num_threads=4, events_per_thread=100, seed=1)
        metrics = compute_metrics(trace)
        assert metrics.events == len(trace)
        assert metrics.threads == 4
        assert metrics.reads + metrics.writes > 0
        assert 0 <= metrics.communication_density <= 1

    def test_deadlock_trace_has_nesting(self):
        trace = deadlock_trace(num_threads=4, events_per_thread=150, seed=1)
        assert compute_metrics(trace).max_lock_nesting >= 2

    def test_tso_trace_has_no_locks(self):
        trace = tso_trace(num_threads=3, events_per_thread=80, seed=1)
        metrics = compute_metrics(trace)
        assert metrics.locks == 0
        assert metrics.lock_operations == 0
