"""The ``.stc`` binary columnar format: round trips, laziness, integrity.

Four contracts under test:

* **lossless** -- ``decode_trace(encode_trace(t))`` reproduces every
  event, every derived view, and the columnar encoding of ``t``;
* **deterministic** -- the same trace always encodes to the same bytes
  (including through a decode/re-encode cycle);
* **lazy** -- loading and columnar access materialize *zero*
  :class:`Event` objects (proved by substituting a counting stand-in for
  the module-level ``Event`` reference);
* **safe** -- every malformed input (bad magic, bad version, truncation
  at *any* byte, lying section table, out-of-range interned ids,
  inconsistent flag columns) raises :class:`TraceFormatError`, never an
  ``IndexError``/``struct.error`` and never a silently wrong trace.
"""

from __future__ import annotations

import gzip
import struct

import pytest

from repro.errors import TraceFormatError
from repro.trace import (
    STC_MAGIC,
    STC_VERSION,
    Event,
    EventKind,
    MemoryOrder,
    Trace,
    decode_trace,
    dumps_trace,
    encode_trace,
    loads_trace,
    read_trace_stc,
    write_trace_stc,
)
from repro.trace.binfmt import (
    SEC_ACCESS,
    SEC_KINDS,
    SEC_MO_CODES,
    SEC_POSITIONS,
    SEC_THREAD_TABLE,
    SEC_VALUE_IDS,
    SEC_VAR_IDS,
    SECTION_NAMES,
)
from repro.trace.generators import GENERATOR_REGISTRY, build_trace

#: Strings that stress the STD escaping rules; the binary format must
#: carry them untouched too (shared shapes with test_formats.py).
ADVERSARIAL_VALUES = [
    "a|b", "x=y", "line1\nline2", "cr\rlf\n", "back\\slash", "\\p literal",
    "|=\\\n|", "trailing\\", "# trace impostor", "trailing spaces  ",
    "\ttabs\t",
]

_PRELUDE = struct.Struct("<4sHHQI")
_TABLE_ENTRY = struct.Struct("<IQQ")


def rich_trace() -> Trace:
    """Every event kind, every metadata field type, adversarial strings."""
    trace = Trace(name="rich")
    trace.append(0, EventKind.FORK, target=1)
    trace.append(1, EventKind.WRITE, variable="x", value=1)
    trace.append(1, EventKind.READ, variable="x", value=1)
    trace.append(0, EventKind.ACQUIRE, variable="lock")
    trace.append(0, EventKind.WRITE, variable="x", value=True)
    trace.append(0, EventKind.RELEASE, variable="lock")
    trace.append(1, EventKind.ATOMIC_WRITE, variable="flag", value=-7,
                 memory_order=MemoryOrder.RELEASE)
    trace.append(0, EventKind.ATOMIC_READ, variable="flag", value=-7,
                 memory_order=MemoryOrder.ACQUIRE)
    trace.append(0, EventKind.ATOMIC_RMW, variable="ctr", value=2,
                 argument=1, result=2, memory_order=MemoryOrder.ACQ_REL)
    trace.append(1, EventKind.FENCE, memory_order=MemoryOrder.SEQ_CST)
    trace.append(0, EventKind.ALLOC, variable="heap0")
    trace.append(0, EventKind.FREE, variable="heap0")
    trace.append(1, EventKind.BEGIN, operation="enqueue", argument=41)
    trace.append(1, EventKind.END, operation="enqueue", result=True)
    trace.append(0, EventKind.JOIN, target=1)
    for position, value in enumerate(ADVERSARIAL_VALUES):
        trace.append(2, EventKind.WRITE, variable=value, value=value)
    trace.append(2, EventKind.WRITE, variable=MemoryOrder.SEQ_CST,
                 value=MemoryOrder.RELAXED)
    trace.append(2, EventKind.WRITE, variable=12345678901234,
                 value=-98765432109876)
    return trace


def generator_trace(kind: str = "c11") -> Trace:
    return build_trace(kind, num_threads=3, events=20, seed=7)


def section_table(blob: bytes):
    """Parse the section table: ``{section_id: (offset, length)}``."""
    _magic, _version, _flags, _count, section_count = _PRELUDE.unpack_from(
        blob, 0)
    table = {}
    for position in range(section_count):
        section_id, offset, length = _TABLE_ENTRY.unpack_from(
            blob, _PRELUDE.size + position * _TABLE_ENTRY.size)
        table[section_id] = (offset, length)
    return table


def patch_section(blob: bytes, section_id: int, position: int,
                  replacement: bytes) -> bytes:
    """Overwrite bytes at ``position`` inside one section's payload."""
    offset, length = section_table(blob)[section_id]
    assert position + len(replacement) <= length, "patch escapes section"
    start = offset + position
    return blob[:start] + replacement + blob[start + len(replacement):]


def assert_traces_equal(left: Trace, right: Trace) -> None:
    assert left.name == right.name
    assert len(left) == len(right)
    assert list(left) == list(right)
    assert left.threads == right.threads
    for thread in left.threads:
        assert left.thread_length(thread) == right.thread_length(thread)


# --------------------------------------------------------------------------- #
# Round trips
# --------------------------------------------------------------------------- #
class TestRoundTrip:
    def test_rich_trace_round_trips(self):
        trace = rich_trace()
        loaded = decode_trace(encode_trace(trace))
        assert_traces_equal(trace, loaded)

    def test_empty_trace_round_trips(self):
        trace = Trace(name="empty")
        blob = encode_trace(trace)
        loaded = decode_trace(blob)
        assert len(loaded) == 0
        assert loaded.name == "empty"
        assert loaded.threads == []
        assert list(loaded) == []
        assert loaded.columns().sync() is loaded.columns()

    def test_single_thread_round_trips(self):
        trace = Trace(name="solo")
        for position in range(5):
            trace.append(3, EventKind.WRITE, variable="v", value=position)
        loaded = decode_trace(encode_trace(trace))
        assert_traces_equal(trace, loaded)
        assert loaded.threads == [3]
        assert loaded.max_thread_length == 5

    @pytest.mark.parametrize("kind", sorted(GENERATOR_REGISTRY))
    def test_every_generator_kind_round_trips(self, kind):
        trace = build_trace(kind, num_threads=3, events=12, seed=7)
        loaded = decode_trace(encode_trace(trace))
        assert_traces_equal(trace, loaded)

    def test_adversarial_variables_survive(self):
        trace = Trace(name="adv")
        for value in ADVERSARIAL_VALUES:
            trace.append(0, EventKind.WRITE, variable=value, value=value)
        loaded = decode_trace(encode_trace(trace))
        for event, value in zip(loaded, ADVERSARIAL_VALUES):
            assert event.variable == value
            assert event.value == value

    def test_value_types_are_distinguished(self):
        """True vs 1 vs ``"1"`` vs a memory order never collapse."""
        trace = Trace(name="types")
        for value in (1, True, "1", 0, False, "", MemoryOrder.RELAXED,
                      "relaxed"):
            trace.append(0, EventKind.WRITE, variable="x", value=value)
        values = [event.value for event in decode_trace(encode_trace(trace))]
        assert values == [1, True, "1", 0, False, "", MemoryOrder.RELAXED,
                          "relaxed"]
        assert [type(value) for value in values] == [
            int, bool, str, int, bool, str, MemoryOrder, str]

    def test_std_stc_std_is_text_identical(self):
        trace = generator_trace()
        text = dumps_trace(trace)
        loaded = decode_trace(encode_trace(loads_trace(text)))
        assert dumps_trace(loaded) == text

    def test_derived_views_match(self):
        trace = generator_trace("racy")
        loaded = decode_trace(encode_trace(trace))
        assert loaded.reads_from() == trace.reads_from()
        assert ([(cs.lock, cs.thread, cs.acquire, cs.release)
                 for cs in loaded.critical_sections()]
                == [(cs.lock, cs.thread, cs.acquire, cs.release)
                    for cs in trace.critical_sections()])
        assert loaded.fork_join_edges() == trace.fork_join_edges()

    def test_columns_match_eager_encoding(self):
        trace = generator_trace()
        eager = trace.columns()
        lazy = decode_trace(encode_trace(trace)).columns()
        assert bytes(lazy.kinds) == bytes(eager.kinds)
        assert list(lazy.threads) == list(eager.threads)
        assert list(lazy.var_ids) == list(eager.var_ids)
        assert bytes(lazy.access_flags) == bytes(eager.access_flags)
        assert bytes(lazy.read_flags) == bytes(eager.read_flags)
        assert bytes(lazy.write_flags) == bytes(eager.write_flags)
        assert bytes(lazy.acquire_mo_flags) == bytes(eager.acquire_mo_flags)
        assert bytes(lazy.release_mo_flags) == bytes(eager.release_mo_flags)
        assert ({thread: list(positions)
                 for thread, positions in lazy.thread_positions.items()}
                == {thread: list(positions)
                    for thread, positions in eager.thread_positions.items()})

    def test_decode_name_override(self):
        blob = encode_trace(rich_trace())
        assert decode_trace(blob, name="other").name == "other"


# --------------------------------------------------------------------------- #
# Determinism
# --------------------------------------------------------------------------- #
class TestDeterminism:
    def test_same_trace_same_bytes(self):
        trace = rich_trace()
        assert encode_trace(trace) == encode_trace(trace)

    @pytest.mark.parametrize("kind", sorted(GENERATOR_REGISTRY))
    def test_reencode_is_byte_identical(self, kind):
        blob = encode_trace(build_trace(kind, num_threads=3, events=12,
                                        seed=7))
        assert encode_trace(decode_trace(blob)) == blob

    def test_magic_and_version(self):
        blob = encode_trace(rich_trace())
        assert blob[:4] == STC_MAGIC
        magic, version, flags, count, _sections = _PRELUDE.unpack_from(blob)
        assert magic == STC_MAGIC
        assert version == STC_VERSION
        assert flags == 0
        assert count == len(rich_trace())


# --------------------------------------------------------------------------- #
# Laziness
# --------------------------------------------------------------------------- #
class CountingEvent(Event):
    """Stand-in for ``binfmt.Event`` that counts materializations."""

    instances = 0

    def __init__(self, *args, **kwargs):
        type(self).instances += 1
        super().__init__(*args, **kwargs)


@pytest.fixture
def counting_event(monkeypatch):
    CountingEvent.instances = 0
    monkeypatch.setattr("repro.trace.binfmt.Event", CountingEvent)
    return CountingEvent


class TestLaziness:
    def test_load_and_columns_materialize_nothing(self, counting_event):
        """The headline contract: decode + structural queries + the full
        columnar view build ZERO Event objects."""
        trace = generator_trace()
        blob = encode_trace(trace)
        loaded = decode_trace(blob)
        assert len(loaded) == len(trace)
        assert loaded.threads == trace.threads
        assert loaded.num_threads == trace.num_threads
        assert loaded.max_thread_length == trace.max_thread_length
        for thread in trace.threads:
            assert loaded.thread_length(thread) == trace.thread_length(thread)
        columns = loaded.columns()
        assert len(columns.kinds) == len(trace)
        assert columns.sync() is columns
        assert counting_event.instances == 0
        assert loaded.materialized_count == 0

    def test_indexing_materializes_exactly_one(self, counting_event):
        loaded = decode_trace(encode_trace(generator_trace()))
        event = loaded[5]
        assert counting_event.instances == 1
        assert loaded.materialized_count == 1
        assert loaded[5] is event  # cached, no second build
        assert counting_event.instances == 1

    def test_negative_and_slice_indexing(self):
        trace = generator_trace()
        loaded = decode_trace(encode_trace(trace))
        assert loaded[-1] == trace[len(trace) - 1]
        assert loaded[2:5] == list(trace)[2:5]
        with pytest.raises(IndexError):
            loaded[len(trace)]

    def test_event_at_inflates_on_demand(self, counting_event):
        trace = generator_trace()
        loaded = decode_trace(encode_trace(trace))
        node = (trace.threads[0], 2)
        inflated, expected = loaded.event_at(node), trace.event_at(node)
        # CountingEvent is a distinct dataclass, so compare field-wise.
        assert (inflated.thread, inflated.index, inflated.kind,
                inflated.variable, inflated.value) == (
            expected.thread, expected.index, expected.kind,
            expected.variable, expected.value)
        assert counting_event.instances == 1

    def test_hydrating_operations_still_work(self):
        trace = generator_trace("racy")
        loaded = decode_trace(encode_trace(trace))
        assert loaded.materialized_count == 0
        assert loaded.locks_held_map() == trace.locks_held_map()
        # reads_from forced a hydration: now a full Trace.
        assert loaded.materialized_count == len(trace)
        assert list(loaded) == list(trace)

    def test_append_after_load_hydrates_and_extends_columns(self):
        trace = generator_trace()
        loaded = decode_trace(encode_trace(trace))
        columns = loaded.columns()
        before = len(columns.kinds)
        loaded.append(0, EventKind.WRITE, variable="zz", value=9)
        assert len(loaded) == len(trace) + 1
        synced = loaded.columns()
        assert len(synced.kinds) == before + 1
        assert loaded[-1].variable == "zz"


# --------------------------------------------------------------------------- #
# Corruption and truncation
# --------------------------------------------------------------------------- #
class TestCorruption:
    def decode_error(self, blob: bytes) -> str:
        with pytest.raises(TraceFormatError) as info:
            decode_trace(blob)
        return str(info.value)

    def test_bad_magic(self):
        blob = encode_trace(rich_trace())
        assert "magic" in self.decode_error(b"XXXX" + blob[4:])

    def test_bad_version(self):
        blob = encode_trace(rich_trace())
        mutated = blob[:4] + struct.pack("<H", 999) + blob[6:]
        assert "version" in self.decode_error(mutated)

    def test_empty_input(self):
        self.decode_error(b"")

    def test_not_a_trace_at_all(self):
        self.decode_error(b"# STD trace impostor\n" * 4)

    def test_truncation_at_every_byte(self):
        """Cutting the blob at ANY byte must raise TraceFormatError --
        never IndexError, struct.error, or a silently shorter trace."""
        blob = encode_trace(generator_trace())
        for cut in range(len(blob)):
            with pytest.raises(TraceFormatError):
                decode_trace(blob[:cut])
        assert len(decode_trace(blob)) == len(generator_trace())

    def test_truncated_empty_trace_blob(self):
        blob = encode_trace(Trace(name="empty"))
        for cut in range(len(blob)):
            with pytest.raises(TraceFormatError):
                decode_trace(blob[:cut])

    def test_kind_code_out_of_range(self):
        blob = patch_section(encode_trace(rich_trace()), SEC_KINDS, 0,
                             b"\xff")
        assert "kind" in self.decode_error(blob)

    def test_memory_order_code_out_of_range(self):
        blob = patch_section(encode_trace(rich_trace()), SEC_MO_CODES, 0,
                             b"\x63")
        assert "memory order" in self.decode_error(blob).replace("-", " ")

    def test_variable_id_out_of_range(self):
        blob = patch_section(encode_trace(rich_trace()), SEC_VAR_IDS, 4,
                             struct.pack("<i", 1_000_000))
        self.decode_error(blob)

    def test_pool_id_out_of_range(self):
        blob = patch_section(encode_trace(rich_trace()), SEC_VALUE_IDS, 4,
                             struct.pack("<i", 1_000_000))
        self.decode_error(blob)

    def test_negative_id_below_minus_one(self):
        blob = patch_section(encode_trace(rich_trace()), SEC_VALUE_IDS, 4,
                             struct.pack("<i", -2))
        self.decode_error(blob)

    def test_flag_column_disagrees_with_kinds(self):
        trace = Trace(name="flags")
        trace.append(0, EventKind.READ, variable="x", value=1)
        blob = encode_trace(trace)
        offset, _length = section_table(blob)[SEC_ACCESS]
        flipped = blob[:offset] + bytes([blob[offset] ^ 1]) + blob[offset + 1:]
        self.decode_error(flipped)

    def test_thread_table_unsorted(self):
        trace = Trace(name="tt")
        trace.append(5, EventKind.WRITE, variable="x", value=1)
        trace.append(9, EventKind.WRITE, variable="x", value=2)
        blob = encode_trace(trace)
        offset, length = section_table(blob)[SEC_THREAD_TABLE]
        payload = blob[offset:offset + length]
        entry = struct.Struct("<qQ")
        first = payload[4:4 + entry.size]
        second = payload[4 + entry.size:4 + 2 * entry.size]
        swapped = blob[:offset] + payload[:4] + second + first \
            + blob[offset + length:]
        self.decode_error(swapped)

    def test_thread_table_zero_count(self):
        trace = Trace(name="tt")
        trace.append(5, EventKind.WRITE, variable="x", value=1)
        blob = encode_trace(trace)
        offset, _length = section_table(blob)[SEC_THREAD_TABLE]
        mutated = patch_section(blob, SEC_THREAD_TABLE, 4,
                                struct.pack("<qQ", 5, 0))
        self.decode_error(mutated)

    def test_position_out_of_range(self):
        trace = Trace(name="pos")
        trace.append(0, EventKind.WRITE, variable="x", value=1)
        blob = encode_trace(trace)
        mutated = patch_section(blob, SEC_POSITIONS, 0,
                                struct.pack("<q", 7))
        self.decode_error(mutated)

    def test_section_offset_out_of_bounds(self):
        blob = encode_trace(rich_trace())
        table_at = _PRELUDE.size  # first entry
        section_id, offset, length = _TABLE_ENTRY.unpack_from(blob, table_at)
        lying = blob[:table_at] + _TABLE_ENTRY.pack(
            section_id, len(blob), length) + blob[table_at
                                                  + _TABLE_ENTRY.size:]
        self.decode_error(lying)

    def test_section_length_overruns_blob(self):
        blob = encode_trace(rich_trace())
        table_at = _PRELUDE.size
        section_id, offset, _length = _TABLE_ENTRY.unpack_from(blob, table_at)
        lying = blob[:table_at] + _TABLE_ENTRY.pack(
            section_id, offset, len(blob)) + blob[table_at
                                                  + _TABLE_ENTRY.size:]
        self.decode_error(lying)

    def test_duplicate_section_id(self):
        blob = encode_trace(rich_trace())
        first = _TABLE_ENTRY.unpack_from(blob, _PRELUDE.size)
        second_at = _PRELUDE.size + _TABLE_ENTRY.size
        lying = blob[:second_at] + _TABLE_ENTRY.pack(*first) \
            + blob[second_at + _TABLE_ENTRY.size:]
        self.decode_error(lying)

    def test_every_section_is_individually_required(self):
        """Zeroing any table entry's id (making that section 'unknown')
        must fail: the decoder demands all sections listed."""
        blob = encode_trace(rich_trace())
        for position in range(len(SECTION_NAMES)):
            entry_at = _PRELUDE.size + position * _TABLE_ENTRY.size
            _sid, offset, length = _TABLE_ENTRY.unpack_from(blob, entry_at)
            mutated = blob[:entry_at] + _TABLE_ENTRY.pack(
                4_000_000_000, offset, length) \
                + blob[entry_at + _TABLE_ENTRY.size:]
            self.decode_error(mutated)

    def test_wrong_array_section_length(self):
        """A lying length (not count*itemsize) on a typed column."""
        blob = encode_trace(rich_trace())
        for position in range(len(SECTION_NAMES)):
            entry_at = _PRELUDE.size + position * _TABLE_ENTRY.size
            section_id, offset, length = _TABLE_ENTRY.unpack_from(
                blob, entry_at)
            if section_id in (SEC_KINDS, SEC_VAR_IDS, SEC_POSITIONS):
                mutated = blob[:entry_at] + _TABLE_ENTRY.pack(
                    section_id, offset, length - 1) \
                    + blob[entry_at + _TABLE_ENTRY.size:]
                self.decode_error(mutated)

    def test_encode_rejects_oversized_identifiers(self):
        trace = Trace(name="big")
        trace.append(2 ** 70, EventKind.WRITE, variable="x", value=1)
        with pytest.raises(TraceFormatError):
            encode_trace(trace)


# --------------------------------------------------------------------------- #
# File I/O
# --------------------------------------------------------------------------- #
class TestFileIO:
    def test_write_read_stc(self, tmp_path):
        trace = rich_trace()
        path = tmp_path / "t.stc"
        write_trace_stc(trace, path)
        assert path.read_bytes()[:4] == STC_MAGIC
        assert_traces_equal(trace, read_trace_stc(path))

    def test_write_read_stc_gz(self, tmp_path):
        trace = rich_trace()
        path = tmp_path / "t.stc.gz"
        write_trace_stc(trace, path)
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        assert_traces_equal(trace, read_trace_stc(path))

    def test_gzip_writes_are_byte_reproducible(self, tmp_path):
        trace = rich_trace()
        first, second = tmp_path / "a.stc.gz", tmp_path / "b.stc.gz"
        write_trace_stc(trace, first)
        write_trace_stc(trace, second)
        assert first.read_bytes() == second.read_bytes()

    def test_read_detects_gzip_by_content(self, tmp_path):
        """A gzipped blob under a plain ``.stc`` name still loads."""
        trace = rich_trace()
        path = tmp_path / "t.stc"
        path.write_bytes(gzip.compress(encode_trace(trace), mtime=0))
        assert_traces_equal(trace, read_trace_stc(path))

    def test_empty_file_is_a_format_error(self, tmp_path):
        path = tmp_path / "t.stc"
        path.write_bytes(b"")
        with pytest.raises(TraceFormatError):
            read_trace_stc(path)

    def test_read_name_defaults_to_embedded_name(self, tmp_path):
        path = tmp_path / "t.stc"
        write_trace_stc(rich_trace(), path)
        assert read_trace_stc(path).name == "rich"
