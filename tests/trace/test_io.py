"""Format dispatch: suffix rules, magic-byte sniffing, save/read routing."""

from __future__ import annotations

import gzip

import pytest

from repro.errors import TraceFormatError
from repro.trace import (
    EventKind,
    Trace,
    dump_trace,
    read_trace,
    save_trace,
    sniff_format,
    trace_format,
)
from repro.trace.io import path_format


@pytest.fixture
def trace():
    built = Trace(name="io")
    for position in range(6):
        built.append(position % 2, EventKind.WRITE, variable="x",
                     value=position)
    return built


class TestPathFormat:
    @pytest.mark.parametrize("name,expected", [
        ("t.stc", "stc"), ("t.stc.gz", "stc"), ("dir/t.stc", "stc"),
        ("t.std", "std"), ("t.std.gz", "std"), ("t.txt", "std"),
        ("t", "std"), ("t.stc.bak", "std"),
    ])
    def test_suffix_rules(self, name, expected):
        assert path_format(name) == expected


class TestSniffing:
    def test_sniffs_stc_under_wrong_extension(self, trace, tmp_path):
        """Content beats extension: a mislabeled file still loads."""
        path = tmp_path / "mislabeled.std"
        save_trace(trace, tmp_path / "real.stc")
        path.write_bytes((tmp_path / "real.stc").read_bytes())
        assert sniff_format(path) == "stc"
        assert trace_format(path) == "stc"
        assert list(read_trace(path)) == list(trace)

    def test_sniffs_through_gzip(self, trace, tmp_path):
        path = tmp_path / "mislabeled.std.gz"
        from repro.trace import encode_trace

        path.write_bytes(gzip.compress(encode_trace(trace), mtime=0))
        assert sniff_format(path) == "stc"
        assert list(read_trace(path)) == list(trace)

    def test_std_files_do_not_sniff_as_stc(self, trace, tmp_path):
        path = tmp_path / "t.std"
        dump_trace(trace, path)
        assert sniff_format(path) is None
        assert trace_format(path) == "std"

    def test_missing_file_falls_back_to_suffix(self, tmp_path):
        assert trace_format(tmp_path / "nope.stc") == "stc"
        assert trace_format(tmp_path / "nope.std") == "std"


class TestRoundTripDispatch:
    @pytest.mark.parametrize("name", ["t.std", "t.std.gz", "t.stc",
                                      "t.stc.gz"])
    def test_save_then_read_any_suffix(self, trace, tmp_path, name):
        path = tmp_path / name
        save_trace(trace, path)
        loaded = read_trace(path)
        assert list(loaded) == list(trace)
        assert loaded.name == trace.name

    def test_stc_file_is_binary_std_is_text(self, trace, tmp_path):
        save_trace(trace, tmp_path / "t.stc")
        save_trace(trace, tmp_path / "t.std")
        assert (tmp_path / "t.stc").read_bytes()[:4] == b"\x89STC"
        assert (tmp_path / "t.std").read_text().startswith("#")

    def test_corrupt_stc_raises_format_error(self, tmp_path):
        path = tmp_path / "t.stc"
        path.write_bytes(b"\x89STCgarbage")
        with pytest.raises(TraceFormatError):
            read_trace(path)
