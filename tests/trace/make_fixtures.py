"""Golden-fixture builders for the ``.stc`` format tests.

``FIXTURES`` maps fixture names to trace builders.  The golden test
(``test_binfmt_golden.py``) asserts, for every fixture, that

* ``encode_trace(build())`` is byte-identical to the checked-in
  ``tests/trace/data/<name>.stc`` file, and
* decoding that file reproduces the built trace event-for-event.

Together those pin the v1 wire format: any byte-level change to the
encoder shows up as a golden diff, and old files keep decoding.

Regenerate the files (ONLY on a deliberate, version-bumped format
change) with::

    PYTHONPATH=src python tests/trace/make_fixtures.py
"""

from __future__ import annotations

from pathlib import Path

from repro.trace import EventKind, MemoryOrder, Trace
from repro.trace.generators import GENERATOR_REGISTRY, build_trace

DATA_DIR = Path(__file__).resolve().parent / "data"

#: Tiny shape shared by the one-fixture-per-generator-kind set.
GENERATOR_SHAPE = {"num_threads": 2, "events": 8, "seed": 3}


def build_empty() -> Trace:
    return Trace(name="empty")


def build_single_thread() -> Trace:
    trace = Trace(name="single-thread")
    trace.append(7, EventKind.ALLOC, variable="cell")
    trace.append(7, EventKind.WRITE, variable="cell", value=0)
    trace.append(7, EventKind.READ, variable="cell", value=0)
    trace.append(7, EventKind.WRITE, variable="cell", value=True)
    trace.append(7, EventKind.FREE, variable="cell")
    return trace


def build_escaping() -> Trace:
    """Identifier and value shapes that stress string interning: STD
    escape characters, near-collisions (1 vs True vs "1"), unicode,
    memory-order values, and large integers."""
    trace = Trace(name="escaping |=\\")
    nasty = ["a|b", "x=y", "line1\nline2", "cr\rlf\n", "back\\slash",
             "\\p literal", "|=\\\n|", "trailing\\", "# trace impostor",
             "trailing spaces  ", "\ttabs\t", "unicode ✓ é"]
    for value in nasty:
        trace.append(0, EventKind.WRITE, variable=value, value=value)
    for value in (1, True, "1", 0, False, "", MemoryOrder.SEQ_CST,
                  "seq_cst", -2 ** 40, 2 ** 40):
        trace.append(1, EventKind.WRITE, variable="collide", value=value)
    trace.append(0, EventKind.BEGIN, operation="op|with=escapes\n",
                 argument="arg\\")
    trace.append(0, EventKind.END, operation="op|with=escapes\n",
                 result="# done")
    return trace


def _generator_builder(kind: str):
    def build() -> Trace:
        return build_trace(kind, **GENERATOR_SHAPE)

    build.__name__ = f"build_gen_{kind}"
    return build


FIXTURES = {
    "empty": build_empty,
    "single-thread": build_single_thread,
    "escaping": build_escaping,
}
for _kind in sorted(GENERATOR_REGISTRY):
    FIXTURES[f"gen-{_kind}"] = _generator_builder(_kind)


def fixture_path(name: str) -> Path:
    return DATA_DIR / f"{name}.stc"


def main() -> None:
    from repro.trace.binfmt import encode_trace

    DATA_DIR.mkdir(parents=True, exist_ok=True)
    for name, build in sorted(FIXTURES.items()):
        blob = encode_trace(build())
        fixture_path(name).write_bytes(blob)
        print(f"{name}: {len(blob)} bytes")


if __name__ == "__main__":
    main()
