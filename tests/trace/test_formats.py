"""Tests for the trace text serialization."""

import io

import pytest

from repro.errors import TraceError
from repro.trace import (
    EventKind,
    MemoryOrder,
    Trace,
    dump_trace,
    dumps_trace,
    load_trace,
    loads_trace,
)
from repro.trace.generators import c11_trace, racy_trace


class TestRoundTrip:
    def test_simple_trace_round_trips(self):
        trace = Trace(name="simple")
        trace.write(0, "x", value=1)
        trace.acquire(1, "l")
        trace.read(1, "x", value=1)
        trace.release(1, "l")
        restored = loads_trace(dumps_trace(trace))
        assert restored.name == "simple"
        assert list(restored.events) == list(trace.events)

    def test_metadata_fields_round_trip(self):
        trace = Trace(name="meta")
        trace.fork(0, 1)
        trace.atomic_write(1, "a", value=3, memory_order=MemoryOrder.RELEASE)
        trace.begin(2, "add", argument=7)
        trace.end(2, "add", result=True)
        restored = loads_trace(dumps_trace(trace))
        events = list(restored.events)
        assert events[0].target == 1
        assert events[1].memory_order is MemoryOrder.RELEASE
        assert events[1].atomic is True
        assert events[2].argument == 7
        assert events[3].result is True

    @pytest.mark.parametrize("generator", [racy_trace, c11_trace])
    def test_generated_traces_round_trip(self, generator):
        trace = generator(num_threads=3, events_per_thread=40, seed=4)
        restored = loads_trace(dumps_trace(trace))
        assert list(restored.events) == list(trace.events)

    def test_file_round_trip(self, tmp_path):
        trace = Trace(name="file")
        trace.write(0, "x", value=5)
        path = tmp_path / "trace.txt"
        dump_trace(trace, path)
        restored = load_trace(path)
        assert restored.name == "file"
        assert restored[0].value == 5

    def test_stream_round_trip(self):
        trace = Trace(name="stream")
        trace.read(0, "x")
        buffer = io.StringIO()
        dump_trace(trace, buffer)
        buffer.seek(0)
        restored = load_trace(buffer)
        assert restored[0].kind is EventKind.READ


#: Values that would corrupt the line format without escaping: field
#: separators, the key/value separator, newlines, carriage returns, the
#: escape character itself, and combinations thereof.
ADVERSARIAL_VALUES = [
    "a|b",
    "x=y",
    "line1\nline2",
    "cr\rlf\n",
    "back\\slash",
    "\\p literal",
    "|=\\\n|",
    "trailing\\",
    "# trace impostor",
    "trailing spaces  ",
    "\ttabs\t",
]


class TestEscaping:
    @pytest.mark.parametrize("value", ADVERSARIAL_VALUES)
    def test_adversarial_variable_names_round_trip(self, value):
        trace = Trace(name="adversarial")
        trace.write(0, value, value=1)
        trace.read(1, value)
        restored = loads_trace(dumps_trace(trace))
        assert list(restored.events) == list(trace.events)

    @pytest.mark.parametrize("value", ADVERSARIAL_VALUES)
    def test_adversarial_string_values_round_trip(self, value):
        trace = Trace(name="adversarial")
        trace.write(0, "x", value=value)
        restored = loads_trace(dumps_trace(trace))
        assert restored[0].value == value

    @pytest.mark.parametrize("value", ADVERSARIAL_VALUES)
    def test_adversarial_operation_arguments_round_trip(self, value):
        trace = Trace(name="adversarial")
        trace.begin(0, "add", argument=value)
        trace.end(0, "add", result=value)
        restored = loads_trace(dumps_trace(trace))
        assert restored[0].argument == value
        assert restored[1].result == value

    def test_adversarial_trace_name_round_trips(self):
        trace = Trace(name="a|b\nc")
        trace.read(0, "x")
        assert loads_trace(dumps_trace(trace)).name == "a|b\nc"

    def test_trace_name_edge_whitespace_round_trips(self):
        trace = Trace(name="run 7  ")
        trace.read(0, "x")
        assert loads_trace(dumps_trace(trace)).name == "run 7  "

    def test_event_count_preserved_under_newline_values(self):
        trace = Trace(name="n")
        trace.write(0, "x", value="one\ntwo\nthree")
        trace.read(0, "x")
        text = dumps_trace(trace)
        assert len(loads_trace(text)) == 2


class TestGzip:
    def test_gz_file_round_trip(self, tmp_path):
        trace = racy_trace(num_threads=3, events_per_thread=20, seed=1)
        path = tmp_path / "trace.std.gz"
        dump_trace(trace, path)
        # Really compressed, not a plain file with a funny name.
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        restored = load_trace(path)
        assert list(restored.events) == list(trace.events)
        assert restored.name == trace.name

    def test_gz_string_path_round_trip(self, tmp_path):
        trace = Trace(name="gz")
        trace.write(0, "x", value=1)
        path = str(tmp_path / "t.std.gz")
        dump_trace(trace, path)
        assert load_trace(path)[0].value == 1


class TestErrorHandling:
    def test_unknown_kind_rejected(self):
        with pytest.raises(TraceError, match="unknown event kind"):
            loads_trace("0|teleport\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(TraceError, match="malformed"):
            loads_trace("justonefield\n")

    def test_unknown_field_rejected(self):
        with pytest.raises(TraceError, match="unknown field"):
            loads_trace("0|read|colour=str:blue\n")

    def test_bad_value_encoding_rejected(self):
        with pytest.raises(TraceError, match="cannot decode"):
            loads_trace("0|read|variable=blob:xxx\n")

    def test_comments_and_blank_lines_ignored(self):
        text = "# a comment\n\n0|write|variable=str:x|value=int:1\n"
        trace = loads_trace(text)
        assert len(trace) == 1
