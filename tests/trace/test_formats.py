"""Tests for the trace text serialization."""

import io

import pytest

from repro.errors import TraceError
from repro.trace import (
    EventKind,
    MemoryOrder,
    Trace,
    dump_trace,
    dumps_trace,
    load_trace,
    loads_trace,
)
from repro.trace.generators import c11_trace, racy_trace


class TestRoundTrip:
    def test_simple_trace_round_trips(self):
        trace = Trace(name="simple")
        trace.write(0, "x", value=1)
        trace.acquire(1, "l")
        trace.read(1, "x", value=1)
        trace.release(1, "l")
        restored = loads_trace(dumps_trace(trace))
        assert restored.name == "simple"
        assert list(restored.events) == list(trace.events)

    def test_metadata_fields_round_trip(self):
        trace = Trace(name="meta")
        trace.fork(0, 1)
        trace.atomic_write(1, "a", value=3, memory_order=MemoryOrder.RELEASE)
        trace.begin(2, "add", argument=7)
        trace.end(2, "add", result=True)
        restored = loads_trace(dumps_trace(trace))
        events = list(restored.events)
        assert events[0].target == 1
        assert events[1].memory_order is MemoryOrder.RELEASE
        assert events[1].atomic is True
        assert events[2].argument == 7
        assert events[3].result is True

    @pytest.mark.parametrize("generator", [racy_trace, c11_trace])
    def test_generated_traces_round_trip(self, generator):
        trace = generator(num_threads=3, events_per_thread=40, seed=4)
        restored = loads_trace(dumps_trace(trace))
        assert list(restored.events) == list(trace.events)

    def test_file_round_trip(self, tmp_path):
        trace = Trace(name="file")
        trace.write(0, "x", value=5)
        path = tmp_path / "trace.txt"
        dump_trace(trace, path)
        restored = load_trace(path)
        assert restored.name == "file"
        assert restored[0].value == 5

    def test_stream_round_trip(self):
        trace = Trace(name="stream")
        trace.read(0, "x")
        buffer = io.StringIO()
        dump_trace(trace, buffer)
        buffer.seek(0)
        restored = load_trace(buffer)
        assert restored[0].kind is EventKind.READ


class TestErrorHandling:
    def test_unknown_kind_rejected(self):
        with pytest.raises(TraceError, match="unknown event kind"):
            loads_trace("0|teleport\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(TraceError, match="malformed"):
            loads_trace("justonefield\n")

    def test_unknown_field_rejected(self):
        with pytest.raises(TraceError, match="unknown field"):
            loads_trace("0|read|colour=str:blue\n")

    def test_bad_value_encoding_rejected(self):
        with pytest.raises(TraceError, match="cannot decode"):
            loads_trace("0|read|variable=blob:xxx\n")

    def test_comments_and_blank_lines_ignored(self):
        text = "# a comment\n\n0|write|variable=str:x|value=int:1\n"
        trace = loads_trace(text)
        assert len(trace) == 1
