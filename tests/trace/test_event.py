"""Tests for the event model."""

import pytest

from repro.trace import Event, EventKind, MemoryOrder


class TestIdentity:
    def test_node_is_thread_and_index(self):
        event = Event(thread=2, index=7, kind=EventKind.READ, variable="x")
        assert event.node == (2, 7)

    def test_events_are_hashable_and_comparable(self):
        first = Event(thread=1, index=0, kind=EventKind.WRITE, variable="x", value=1)
        clone = Event(thread=1, index=0, kind=EventKind.WRITE, variable="x", value=1)
        other = Event(thread=1, index=1, kind=EventKind.WRITE, variable="x", value=1)
        assert first == clone
        assert hash(first) == hash(clone)
        assert first != other

    def test_events_are_immutable(self):
        event = Event(thread=0, index=0, kind=EventKind.READ)
        with pytest.raises(AttributeError):
            event.thread = 5

    def test_str_mentions_kind_and_location(self):
        event = Event(thread=0, index=3, kind=EventKind.WRITE, variable="x", value=9)
        text = str(event)
        assert "write" in text and "x" in text


class TestClassification:
    def test_read_is_access_and_read(self):
        event = Event(thread=0, index=0, kind=EventKind.READ, variable="x")
        assert event.is_access and event.is_read and not event.is_write

    def test_write_is_access_and_write(self):
        event = Event(thread=0, index=0, kind=EventKind.WRITE, variable="x")
        assert event.is_access and event.is_write and not event.is_read

    def test_rmw_is_both_read_and_write(self):
        event = Event(thread=0, index=0, kind=EventKind.ATOMIC_RMW, variable="x")
        assert event.is_read and event.is_write

    def test_lock_events_are_not_accesses(self):
        event = Event(thread=0, index=0, kind=EventKind.ACQUIRE, variable="l")
        assert not event.is_access

    def test_alloc_free_are_not_accesses(self):
        assert not Event(thread=0, index=0, kind=EventKind.ALLOC, variable="p").is_access
        assert not Event(thread=0, index=0, kind=EventKind.FREE, variable="p").is_access


class TestConflicts:
    def _access(self, thread, index, kind, variable="x"):
        return Event(thread=thread, index=index, kind=kind, variable=variable)

    def test_write_write_same_variable_conflicts(self):
        a = self._access(0, 0, EventKind.WRITE)
        b = self._access(1, 0, EventKind.WRITE)
        assert a.conflicts_with(b) and b.conflicts_with(a)

    def test_read_write_conflicts(self):
        a = self._access(0, 0, EventKind.READ)
        b = self._access(1, 0, EventKind.WRITE)
        assert a.conflicts_with(b)

    def test_read_read_does_not_conflict(self):
        a = self._access(0, 0, EventKind.READ)
        b = self._access(1, 0, EventKind.READ)
        assert not a.conflicts_with(b)

    def test_same_thread_does_not_conflict(self):
        a = self._access(0, 0, EventKind.WRITE)
        b = self._access(0, 1, EventKind.WRITE)
        assert not a.conflicts_with(b)

    def test_different_variables_do_not_conflict(self):
        a = self._access(0, 0, EventKind.WRITE, "x")
        b = self._access(1, 0, EventKind.WRITE, "y")
        assert not a.conflicts_with(b)

    def test_non_access_never_conflicts(self):
        lock = Event(thread=0, index=0, kind=EventKind.ACQUIRE, variable="x")
        write = self._access(1, 0, EventKind.WRITE)
        assert not lock.conflicts_with(write)


class TestMemoryOrder:
    @pytest.mark.parametrize("order, acquire, release", [
        (MemoryOrder.RELAXED, False, False),
        (MemoryOrder.ACQUIRE, True, False),
        (MemoryOrder.RELEASE, False, True),
        (MemoryOrder.ACQ_REL, True, True),
        (MemoryOrder.SEQ_CST, True, True),
    ])
    def test_acquire_release_classification(self, order, acquire, release):
        assert order.is_acquire is acquire
        assert order.is_release is release
