"""Property-based round trips for the ``.stc`` binary format.

Hypothesis builds arbitrary well-formed traces (every event kind, every
metadata field type, adversarial strings) and asserts the two lossless
paths plus determinism:

* ``Trace -> stc -> Trace`` preserves every event, the derived metrics,
  and the columnar views;
* ``STD -> stc -> STD`` is text-identical (the binary format is a
  faithful carrier for the canonical text format);
* encoding is a pure function of the trace (same bytes every time,
  including through a decode/re-encode cycle).

One deliberate restriction: variables draw from strings and plain ints
but never booleans.  The eager ``TraceColumns`` interner keys variables
by equality, where Python's ``True == 1`` would collapse two variables
the tag-separated ``.stc`` pool keeps distinct -- a pre-existing
property of the in-memory view, not of this format.  (Values have no
such restriction; ``test_binfmt.py`` pins the 1/True/"1" separation.)
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import (
    EventKind,
    MemoryOrder,
    Trace,
    decode_trace,
    dumps_trace,
    encode_trace,
    loads_trace,
)
from repro.trace.metrics import compute_metrics

variables = st.one_of(
    st.sampled_from(["x", "y", "lock", "a|b", "x=y", "nl\n", "bs\\",
                     "# imp", "\tt\t", "sp  ", "unicode✓"]),
    st.integers(min_value=2, max_value=2 ** 40),
)
values = st.one_of(
    st.none(),
    st.integers(min_value=-2 ** 50, max_value=2 ** 50),
    st.booleans(),
    st.text(max_size=8),
    st.sampled_from(list(MemoryOrder)),
)
event_specs = st.fixed_dictionaries({
    "thread": st.integers(min_value=0, max_value=4),
    "kind": st.sampled_from(list(EventKind)),
    "variable": st.one_of(st.none(), variables),
    "value": values,
    "target": st.one_of(st.none(), st.integers(min_value=0, max_value=4)),
    "memory_order": st.one_of(st.none(),
                              st.sampled_from(list(MemoryOrder))),
    "operation": st.one_of(st.none(), st.text(max_size=6)),
    "argument": values,
    "result": values,
    "atomic": st.booleans(),
})
traces = st.lists(event_specs, max_size=60)


def build(specs) -> Trace:
    trace = Trace(name="prop")
    for spec in specs:
        spec = dict(spec)
        trace.append(spec.pop("thread"), spec.pop("kind"), **spec)
    return trace


@settings(max_examples=60, deadline=None)
@given(traces)
def test_trace_stc_trace_is_lossless(specs):
    trace = build(specs)
    loaded = decode_trace(encode_trace(trace))
    assert loaded.name == trace.name
    assert len(loaded) == len(trace)
    assert list(loaded) == list(trace)
    assert loaded.threads == trace.threads
    for thread in trace.threads:
        assert loaded.thread_length(thread) == trace.thread_length(thread)


@settings(max_examples=30, deadline=None)
@given(traces)
def test_columns_match_eager_view(specs):
    trace = build(specs)
    lazy = decode_trace(encode_trace(trace)).columns()
    eager = trace.columns()
    assert bytes(lazy.kinds) == bytes(eager.kinds)
    assert list(lazy.threads) == list(eager.threads)
    assert list(lazy.indexes) == list(eager.indexes)
    assert list(lazy.var_ids) == list(eager.var_ids)
    assert bytes(lazy.access_flags) == bytes(eager.access_flags)
    assert bytes(lazy.read_flags) == bytes(eager.read_flags)
    assert bytes(lazy.write_flags) == bytes(eager.write_flags)
    assert bytes(lazy.atomic_flags) == bytes(eager.atomic_flags)
    assert bytes(lazy.acquire_mo_flags) == bytes(eager.acquire_mo_flags)
    assert bytes(lazy.release_mo_flags) == bytes(eager.release_mo_flags)


@settings(max_examples=30, deadline=None)
@given(traces)
def test_metrics_survive_the_round_trip(specs):
    trace = build(specs)
    assert (compute_metrics(decode_trace(encode_trace(trace)))
            == compute_metrics(trace))


@settings(max_examples=60, deadline=None)
@given(traces)
def test_encoding_is_deterministic(specs):
    trace = build(specs)
    blob = encode_trace(trace)
    assert encode_trace(trace) == blob
    assert encode_trace(decode_trace(blob)) == blob


@settings(max_examples=60, deadline=None)
@given(traces)
def test_std_stc_std_is_text_identical(specs):
    text = dumps_trace(build(specs))
    round_tripped = decode_trace(encode_trace(loads_trace(text)))
    assert dumps_trace(round_tripped) == text
