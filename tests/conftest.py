"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core import (
    CSST,
    GraphOrder,
    IncrementalCSST,
    SegmentTreeOrder,
    VectorClockOrder,
)

#: All incremental-capable backends, keyed by their factory name.
INCREMENTAL_BACKEND_CLASSES = {
    "vc": VectorClockOrder,
    "st": SegmentTreeOrder,
    "incremental-csst": IncrementalCSST,
    "csst": CSST,
    "graph": GraphOrder,
}

#: Backends supporting deletion.
DYNAMIC_BACKEND_CLASSES = {
    "csst": CSST,
    "graph": GraphOrder,
}


@pytest.fixture(params=sorted(INCREMENTAL_BACKEND_CLASSES))
def any_backend(request):
    """A fresh backend instance of every kind, with 4 chains."""
    return INCREMENTAL_BACKEND_CLASSES[request.param](4, 16)


@pytest.fixture(params=sorted(DYNAMIC_BACKEND_CLASSES))
def dynamic_backend(request):
    """A fresh deletion-capable backend instance, with 4 chains."""
    return DYNAMIC_BACKEND_CLASSES[request.param](4, 16)


@pytest.fixture
def rng():
    """A deterministic random generator for test workloads."""
    return random.Random(12345)


def insert_random_dag(order, reference, rng, num_chains, per_chain, edges):
    """Insert random acyclic cross-chain edges into ``order`` and ``reference``.

    Returns the list of inserted edges.  ``reference`` is used for the
    acyclicity check (it must already answer reachability correctly, e.g. a
    GraphOrder).
    """
    inserted = []
    for _ in range(edges):
        source_chain = rng.randrange(num_chains)
        target_chain = rng.randrange(num_chains)
        while target_chain == source_chain:
            target_chain = rng.randrange(num_chains)
        source = (source_chain, rng.randrange(per_chain))
        target = (target_chain, rng.randrange(per_chain))
        if reference.reachable(target, source):
            continue
        if (source, target) in inserted:
            continue
        reference.insert_edge(source, target)
        if order is not reference:
            order.insert_edge(source, target)
        inserted.append((source, target))
    return inserted
