"""End-to-end integration tests.

These exercise the full pipeline a user would run: generate a workload,
serialise it to disk, load it back, run an analysis with several
partial-order backends, and check that the outcomes agree -- the drop-in
replacement property the paper claims for CSSTs.
"""

import pytest

from repro.analyses.c11 import C11RaceAnalysis
from repro.analyses.deadlock import DeadlockPredictionAnalysis
from repro.analyses.linearizability import LinearizabilityAnalysis
from repro.analyses.membug import MemoryBugAnalysis
from repro.analyses.race_prediction import RacePredictionAnalysis
from repro.analyses.tso import TSOConsistencyAnalysis
from repro.analyses.uaf import UseAfterFreeAnalysis
from repro.core import DYNAMIC_BACKENDS, INCREMENTAL_BACKENDS
from repro.trace import dump_trace, load_trace
from repro.trace.generators import (
    c11_trace,
    deadlock_trace,
    history_trace,
    memory_trace,
    racy_trace,
    tso_trace,
)

#: (analysis class, analysis kwargs, generator, generator kwargs, backends)
PIPELINES = [
    ("race-prediction", RacePredictionAnalysis, {}, racy_trace,
     {"num_threads": 3, "events_per_thread": 70, "seed": 31}, INCREMENTAL_BACKENDS),
    ("deadlock", DeadlockPredictionAnalysis, {}, deadlock_trace,
     {"num_threads": 3, "events_per_thread": 70, "seed": 32}, INCREMENTAL_BACKENDS),
    ("membug", MemoryBugAnalysis, {}, memory_trace,
     {"num_threads": 3, "events_per_thread": 70, "seed": 33}, INCREMENTAL_BACKENDS),
    ("tso", TSOConsistencyAnalysis, {}, tso_trace,
     {"num_threads": 3, "events_per_thread": 60, "seed": 34}, INCREMENTAL_BACKENDS),
    ("uaf", UseAfterFreeAnalysis, {}, memory_trace,
     {"num_threads": 3, "events_per_thread": 70, "seed": 35}, INCREMENTAL_BACKENDS),
    ("c11", C11RaceAnalysis, {}, c11_trace,
     {"num_threads": 3, "events_per_thread": 70, "seed": 36}, INCREMENTAL_BACKENDS),
    ("linearizability", LinearizabilityAnalysis, {"max_steps": 5_000}, history_trace,
     {"num_threads": 3, "operations_per_thread": 8, "seed": 37}, DYNAMIC_BACKENDS),
]


@pytest.mark.parametrize(
    "label, analysis_cls, analysis_kwargs, generator, generator_kwargs, backends",
    PIPELINES, ids=[entry[0] for entry in PIPELINES])
def test_generate_serialise_analyse_pipeline(tmp_path, label, analysis_cls,
                                             analysis_kwargs, generator,
                                             generator_kwargs, backends):
    trace = generator(**generator_kwargs)
    path = tmp_path / f"{label}.trace"
    dump_trace(trace, path)
    restored = load_trace(path)
    assert list(restored.events) == list(trace.events)

    outcomes = {}
    for backend in backends:
        result = analysis_cls(backend, **analysis_kwargs).run(restored)
        outcomes[backend] = result
        assert result.trace_events == len(trace)
        assert result.elapsed_seconds >= 0
        assert result.operation_count > 0

    finding_counts = {result.finding_count for result in outcomes.values()}
    assert len(finding_counts) == 1, f"backends disagree for {label}: {outcomes}"
    detail_keys = {frozenset(result.details) for result in outcomes.values()}
    assert len(detail_keys) == 1


@pytest.mark.parametrize("backend", INCREMENTAL_BACKENDS)
def test_analysis_results_are_deterministic(backend):
    trace = racy_trace(num_threads=3, events_per_thread=60, seed=77)
    first = RacePredictionAnalysis(backend).run(trace)
    second = RacePredictionAnalysis(backend).run(trace)
    assert first.finding_count == second.finding_count
    assert first.insert_count == second.insert_count
    assert first.query_count == second.query_count


def test_mixed_analyses_share_one_trace():
    """Different analyses can consume the same trace object independently."""
    trace = memory_trace(num_threads=3, events_per_thread=80, seed=55)
    membug = MemoryBugAnalysis("incremental-csst").run(trace)
    uaf = UseAfterFreeAnalysis("incremental-csst").run(trace)
    races = RacePredictionAnalysis("incremental-csst").run(trace)
    assert membug.trace_events == uaf.trace_events == races.trace_events
    # UAF candidates are a subset of the memory-bug candidates by construction.
    assert uaf.details["candidates"] <= membug.details["candidates"]


def test_same_backend_instance_cannot_be_reused_across_runs():
    """Passing an explicit backend instance ties the result to that instance;
    using a fresh instance per run keeps analyses independent."""
    from repro.core import IncrementalCSST

    trace = racy_trace(num_threads=3, events_per_thread=50, seed=88)
    backend = IncrementalCSST(trace.num_threads, trace.max_thread_length)
    first = RacePredictionAnalysis(backend).run(trace)
    assert first.backend == "IncrementalCSST"
    assert backend.edge_count == first.insert_count
