"""Cross-format analysis parity: STD text vs ``.stc`` binary.

Every analysis must produce identical findings no matter how the trace
reached it:

* **std** -- the canonical text format round trip
  (``loads_trace(dumps_trace(t))``);
* **stc-eager** -- the binary round trip, fully rebuilt into an
  ordinary object-level :class:`Trace` before analysis;
* **stc-lazy** -- the binary round trip analysed directly as a
  :class:`LazyTrace` (events inflate on demand, columns come straight
  from the mapped sections).

Each of the seven analyses runs in **batch** mode (``Analysis.run``) and
**streaming** mode (:class:`StreamEngine` over a :class:`TraceSource`)
on all three representations; all six finding lists must agree.  The
input workload is the analysis's natural generator kind at a shape big
enough to produce findings.
"""

from __future__ import annotations

import pytest

from repro.analyses.common.base import Analysis
from repro.trace import (
    Trace,
    decode_trace,
    dumps_trace,
    encode_trace,
    loads_trace,
)
from repro.trace.generators import build_trace

#: analysis -> its natural workload kind.
ANALYSIS_KINDS = {
    "race-prediction": "racy",
    "c11-races": "c11",
    "tso-consistency": "tso",
    "deadlock-prediction": "deadlock",
    "memory-bugs": "memory",
    "use-after-free": "heap-churn",
    "linearizability": "history",
}
#: linearizability explodes with history length; keep it tiny.
SHAPES = {"history": dict(num_threads=2, events=5, seed=9)}
DEFAULT_SHAPE = dict(num_threads=4, events=40, seed=9)


def normalize(findings):
    return sorted(str(finding) for finding in findings)


def eager_copy(trace: Trace) -> Trace:
    """Rebuild an ordinary Trace from decoded events (no lazy machinery)."""
    copy = Trace(name=trace.name)
    for event in trace:
        copy.append(event.thread, event.kind, variable=event.variable,
                    value=event.value, target=event.target,
                    memory_order=event.memory_order,
                    operation=event.operation, argument=event.argument,
                    result=event.result, atomic=event.atomic)
    return copy


def variants(trace: Trace):
    blob = encode_trace(trace)
    return {
        "std": loads_trace(dumps_trace(trace)),
        "stc-eager": eager_copy(decode_trace(blob)),
        "stc-lazy": decode_trace(blob),
    }


def batch_findings(analysis: str, trace: Trace):
    cls = Analysis.by_name(analysis)
    return normalize(cls(cls.default_backend()).run(trace).findings)


def stream_findings(analysis: str, trace: Trace):
    from repro.stream.engine import StreamEngine
    from repro.stream.source import TraceSource

    result = StreamEngine([analysis]).run(TraceSource(trace))
    return normalize(result.results[analysis].findings)


@pytest.mark.parametrize("analysis", sorted(ANALYSIS_KINDS))
def test_batch_findings_agree_across_formats(analysis):
    kind = ANALYSIS_KINDS[analysis]
    trace = build_trace(kind, **SHAPES.get(kind, DEFAULT_SHAPE))
    reference = batch_findings(analysis, trace)
    for label, variant in variants(trace).items():
        assert batch_findings(analysis, variant) == reference, (
            f"{analysis} diverged on the {label} representation")


@pytest.mark.parametrize("analysis", sorted(ANALYSIS_KINDS))
def test_streaming_findings_agree_across_formats(analysis):
    kind = ANALYSIS_KINDS[analysis]
    trace = build_trace(kind, **SHAPES.get(kind, DEFAULT_SHAPE))
    reference = batch_findings(analysis, trace)
    for label, variant in variants(trace).items():
        assert stream_findings(analysis, variant) == reference, (
            f"{analysis} streaming diverged on the {label} representation")


def test_reference_workloads_produce_findings():
    """Parity over empty finding lists would prove nothing; the shapes
    above must actually trigger every analysis."""
    with_findings = 0
    for analysis, kind in ANALYSIS_KINDS.items():
        trace = build_trace(kind, **SHAPES.get(kind, DEFAULT_SHAPE))
        if batch_findings(analysis, trace):
            with_findings += 1
    assert with_findings >= 5
