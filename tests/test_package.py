"""Package-level sanity checks: public API surface and metadata."""

import repro
import repro.analyses as analyses
import repro.bench as bench
import repro.core as core
import repro.trace as trace


def test_version_is_exposed():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_top_level_exports_exist():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_subpackage_exports_exist():
    for module in (core, trace, analyses, bench):
        for name in module.__all__:
            assert hasattr(module, name), f"{module.__name__}.{name}"


def test_core_classes_reachable_from_top_level():
    order = repro.IncrementalCSST(2)
    order.insert_edge((0, 0), (1, 1))
    assert order.reachable((0, 0), (1, 5))


def test_error_hierarchy():
    assert issubclass(repro.UnsupportedOperationError, repro.ReproError)
    assert issubclass(repro.InvalidEdgeError, repro.ReproError)
    assert issubclass(repro.TraceError, repro.ReproError)
    assert issubclass(repro.AnalysisError, repro.ReproError)


def test_public_callables_have_docstrings():
    for name in repro.__all__:
        member = getattr(repro, name)
        if callable(member):
            assert member.__doc__, f"{name} lacks a docstring"
