"""Cross-process sweep tracing: propagation, merge parity, timeouts.

The contract under test (docs/observability.md, "Distributed tracing"):
a pooled sweep and an inline sweep must produce *equivalent* merged
snapshots -- equal counter totals and identical span-tree shapes -- with
the only differences being pids, span ids, and timings.  Per-process
cache counters (``trace_*``/``stc_*``) are excluded from the parity
comparison: each pool worker loads traces into its own cache, so those
counts legitimately scale with the worker count.
"""

import json
from dataclasses import replace

from repro.obs import (
    MetricsRegistry,
    new_span_id,
    new_trace_id,
    render_chrome_json,
    render_chrome_trace,
    use_registry,
    validate_chrome_trace,
)
from repro.runner.corpus import Suite, TraceSpec, grid
from repro.runner.executor import SweepJob, execute_job, plan_jobs, run_jobs

#: Counter families that are per-process caches, not sweep work.
CACHE_PREFIXES = ("trace_", "stc_")


def tiny_suite():
    return Suite(name="tiny", description="tracing probe",
                 specs=grid(["racy", "history"], [2], [16]))


def counter_totals(snapshot):
    """``{(name, labels): value}`` for every non-cache counter."""
    return {(entry["name"], tuple(sorted(entry["labels"].items()))):
            entry["value"]
            for entry in snapshot["counters"]
            if not entry["name"].startswith(CACHE_PREFIXES)}


def shape(node):
    """A span tree reduced to names + structure (timings, pids, span ids
    all erased) -- the part that must match across execution modes."""
    return (node["name"],
            tuple(sorted(shape(child)
                         for child in node.get("children", ()))))


def run_traced(workers):
    registry = MetricsRegistry()
    with use_registry(registry):
        result = run_jobs(plan_jobs(tiny_suite()), workers=workers,
                          suite_name="tiny")
    return registry.snapshot(), result


class TestMergeParity:
    def test_pooled_and_inline_sweeps_merge_equivalently(self):
        inline_snapshot, inline_result = run_traced(workers=1)
        pooled_snapshot, pooled_result = run_traced(workers=4)

        assert not inline_result.failures()
        assert not pooled_result.failures()
        totals = counter_totals(inline_snapshot)
        assert totals == counter_totals(pooled_snapshot)
        assert totals  # the exclusion list must not have emptied the set

        inline_shapes = sorted(shape(root)
                               for root in inline_snapshot["spans"])
        pooled_shapes = sorted(shape(root)
                               for root in pooled_snapshot["spans"])
        assert inline_shapes == pooled_shapes
        # One sweep root whose children are the eight planned jobs.
        (name, children), = inline_shapes
        assert name == "sweep"
        assert [child[0] for child in children] == ["sweep_job"] * 8

    def test_job_spans_share_the_sweep_trace_id(self):
        snapshot, _ = run_traced(workers=2)
        sweep, = snapshot["spans"]
        trace_id = sweep["labels"]["trace"]
        assert len(trace_id) == 32
        span_ids = [child["labels"]["span"] for child in sweep["children"]]
        assert all(child["labels"]["trace"] == trace_id
                   for child in sweep["children"])
        assert len(set(span_ids)) == len(span_ids) == 8

    def test_pooled_records_arrive_with_telemetry_stripped(self):
        # The snapshot rides SweepRecord.telemetry across the pool but is
        # merged and dropped by the collector -- callers never see it,
        # and the serialized record is identical either way.
        _, result = run_traced(workers=2)
        for record in result.records:
            assert record.telemetry is None
            assert "telemetry" not in record.to_dict()

    def test_merged_snapshot_renders_a_multi_process_timeline(self):
        snapshot, _ = run_traced(workers=4)
        document = render_chrome_trace(snapshot)
        assert validate_chrome_trace(document) == []
        span_pids = {event["pid"] for event in document["traceEvents"]
                     if event["ph"] == "X"}
        # The collector plus at least two distinct worker processes (the
        # pool may reuse a worker for several of the eight jobs).
        assert len(span_pids) >= 3


class TestWorkerCapture:
    def _job(self, **overrides):
        base = SweepJob(suite="t",
                        spec=TraceSpec(kind="racy", threads=2, events=16),
                        analysis="race-prediction", backend="vc",
                        trace_id=new_trace_id(), span_id=new_span_id())
        return replace(base, **overrides)

    def test_capture_returns_a_span_tagged_snapshot(self):
        job = self._job()
        record = execute_job(job, capture_telemetry=True)
        assert record.status == "ok"
        telemetry = record.telemetry
        assert telemetry is not None
        root, = telemetry["spans"]
        assert root["name"] == "sweep_job"
        assert root["labels"]["trace"] == job.trace_id
        assert root["labels"]["span"] == job.span_id
        assert root["pid"] > 0 and "wall_start_ns" in root

    def test_capture_without_trace_context_ships_nothing(self):
        # Jobs submitted by an untraced collector carry no context; the
        # worker must not fabricate a registry for them.
        record = execute_job(self._job(trace_id=None, span_id=None),
                             capture_telemetry=True)
        assert record.status == "ok" and record.telemetry is None

    def test_worker_span_records_error_status(self):
        bad = self._job(spec=TraceSpec(kind="history", threads=2, events=6),
                        analysis="linearizability", backend="st")
        record = execute_job(bad, capture_telemetry=True)
        assert record.status == "error"
        root, = record.telemetry["spans"]
        assert root["status"] == "error"
        assert root["error_type"]

    def test_snapshot_survives_json_round_trip_byte_identically(self):
        # SweepRecord.telemetry crosses the pool pickled, but the same
        # document must also survive JSON framing (jsonl sinks, the
        # ``repro timeline`` reader) without perturbing the rendering.
        record = execute_job(self._job(), capture_telemetry=True)
        revived = json.loads(json.dumps(record.telemetry))
        assert revived == record.telemetry
        assert render_chrome_json(revived) == \
            render_chrome_json(record.telemetry)


class TestTimeouts:
    def test_timed_out_job_emits_counter_and_synthetic_span(self):
        slow = SweepJob(suite="t",
                        spec=TraceSpec(kind="racy", threads=4, events=1500),
                        analysis="race-prediction", backend="st")
        registry = MetricsRegistry()
        with use_registry(registry):
            result = run_jobs([slow], workers=2, timeout_seconds=0.2)
        assert [record.status for record in result.records] == ["timeout"]

        snapshot = registry.snapshot()
        timeouts = [entry for entry in snapshot["counters"]
                    if entry["name"] == "sweep_job_timeout_total"]
        assert [entry["value"] for entry in timeouts] == [1]

        sweep, = snapshot["spans"]
        synthetic, = sweep["children"]
        assert synthetic["name"] == "sweep_job"
        assert synthetic["status"] == "error"
        assert synthetic["error_type"] == "timeout"
        assert synthetic["labels"]["backend"] == "st"
        # The synthetic span is wall-anchored, so the rendered timeline
        # stays schema-valid (no negative timestamps).
        document = render_chrome_trace(snapshot)
        assert validate_chrome_trace(document) == []
        flagged = [event for event in document["traceEvents"]
                   if event.get("cname") == "terrible"]
        assert [event["args"]["error_type"] for event in flagged] == \
            ["timeout"]
