"""Tests for the trace-corpus registry."""

import pickle

import pytest

from repro.errors import ReproError, TraceError
from repro.runner.corpus import (
    SUITES,
    Suite,
    TraceCorpus,
    TraceSpec,
    get_suite,
    grid,
    register_suite,
)


class TestTraceSpec:
    def test_build_is_deterministic(self):
        spec = TraceSpec(kind="racy", threads=3, events=40, seed=7)
        first, second = spec.build(), spec.build()
        assert len(first) == len(second)
        assert [str(event) for event in first] == [str(event) for event in second]

    def test_trace_takes_spec_id_as_name(self):
        spec = TraceSpec(kind="tso", threads=2, events=10, seed=1)
        assert spec.trace_id == "tso-t2-n10-s1"
        assert spec.build().name == "tso-t2-n10-s1"

    def test_history_spec_counts_operations(self):
        spec = TraceSpec(kind="history", threads=2, events=6)
        trace = spec.build()
        begins = sum(1 for event in trace if event.kind.value == "begin")
        assert begins == 12

    def test_extra_params_reach_the_generator(self):
        spec = TraceSpec(kind="racy", threads=2, events=20,
                         params=(("num_variables", 1),))
        trace = spec.build()
        variables = {event.variable for event in trace
                     if event.variable and event.variable.startswith("x")}
        assert variables == {"x0"}
        assert "num_variables=1" in spec.trace_id

    def test_unknown_kind_fails_fast(self):
        with pytest.raises(TraceError, match="unknown trace kind"):
            TraceSpec(kind="quantum", threads=2, events=10)

    def test_spec_is_hashable_and_picklable(self):
        spec = TraceSpec(kind="c11", threads=2, events=10)
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert len({spec, TraceSpec(kind="c11", threads=2, events=10)}) == 1


class TestGridAndSuites:
    def test_grid_is_a_full_cartesian_product(self):
        specs = grid(["racy", "tso"], [2, 4], [10], seeds=[0, 1])
        assert len(specs) == 8
        assert len(set(specs)) == 8

    def test_registered_suites_exist(self):
        for name in ("smoke", "quick", "seeds", "scaling", "full"):
            assert name in SUITES

    def test_smoke_suite_covers_every_kind(self):
        kinds = {spec.kind for spec in get_suite("smoke")}
        assert kinds == {"racy", "deadlock", "memory", "tso", "c11", "history"}

    def test_full_is_deduplicated_union_of_parts(self):
        full = get_suite("full")
        parts = (get_suite("quick").specs + get_suite("seeds").specs
                 + get_suite("scaling").specs)
        assert full.specs == tuple(dict.fromkeys(parts))
        assert len(set(full.specs)) == len(full.specs)

    def test_unknown_suite_raises(self):
        with pytest.raises(ReproError, match="unknown suite"):
            get_suite("galaxy")

    def test_register_suite_round_trips(self):
        suite = Suite(name="_tmp", description="test",
                      specs=grid(["racy"], [2], [10]))
        try:
            register_suite(suite)
            assert get_suite("_tmp") is suite
        finally:
            SUITES.pop("_tmp", None)


class TestTraceCorpus:
    def test_materialization_is_cached(self):
        corpus = TraceCorpus()
        spec = TraceSpec(kind="racy", threads=2, events=20)
        assert corpus.get(spec) is corpus.get(spec)
        assert len(corpus) == 1

    def test_materialize_fills_cache_in_order(self):
        corpus = TraceCorpus()
        specs = grid(["racy", "tso"], [2], [10])
        traces = corpus.materialize(specs)
        assert [trace.name for trace in traces] == [s.trace_id for s in specs]
        assert len(corpus) == 2

    def test_clear_empties_the_cache(self):
        corpus = TraceCorpus()
        corpus.get(TraceSpec(kind="racy", threads=2, events=10))
        corpus.clear()
        assert len(corpus) == 0
