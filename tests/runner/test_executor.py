"""Tests for the parallel sweep executor."""

import pytest

from repro.errors import ReproError
from repro.runner.corpus import Suite, TraceSpec, get_suite, grid
from repro.runner.executor import (
    SweepJob,
    analyses_for_kind,
    execute_job,
    plan_jobs,
    run_jobs,
    run_suite,
)
from repro.runner.results import STATUS_ERROR, STATUS_OK


def tiny_suite(name="tiny"):
    return Suite(name=name, description="test suite",
                 specs=grid(["racy", "history"], [2], [16]))


class TestPlanning:
    def test_every_kind_maps_to_registered_analyses(self):
        from repro.analyses.common.base import Analysis
        from repro.trace.generators import GENERATOR_REGISTRY

        registry = Analysis.registered()
        for kind, entry in GENERATOR_REGISTRY.items():
            assert entry.analyses, kind
            for analysis in entry.analyses:
                assert analysis in registry, (kind, analysis)

    def test_plan_expands_trace_x_analysis_x_backend(self):
        jobs = plan_jobs(tiny_suite())
        # racy -> race-prediction on 5 incremental backends;
        # history -> linearizability on 3 dynamic backends.
        assert len(jobs) == 8
        assert [job.backend for job in jobs] == [
            "vc", "st", "incremental-csst", "vc-flat", "incremental-csst-flat",
            "graph", "csst", "csst-flat"]

    def test_plan_is_deterministic(self):
        assert plan_jobs(tiny_suite()) == plan_jobs(tiny_suite())

    def test_backend_filter_is_scoped_per_analysis(self):
        jobs = plan_jobs(tiny_suite(), backends=["vc", "csst"])
        pairs = {(job.analysis, job.backend) for job in jobs}
        # 'vc' cannot serve linearizability and is skipped there, not rejected.
        assert pairs == {("race-prediction", "vc"), ("linearizability", "csst")}

    def test_analysis_filter(self):
        jobs = plan_jobs(tiny_suite(), analyses=["linearizability"])
        assert {job.analysis for job in jobs} == {"linearizability"}

    def test_unknown_analysis_rejected(self):
        with pytest.raises(ReproError, match="unknown analyses"):
            plan_jobs(tiny_suite(), analyses=["fuzzing"])

    def test_unknown_backend_rejected(self):
        # A typo must not silently plan a zero-job sweep.
        with pytest.raises(ReproError, match="unknown backends"):
            plan_jobs(tiny_suite(), backends=["vcc"])

    def test_unknown_kind_yields_no_jobs(self):
        assert analyses_for_kind("quantum") == ()

    def test_unmapped_kind_is_a_planning_error(self):
        # A generator registered without target analyses must not silently
        # plan a zero-job sweep.
        from repro.trace.generators import GENERATOR_REGISTRY, racy_trace, \
            register_generator

        register_generator("oddkind", racy_trace)
        try:
            suite = Suite(name="odd", description="odd",
                          specs=grid(["oddkind"], [2], [10]))
            with pytest.raises(ReproError, match="no analyses declared"):
                plan_jobs(suite)
        finally:
            GENERATOR_REGISTRY.pop("oddkind", None)

    def test_registered_kind_with_analyses_plans_jobs(self):
        from repro.trace.generators import GENERATOR_REGISTRY, racy_trace, \
            register_generator

        register_generator("oddkind", racy_trace,
                           analyses=("race-prediction",))
        try:
            suite = Suite(name="odd", description="odd",
                          specs=grid(["oddkind"], [2], [10]))
            jobs = plan_jobs(suite)
            assert {job.analysis for job in jobs} == {"race-prediction"}
        finally:
            GENERATOR_REGISTRY.pop("oddkind", None)

    def test_empty_plan_is_an_error_not_a_silent_noop(self):
        # Valid names whose intersection is empty: linearizability cannot
        # run on vc, so nothing would be planned.
        with pytest.raises(ReproError, match="sweep plan is empty"):
            plan_jobs(tiny_suite(), analyses=["linearizability"],
                      backends=["vc"])

    def test_partially_unsatisfiable_analysis_request_is_an_error(self):
        # 'scaling'-style suite with no history kind: race-prediction would
        # plan fine, but the also-requested linearizability matches nothing
        # and must not be dropped silently.
        suite = Suite(name="racy-only", description="test",
                      specs=grid(["racy"], [2], [16]))
        with pytest.raises(ReproError, match="produce no job"):
            plan_jobs(suite, analyses=["race-prediction", "linearizability"])


class TestExecuteJob:
    def test_successful_job_produces_full_record(self):
        job = SweepJob(suite="t", spec=TraceSpec(kind="racy", threads=2, events=20),
                       analysis="race-prediction", backend="vc")
        record = execute_job(job)
        assert record.status == STATUS_OK
        assert record.trace_id == "racy-t2-n20-s0"
        assert record.kind == "racy" and record.threads == 2
        assert record.operation_count > 0
        assert record.elapsed_seconds > 0
        assert record.error is None

    def test_incompatible_backend_is_captured_not_raised(self):
        job = SweepJob(suite="t", spec=TraceSpec(kind="history", threads=2, events=6),
                       analysis="linearizability", backend="vc")
        record = execute_job(job)
        assert record.status == STATUS_ERROR
        assert "deletion" in record.error
        assert record.finding_count == 0


class TestRunJobs:
    def test_serial_and_parallel_agree_modulo_elapsed(self):
        jobs = plan_jobs(tiny_suite())
        serial = run_jobs(jobs, workers=1)
        parallel = run_jobs(jobs, workers=2)
        assert len(serial.records) == len(parallel.records) == len(jobs)
        for left, right in zip(serial.records, parallel.records):
            left_data, right_data = left.to_dict(), right.to_dict()
            for timing_field in ("elapsed_seconds", "elapsed_median_seconds"):
                left_data.pop(timing_field)
                right_data.pop(timing_field)
            assert left_data == right_data

    def test_records_come_back_in_plan_order(self):
        jobs = plan_jobs(tiny_suite())
        result = run_jobs(jobs, workers=3)
        observed = [(r.trace_id, r.analysis, r.backend) for r in result.records]
        expected = [(j.spec.trace_id, j.analysis, j.backend) for j in jobs]
        assert observed == expected

    def test_failures_do_not_sink_the_sweep(self):
        good = SweepJob(suite="t", spec=TraceSpec(kind="racy", threads=2, events=16),
                        analysis="race-prediction", backend="vc")
        bad = SweepJob(suite="t", spec=TraceSpec(kind="history", threads=2, events=6),
                       analysis="linearizability", backend="st")
        result = run_jobs([good, bad, good], workers=2)
        assert [record.status for record in result.records] == [
            STATUS_OK, STATUS_ERROR, STATUS_OK]
        assert len(result.failures()) == 1

    def test_timeout_records_and_does_not_hang_pool_shutdown(self):
        import time

        # ~6s of real analysis work; the collector only waits 0.2s for it.
        slow = SweepJob(suite="t",
                        spec=TraceSpec(kind="racy", threads=4, events=1500),
                        analysis="race-prediction", backend="st")
        start = time.perf_counter()
        result = run_jobs([slow], workers=1 + 1, timeout_seconds=0.2)
        elapsed = time.perf_counter() - start
        assert [record.status for record in result.records] == ["timeout"]
        assert "did not complete" in result.records[0].error
        # The straggler worker is terminated, so shutdown must not block
        # for the job's full duration.
        assert elapsed < 5.0

    def test_empty_job_list(self):
        result = run_jobs([], workers=2, suite_name="empty")
        assert result.records == [] and result.suite == "empty"

    def test_workers_must_be_positive(self):
        with pytest.raises(ReproError, match="workers"):
            run_jobs([], workers=0)


class TestRunSuite:
    def test_smoke_suite_runs_clean(self):
        result = run_suite("smoke", workers=2)
        assert len(result.records) == 33
        assert not result.failures()
        analyses = {record.analysis for record in result.records}
        assert len(analyses) == 7  # every analysis of the paper

    def test_suite_respects_filters(self):
        result = run_suite("smoke", workers=1,
                           analyses=["race-prediction"], backends=["vc", "st"])
        assert {record.analysis for record in result.records} == {"race-prediction"}
        assert {record.backend for record in result.records} == {"vc", "st"}


class TestSeedOverride:
    def test_run_suite_seed_rebinds_every_spec(self):
        result = run_suite("smoke", analyses=["race-prediction"],
                           backends=["vc"], seed=17)
        assert result.records
        assert all(record.seed == 17 for record in result.records)
        assert all("-s17" in record.trace_id for record in result.records)

    def test_override_seed_deduplicates_collapsed_specs(self):
        from repro.runner.corpus import get_suite, override_seed

        # The 'seeds' suite repeats each shape across four seeds; one
        # uniform seed collapses each group to a single spec.
        original = get_suite("seeds")
        rebound = override_seed(original, 5)
        assert len(rebound.specs) == len(original.specs) // 4
        assert all(spec.seed == 5 for spec in rebound.specs)
        assert rebound.name == original.name

    def test_seed_none_leaves_suite_untouched(self):
        baseline = run_suite("smoke", analyses=["race-prediction"],
                             backends=["vc"])
        seeds = {record.seed for record in baseline.records}
        assert seeds == {0}


class TestRepeats:
    def test_single_shot_defaults(self):
        job = plan_jobs(tiny_suite(), analyses=["race-prediction"],
                        backends=["vc"])[0]
        record = execute_job(job)
        assert record.repeats == 1
        assert record.elapsed_median_seconds == record.elapsed_seconds

    def test_repeats_report_min_and_median(self):
        job = plan_jobs(tiny_suite(), analyses=["race-prediction"],
                        backends=["vc"])[0]
        record = execute_job(job, repeats=3)
        assert record.status == STATUS_OK
        assert record.repeats == 3
        # min <= median by construction, and both are real measurements.
        assert 0 <= record.elapsed_seconds <= record.elapsed_median_seconds

    def test_repeats_keep_findings_deterministic(self):
        job = plan_jobs(tiny_suite(), analyses=["race-prediction"],
                        backends=["incremental-csst"])[0]
        single = execute_job(job, repeats=1)
        repeated = execute_job(job, repeats=4)
        assert repeated.finding_count == single.finding_count
        assert repeated.insert_count == single.insert_count
        assert repeated.query_count == single.query_count

    def test_run_jobs_propagates_repeats_serial_and_parallel(self):
        jobs = plan_jobs(tiny_suite(), analyses=["race-prediction"],
                         backends=["vc", "st"])
        serial = run_jobs(jobs, workers=1, repeats=2)
        parallel = run_jobs(jobs, workers=2, repeats=2)
        assert all(record.repeats == 2 for record in serial.records)
        assert all(record.repeats == 2 for record in parallel.records)

    def test_repeats_must_be_positive(self):
        with pytest.raises(ReproError, match="repeats"):
            run_jobs([], workers=1, repeats=0)
