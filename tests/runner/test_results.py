"""Tests for the sweep results model, aggregation and export."""

import csv
import io
import json

import pytest

from repro.runner.results import (
    CSV_COLUMNS,
    STATUS_ERROR,
    STATUS_OK,
    SweepRecord,
    SweepResult,
)


def record(trace="racy-t2-n16-s0", analysis="race-prediction", backend="vc",
           elapsed=1.0, status=STATUS_OK, findings=2, error=None):
    return SweepRecord(suite="t", trace_id=trace, kind=trace.split("-")[0],
                       threads=2, events=16, seed=0, analysis=analysis,
                       backend=backend, status=status, elapsed_seconds=elapsed,
                       finding_count=findings, insert_count=3, delete_count=1,
                       query_count=6, error=error)


class TestSweepRecord:
    def test_operation_count_sums_counters(self):
        assert record().operation_count == 10

    def test_to_row_matches_csv_columns(self):
        row = record().to_row()
        assert len(row) == len(CSV_COLUMNS)
        data = record().to_dict()
        assert row == [data[column] for column in CSV_COLUMNS]


class TestAggregation:
    def test_speedups_vs_explicit_baseline(self):
        result = SweepResult(suite="t", records=[
            record(backend="vc", elapsed=2.0),
            record(backend="incremental-csst", elapsed=0.5),
        ])
        assert result.speedups(baseline="vc") == {"incremental-csst": 4.0}

    def test_speedups_default_baseline_is_per_group(self):
        result = SweepResult(suite="t", records=[
            # Incremental group: baseline vc.
            record(backend="vc", elapsed=2.0),
            record(backend="st", elapsed=1.0),
            # Dynamic group: no vc record, baseline falls back to graph.
            record(trace="history-t2-n6-s0", analysis="linearizability",
                   backend="graph", elapsed=3.0),
            record(trace="history-t2-n6-s0", analysis="linearizability",
                   backend="csst", elapsed=1.0),
        ])
        assert result.speedups() == pytest.approx({"st": 2.0, "csst": 3.0})

    def test_speedups_geomean_across_groups(self):
        result = SweepResult(suite="t", records=[
            record(trace="a", backend="vc", elapsed=2.0),
            record(trace="a", backend="st", elapsed=1.0),   # 2x
            record(trace="b", backend="vc", elapsed=8.0),
            record(trace="b", backend="st", elapsed=1.0),   # 8x
        ])
        assert result.speedups(baseline="vc") == {"st": 4.0}  # sqrt(2*8)

    def test_failed_records_are_excluded_from_aggregates(self):
        result = SweepResult(suite="t", records=[
            record(backend="vc", elapsed=2.0),
            record(backend="st", elapsed=0.1, status=STATUS_ERROR, error="boom"),
        ])
        assert result.speedups(baseline="vc") == {}
        assert result.totals() == {"vc": 2.0}
        assert len(result.failures()) == 1

    def test_backends_in_first_seen_order(self):
        result = SweepResult(suite="t", records=[
            record(backend="st"), record(backend="vc"), record(backend="st")])
        assert result.backends() == ["st", "vc"]


class TestExport:
    def test_json_round_trips(self):
        result = SweepResult(suite="t", records=[record(), record(backend="st")])
        document = json.loads(result.to_json())
        assert document["suite"] == "t"
        assert document["jobs"] == 2 and document["failures"] == 0
        assert document["records"][0]["backend"] == "vc"
        assert set(document) == {"suite", "jobs", "failures", "records",
                                 "speedups"}

    def test_csv_has_header_and_one_row_per_record(self):
        result = SweepResult(suite="t", records=[record(), record(backend="st")])
        buffer = io.StringIO()
        result.to_csv(buffer)
        rows = list(csv.reader(io.StringIO(buffer.getvalue())))
        assert rows[0] == list(CSV_COLUMNS)
        assert len(rows) == 3
        assert rows[1][CSV_COLUMNS.index("backend")] == "vc"

    def test_csv_to_file(self, tmp_path):
        path = tmp_path / "sweep.csv"
        SweepResult(suite="t", records=[record()]).to_csv(path)
        assert path.read_text().startswith(",".join(CSV_COLUMNS[:3]))

    def test_format_table_reports_failures(self):
        result = SweepResult(suite="t", records=[
            record(),
            record(backend="st", status=STATUS_ERROR, error="Boom\nlast line"),
        ])
        rendered = result.format_table()
        assert "sweep[t]: 2 jobs" in rendered
        assert "1 job(s) failed" in rendered
        assert "last line" in rendered

    def test_format_table_mentions_baseline(self):
        result = SweepResult(suite="t", records=[
            record(backend="vc", elapsed=2.0), record(backend="st", elapsed=1.0)])
        assert "geomean speedup vs vc" in result.format_table(baseline="vc")
