"""Tests for the shared happens-before helpers."""

import pytest

from repro.analyses.common.hb import (
    build_sync_order,
    conflicting_pairs,
    insert_ordering,
    lock_graph,
)
from repro.core import IncrementalCSST
from repro.trace import Trace


@pytest.fixture
def sync_trace():
    trace = Trace(name="sync")
    trace.fork(0, 1)
    trace.acquire(0, "l")
    trace.write(0, "x", value=1)
    trace.release(0, "l")
    trace.acquire(1, "l")
    trace.read(1, "x", value=1)
    trace.release(1, "l")
    trace.join(0, 1)
    return trace


class TestInsertOrdering:
    def test_cross_chain_edge_inserted_once(self):
        order = IncrementalCSST(2, 8)
        assert insert_ordering(order, (0, 1), (1, 2))
        assert not insert_ordering(order, (0, 1), (1, 2))
        assert not insert_ordering(order, (0, 0), (1, 5))

    def test_intra_chain_ordering_never_inserted(self):
        order = IncrementalCSST(2, 8)
        assert insert_ordering(order, (0, 1), (0, 5))
        assert not insert_ordering(order, (0, 5), (0, 1))
        assert order.edge_count == 0


class TestBuildSyncOrder:
    def test_lock_edges(self, sync_trace):
        order = IncrementalCSST(2, 8)
        build_sync_order(sync_trace, order, include_fork_join=False)
        # release(0, l) happens before acquire(1, l)
        assert order.reachable((0, 3), (1, 0))

    def test_fork_join_edges(self, sync_trace):
        order = IncrementalCSST(2, 8)
        build_sync_order(sync_trace, order, include_locks=False)
        assert order.reachable((0, 0), (1, 0))   # fork before first child event
        assert order.reachable((1, 2), (0, 4))   # last child event before join

    def test_reads_from_edges_optional(self, sync_trace):
        without = IncrementalCSST(2, 8)
        build_sync_order(sync_trace, without, include_locks=False,
                         include_fork_join=False)
        assert without.edge_count == 0
        with_rf = IncrementalCSST(2, 8)
        build_sync_order(sync_trace, with_rf, include_locks=False,
                         include_fork_join=False, include_reads_from=True)
        assert with_rf.reachable((0, 2), (1, 1))

    def test_returns_number_of_inserted_edges(self, sync_trace):
        order = IncrementalCSST(2, 8)
        inserted = build_sync_order(sync_trace, order)
        assert inserted == order.edge_count > 0

    def test_same_thread_lock_transfer_adds_no_edge(self):
        trace = Trace()
        trace.acquire(0, "l")
        trace.release(0, "l")
        trace.acquire(0, "l")
        trace.release(0, "l")
        order = IncrementalCSST(1, 8)
        assert build_sync_order(trace, order) == 0


class TestConflictingPairs:
    def test_pairs_require_conflict(self):
        trace = Trace()
        trace.write(0, "x")
        trace.read(1, "x")
        trace.read(1, "y")
        pairs = conflicting_pairs(trace)
        assert len(pairs) == 1
        assert pairs[0][0].variable == "x"

    def test_max_pairs_cap(self):
        trace = Trace()
        for index in range(6):
            trace.write(index % 2, "x", value=index)
        assert len(conflicting_pairs(trace, max_pairs=3)) == 3

    def test_window_limits_pair_distance(self):
        trace = Trace()
        for index in range(10):
            trace.write(index % 2, "x", value=index)
        windowed = conflicting_pairs(trace, same_variable_window=1)
        unwindowed = conflicting_pairs(trace)
        assert len(windowed) < len(unwindowed)


class TestLockGraph:
    def test_nested_acquisition_recorded(self):
        trace = Trace()
        trace.acquire(0, "a")
        trace.acquire(0, "b")
        trace.release(0, "b")
        trace.release(0, "a")
        graph = lock_graph(trace)
        assert len(graph["a"]["b"]) == 1
        assert "a" not in graph.get("b", {})

    def test_cycle_appears_for_inverted_orders(self):
        trace = Trace()
        trace.acquire(0, "a")
        trace.acquire(0, "b")
        trace.release(0, "b")
        trace.release(0, "a")
        trace.acquire(1, "b")
        trace.acquire(1, "a")
        trace.release(1, "a")
        trace.release(1, "b")
        graph = lock_graph(trace)
        assert graph["a"]["b"] and graph["b"]["a"]

    def test_release_clears_held_lock(self):
        trace = Trace()
        trace.acquire(0, "a")
        trace.release(0, "a")
        trace.acquire(0, "b")
        trace.release(0, "b")
        graph = lock_graph(trace)
        assert not graph.get("a", {}).get("b")
