"""Flat/object backend parity across all seven analyses.

The acceptance bar for the flat fast path: every analysis must produce
*identical findings* (same findings, same order) on a flat backend as on
its object-based counterpart.  This complements the end-to-end pipeline
test (which only compares finding counts across all backends) with an
exact finding-by-finding comparison on the paired implementations.
"""

import pytest

from repro.analyses.common.base import Analysis
from repro.core import FLAT_EQUIVALENTS
from repro.trace.generators import (
    c11_trace,
    deadlock_trace,
    history_trace,
    memory_trace,
    racy_trace,
    tso_trace,
)

#: (analysis name, trace builder) -- one fixed workload per analysis.
WORKLOADS = [
    ("race-prediction",
     lambda: racy_trace(num_threads=4, events_per_thread=80, seed=41)),
    ("deadlock-prediction",
     lambda: deadlock_trace(num_threads=4, events_per_thread=80, seed=42)),
    ("memory-bugs",
     lambda: memory_trace(num_threads=4, events_per_thread=80, seed=43)),
    ("tso-consistency",
     lambda: tso_trace(num_threads=3, events_per_thread=70, seed=44,
                       stale_read_fraction=0.1)),
    ("use-after-free",
     lambda: memory_trace(num_threads=4, events_per_thread=80, seed=45)),
    ("c11-races",
     lambda: c11_trace(num_threads=5, events_per_thread=80, seed=46)),
    ("linearizability",
     lambda: history_trace(num_threads=3, operations_per_thread=8, seed=47)),
]


def _pairs_for(analysis_cls):
    """The (object, flat) backend pairs applicable to an analysis."""
    applicable = set(analysis_cls.applicable_backends())
    return [(object_name, flat_name)
            for object_name, flat_name in FLAT_EQUIVALENTS.items()
            if object_name in applicable]


@pytest.mark.parametrize("analysis_name, build_trace",
                         WORKLOADS, ids=[w[0] for w in WORKLOADS])
def test_flat_backend_findings_identical(analysis_name, build_trace):
    analysis_cls = Analysis.by_name(analysis_name)
    pairs = _pairs_for(analysis_cls)
    assert pairs, f"no flat pair applies to {analysis_name}"
    trace = build_trace()
    for object_name, flat_name in pairs:
        object_result = analysis_cls(object_name).run(trace)
        flat_result = analysis_cls(flat_name).run(trace)
        object_findings = [str(finding) for finding in object_result.findings]
        flat_findings = [str(finding) for finding in flat_result.findings]
        assert flat_findings == object_findings, (
            f"{analysis_name}: {flat_name} disagrees with {object_name}")
        # The analyses issue the same operation mix regardless of backend.
        assert flat_result.insert_count == object_result.insert_count
        assert flat_result.query_count == object_result.query_count
        assert flat_result.delete_count == object_result.delete_count
        assert sorted(flat_result.details) == sorted(object_result.details)


def test_every_analysis_is_covered():
    covered = {name for name, _build in WORKLOADS}
    assert covered == set(Analysis.registered()), (
        "parity workloads out of sync with the analysis registry")
