"""Tests for the C11 race-detection analysis."""

import pytest

from repro.analyses.c11 import detect_c11_races
from repro.trace import MemoryOrder, Trace
from repro.trace.generators import c11_trace


def _racy_plain_accesses():
    trace = Trace(name="plain-race")
    trace.write(0, "data", value=1)
    trace.read(1, "data")
    return trace


def _release_acquire_synchronised():
    """The message-passing idiom: the data write is ordered before the data
    read through a release store / acquire load on a flag."""
    trace = Trace(name="mp")
    trace.write(0, "data", value=1)
    trace.atomic_write(0, "flag", value=1, memory_order=MemoryOrder.RELEASE)
    trace.atomic_read(1, "flag", value=1, memory_order=MemoryOrder.ACQUIRE)
    trace.read(1, "data")
    return trace


def _relaxed_unsynchronised():
    """Relaxed atomics create no synchronizes-with edge, so the plain
    accesses still race."""
    trace = Trace(name="relaxed")
    trace.write(0, "data", value=1)
    trace.atomic_write(0, "flag", value=1, memory_order=MemoryOrder.RELAXED)
    trace.atomic_read(1, "flag", value=1, memory_order=MemoryOrder.RELAXED)
    trace.read(1, "data")
    return trace


class TestFindings:
    def test_unsynchronised_plain_accesses_race(self):
        result = detect_c11_races(_racy_plain_accesses())
        assert result.finding_count == 1
        assert result.findings[0].variable == "data"

    def test_release_acquire_suppresses_race(self):
        result = detect_c11_races(_release_acquire_synchronised())
        assert result.finding_count == 0
        assert result.details["sw_edges"] == 1

    def test_relaxed_atomics_do_not_synchronise(self):
        result = detect_c11_races(_relaxed_unsynchronised())
        assert result.finding_count == 1
        assert result.details["sw_edges"] == 0

    def test_lock_synchronisation_counts(self):
        trace = Trace()
        trace.acquire(0, "m")
        trace.write(0, "data", value=1)
        trace.release(0, "m")
        trace.acquire(1, "m")
        trace.read(1, "data")
        trace.release(1, "m")
        result = detect_c11_races(trace)
        assert result.finding_count == 0

    def test_atomic_accesses_never_race(self):
        trace = Trace()
        trace.atomic_write(0, "a", value=1, memory_order=MemoryOrder.RELAXED)
        trace.atomic_write(1, "a", value=2, memory_order=MemoryOrder.RELAXED)
        result = detect_c11_races(trace)
        assert result.finding_count == 0

    def test_duplicate_races_deduplicated_by_default(self):
        trace = Trace()
        trace.write(0, "data", value=1)
        trace.read(1, "data")
        trace.write(0, "data", value=2)
        trace.read(1, "data")
        deduplicated = detect_c11_races(trace)
        everything = detect_c11_races(trace, report_all=True)
        assert deduplicated.finding_count <= everything.finding_count


class TestBackendIndependence:
    @pytest.mark.parametrize("backend", ["vc", "st", "incremental-csst"])
    def test_findings_are_backend_independent(self, backend):
        trace = c11_trace(num_threads=4, events_per_thread=80, seed=21)
        reference = detect_c11_races(trace, backend="vc")
        result = detect_c11_races(trace, backend=backend)
        assert result.finding_count == reference.finding_count
        assert result.details["sw_edges"] == reference.details["sw_edges"]
