"""Tests for the reads-from saturation engine."""

import pytest

from repro.analyses.common.saturation import CycleDetected, SaturationEngine
from repro.core import CSST, IncrementalCSST
from repro.trace import Trace


def _simple_rf_trace():
    """w(x) in thread 0, competing w(x) in thread 2, read in thread 1."""
    trace = Trace(name="rf")
    writer = trace.write(0, "x", value=1)
    competitor = trace.write(2, "x", value=2)
    reader = trace.read(1, "x", value=1)
    return trace, writer, competitor, reader


class TestAddOrdering:
    def test_adds_cross_thread_edge(self):
        trace, writer, _competitor, reader = _simple_rf_trace()
        order = IncrementalCSST(3, 4)
        engine = SaturationEngine(order, trace.writes_by_variable())
        assert engine.add_ordering(writer, reader)
        assert order.reachable(writer.node, reader.node)

    def test_implied_ordering_not_reinserted(self):
        trace, writer, _competitor, reader = _simple_rf_trace()
        order = IncrementalCSST(3, 4)
        engine = SaturationEngine(order, trace.writes_by_variable())
        engine.add_ordering(writer, reader)
        assert not engine.add_ordering(writer, reader)

    def test_program_order_is_implicit(self):
        trace = Trace()
        first = trace.write(0, "x", value=1)
        second = trace.read(0, "x", value=1)
        order = IncrementalCSST(1, 4)
        engine = SaturationEngine(order, trace.writes_by_variable())
        assert not engine.add_ordering(first, second)

    def test_reverse_program_order_is_a_cycle(self):
        trace = Trace()
        first = trace.write(0, "x", value=1)
        second = trace.write(0, "x", value=2)
        order = IncrementalCSST(1, 4)
        engine = SaturationEngine(order, trace.writes_by_variable())
        with pytest.raises(CycleDetected):
            engine.add_ordering(second, first)

    def test_cycle_across_threads_detected(self):
        trace, writer, _competitor, reader = _simple_rf_trace()
        order = IncrementalCSST(3, 4)
        engine = SaturationEngine(order, trace.writes_by_variable())
        engine.add_ordering(writer, reader)
        with pytest.raises(CycleDetected):
            engine.add_ordering(reader, writer)


class TestSaturate:
    def test_reads_from_edge_inserted(self):
        trace, writer, _competitor, reader = _simple_rf_trace()
        order = IncrementalCSST(3, 4)
        engine = SaturationEngine(order, trace.writes_by_variable())
        inserted = engine.saturate({reader: writer})
        assert inserted >= 1
        assert order.reachable(writer.node, reader.node)

    def test_competing_write_before_read_forced_before_writer(self):
        trace, writer, competitor, reader = _simple_rf_trace()
        order = IncrementalCSST(3, 4)
        # Force the competitor before the read first.
        order.insert_edge(competitor.node, reader.node)
        engine = SaturationEngine(order, trace.writes_by_variable())
        engine.saturate({reader: writer})
        assert order.reachable(competitor.node, writer.node)

    def test_writer_before_competitor_forces_read_before_competitor(self):
        trace, writer, competitor, reader = _simple_rf_trace()
        order = IncrementalCSST(3, 4)
        order.insert_edge(writer.node, competitor.node)
        engine = SaturationEngine(order, trace.writes_by_variable())
        engine.saturate({reader: writer})
        assert order.reachable(reader.node, competitor.node)

    def test_saturate_reaches_fixed_point(self):
        trace, writer, competitor, reader = _simple_rf_trace()
        order = IncrementalCSST(3, 4)
        order.insert_edge(writer.node, competitor.node)
        engine = SaturationEngine(order, trace.writes_by_variable())
        engine.saturate({reader: writer})
        # A second saturation must not add anything new.
        assert engine.saturate({reader: writer}) == 0

    def test_reads_without_writer_are_skipped(self):
        trace = Trace()
        reader = trace.read(0, "x")
        order = IncrementalCSST(1, 4)
        engine = SaturationEngine(order, trace.writes_by_variable())
        assert engine.saturate({reader: None}) == 0

    def test_infeasible_assignment_raises(self):
        trace = Trace(name="infeasible")
        writer = trace.write(0, "x", value=1)
        reader = trace.read(1, "x", value=1)
        order = IncrementalCSST(2, 4)
        order.insert_edge(reader.node, writer.node)   # read forced before writer
        engine = SaturationEngine(order, trace.writes_by_variable())
        with pytest.raises(CycleDetected):
            engine.saturate({reader: writer})


class TestUndo:
    def test_tracked_insertions_can_be_undone(self):
        trace, writer, _competitor, reader = _simple_rf_trace()
        order = CSST(3, 4)
        engine = SaturationEngine(order, trace.writes_by_variable(),
                                  track_insertions=True)
        engine.saturate({reader: writer})
        assert order.reachable(writer.node, reader.node)
        removed = engine.undo()
        assert removed >= 1
        assert not order.reachable(writer.node, reader.node)
        assert engine.inserted_edges == []

    def test_untracked_engine_has_nothing_to_undo(self):
        trace, writer, _competitor, reader = _simple_rf_trace()
        order = CSST(3, 4)
        engine = SaturationEngine(order, trace.writes_by_variable())
        engine.saturate({reader: writer})
        assert engine.undo() == 0
