"""Tests for the memory-bug prediction and use-after-free query generation."""

import pytest

from repro.analyses.membug import predict_memory_bugs
from repro.analyses.uaf import generate_uaf_queries
from repro.trace import Trace
from repro.trace.generators import memory_trace


def _escaping_object_trace():
    """Thread 0 allocates and frees; thread 1 uses the object unsynchronised."""
    trace = Trace(name="uaf-candidate")
    trace.alloc(0, "p")
    trace.write(0, "p", value=1)
    trace.read(1, "p")
    trace.free(0, "p")
    return trace


def _join_protected_trace():
    """The free happens only after joining the using thread."""
    trace = Trace(name="join-protected")
    trace.alloc(0, "p")
    trace.fork(0, 1)
    trace.read(1, "p")
    trace.join(0, 1)
    trace.free(0, "p")
    return trace


def _double_free_trace():
    trace = Trace(name="double-free")
    trace.alloc(0, "p")
    trace.free(0, "p")
    trace.free(1, "p")
    return trace


class TestMemoryBugFindings:
    def test_unordered_use_and_free_is_reported(self):
        result = predict_memory_bugs(_escaping_object_trace())
        kinds = {finding.kind for finding in result.findings}
        assert "use-after-free" in kinds

    def test_join_ordering_suppresses_use_after_free(self):
        result = predict_memory_bugs(_join_protected_trace())
        assert all(finding.kind != "use-after-free" for finding in result.findings)

    def test_double_free_reported(self):
        result = predict_memory_bugs(_double_free_trace())
        kinds = {finding.kind for finding in result.findings}
        assert "double-free" in kinds

    def test_common_lock_suppresses_bug(self):
        trace = Trace()
        trace.alloc(0, "p")
        trace.acquire(0, "l")
        trace.free(0, "p")
        trace.release(0, "l")
        trace.acquire(1, "l")
        trace.read(1, "p")
        trace.release(1, "l")
        result = predict_memory_bugs(trace)
        assert result.finding_count == 0

    def test_finding_reports_address(self):
        result = predict_memory_bugs(_escaping_object_trace())
        assert result.findings[0].address == "p"
        assert "p" in str(result.findings[0])

    def test_accesses_to_untracked_memory_ignored(self):
        trace = Trace()
        trace.write(0, "global", value=1)
        trace.free(1, "q")          # freed but never allocated in the trace
        trace.alloc(1, "q")
        result = predict_memory_bugs(trace)
        assert result.details["candidates"] == 0


class TestUafQueries:
    def test_query_generated_for_candidate(self):
        result = generate_uaf_queries(_escaping_object_trace())
        assert result.finding_count == 1
        query = result.findings[0]
        assert query.address == "p"
        assert query.constraint_count >= 1
        assert query.constraints[0].reason == "target order"

    def test_no_query_when_order_excludes_candidate(self):
        result = generate_uaf_queries(_join_protected_trace())
        assert result.finding_count == 0

    def test_constraint_totals_recorded(self):
        result = generate_uaf_queries(_escaping_object_trace())
        assert result.details["constraints_generated"] >= result.finding_count

    def test_cone_covers_both_threads(self):
        result = generate_uaf_queries(_escaping_object_trace())
        cone = dict(result.findings[0].cone_sizes)
        assert 0 in cone and 1 in cone

    def test_query_str_mentions_address(self):
        result = generate_uaf_queries(_escaping_object_trace())
        assert "p" in str(result.findings[0])


class TestBackendIndependence:
    @pytest.mark.parametrize("backend", ["vc", "st", "incremental-csst"])
    def test_membug_findings_backend_independent(self, backend):
        trace = memory_trace(num_threads=3, events_per_thread=80, seed=5)
        reference = predict_memory_bugs(trace, backend="incremental-csst")
        result = predict_memory_bugs(trace, backend=backend)
        assert result.finding_count == reference.finding_count

    @pytest.mark.parametrize("backend", ["vc", "st", "incremental-csst"])
    def test_uaf_queries_backend_independent(self, backend):
        trace = memory_trace(num_threads=3, events_per_thread=80, seed=6)
        reference = generate_uaf_queries(trace, backend="incremental-csst")
        result = generate_uaf_queries(trace, backend=backend)
        assert result.finding_count == reference.finding_count
        assert result.details["constraints_generated"] == \
            reference.details["constraints_generated"]
