"""Tests for the predictive deadlock-detection analysis."""

import pytest

from repro.analyses.deadlock import DeadlockPredictionAnalysis, predict_deadlocks
from repro.trace import Trace
from repro.trace.generators import deadlock_trace


def _inverted_lock_order_trace(with_guard: bool = False):
    trace = Trace(name="inverted")
    if with_guard:
        trace.acquire(0, "g")
    trace.acquire(0, "a")
    trace.acquire(0, "b")
    trace.release(0, "b")
    trace.release(0, "a")
    if with_guard:
        trace.release(0, "g")
    if with_guard:
        trace.acquire(1, "g")
    trace.acquire(1, "b")
    trace.acquire(1, "a")
    trace.release(1, "a")
    trace.release(1, "b")
    if with_guard:
        trace.release(1, "g")
    return trace


class TestFindings:
    def test_inverted_lock_order_is_a_deadlock(self):
        result = predict_deadlocks(_inverted_lock_order_trace())
        assert result.finding_count == 1
        pattern = result.findings[0]
        assert set(pattern.locks) == {"a", "b"}
        assert set(pattern.threads) == {0, 1}

    def test_guard_lock_suppresses_deadlock(self):
        result = predict_deadlocks(_inverted_lock_order_trace(with_guard=True))
        assert result.finding_count == 0

    def test_consistent_lock_order_has_no_deadlock(self):
        trace = Trace()
        for thread in (0, 1):
            trace.acquire(thread, "a")
            trace.acquire(thread, "b")
            trace.release(thread, "b")
            trace.release(thread, "a")
        result = predict_deadlocks(trace)
        assert result.finding_count == 0

    def test_single_thread_cannot_deadlock(self):
        trace = Trace()
        trace.acquire(0, "a")
        trace.acquire(0, "b")
        trace.release(0, "b")
        trace.release(0, "a")
        trace.acquire(0, "b")
        trace.acquire(0, "a")
        trace.release(0, "a")
        trace.release(0, "b")
        result = predict_deadlocks(trace)
        assert result.finding_count == 0

    def test_pattern_str_mentions_locks(self):
        result = predict_deadlocks(_inverted_lock_order_trace())
        text = str(result.findings[0])
        assert "a" in text and "b" in text

    def test_max_patterns_cap(self):
        trace = deadlock_trace(num_threads=4, events_per_thread=120,
                               inversion_fraction=0.5, seed=3)
        capped = DeadlockPredictionAnalysis(max_patterns=1).run(trace)
        assert capped.finding_count <= 1


class TestBackendIndependence:
    @pytest.mark.parametrize("backend", ["vc", "st", "incremental-csst"])
    def test_same_deadlocks_on_every_backend(self, backend):
        trace = deadlock_trace(num_threads=4, events_per_thread=90, seed=11)
        reference = predict_deadlocks(trace, backend="incremental-csst")
        result = predict_deadlocks(trace, backend=backend)
        assert result.finding_count == reference.finding_count
        assert result.query_count == reference.query_count
