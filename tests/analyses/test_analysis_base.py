"""Tests for the analysis scaffolding (result container, backend handling)."""

import pytest

from repro.analyses.common.base import Analysis, AnalysisResult
from repro.core import CSST, IncrementalCSST, InstrumentedOrder
from repro.errors import AnalysisError
from repro.trace import Trace


class _CountingAnalysis(Analysis):
    """Minimal analysis used to exercise the base-class machinery."""

    name = "counting"

    def _run(self, trace, order, result):
        for event in trace:
            if event.thread != 0:
                order.insert_edge((0, 0), event.node)
        result.findings.append("done")
        result.details["events"] = len(trace)


class _DeletingAnalysis(_CountingAnalysis):
    name = "deleting"
    requires_deletion = True


@pytest.fixture
def two_thread_trace():
    trace = Trace(name="tiny")
    trace.write(0, "x", value=1)
    trace.read(1, "x", value=1)
    trace.read(1, "y")
    return trace


class TestAnalysisRun:
    def test_run_populates_result(self, two_thread_trace):
        result = _CountingAnalysis("incremental-csst").run(two_thread_trace)
        assert isinstance(result, AnalysisResult)
        assert result.analysis == "counting"
        assert result.trace_name == "tiny"
        assert result.trace_events == 3
        assert result.trace_threads == 2
        assert result.findings == ["done"]
        assert result.insert_count == 2
        assert result.details["events"] == 3
        assert result.elapsed_seconds >= 0

    def test_backend_name_recorded_for_string_spec(self, two_thread_trace):
        result = _CountingAnalysis("vc").run(two_thread_trace)
        assert result.backend == "vc"

    def test_backend_instance_accepted(self, two_thread_trace):
        backend = IncrementalCSST(2, 4)
        result = _CountingAnalysis(backend).run(two_thread_trace)
        assert result.backend == "IncrementalCSST"
        assert backend.edge_count == 2

    def test_capacity_hint_derived_from_trace(self, two_thread_trace):
        analysis = _CountingAnalysis("incremental-csst")
        order = analysis._make_order(two_thread_trace)
        assert isinstance(order, InstrumentedOrder)
        assert order.capacity_hint == two_thread_trace.max_thread_length

    def test_deletion_requirement_enforced(self, two_thread_trace):
        with pytest.raises(AnalysisError, match="decremental"):
            _DeletingAnalysis("vc").run(two_thread_trace)

    def test_deletion_requirement_satisfied_by_csst(self, two_thread_trace):
        result = _DeletingAnalysis("csst").run(two_thread_trace)
        assert result.findings == ["done"]

    def test_deletion_requirement_with_instance(self, two_thread_trace):
        result = _DeletingAnalysis(CSST(2, 4)).run(two_thread_trace)
        assert result.findings == ["done"]


class TestAnalysisRegistry:
    def test_library_analyses_are_auto_registered(self):
        registry = Analysis.registered()
        assert set(registry) == {
            "race-prediction", "deadlock-prediction", "memory-bugs",
            "tso-consistency", "use-after-free", "c11-races",
            "linearizability"}

    def test_ad_hoc_subclasses_stay_out_of_the_registry(self):
        # _CountingAnalysis lives in this test module, not in repro.*.
        assert "counting" not in Analysis.registered()
        assert "deleting" not in Analysis.registered()

    def test_by_name_resolves_and_rejects(self):
        from repro.analyses.race_prediction import RacePredictionAnalysis

        assert Analysis.by_name("race-prediction") is RacePredictionAnalysis
        with pytest.raises(AnalysisError, match="unknown analysis"):
            Analysis.by_name("fuzzing")

    def test_explicit_register_hook(self):
        from repro.analyses.common.base import _ANALYSIS_REGISTRY

        try:
            Analysis.register(_CountingAnalysis)
            assert Analysis.by_name("counting") is _CountingAnalysis
        finally:
            _ANALYSIS_REGISTRY.pop("counting", None)

    def test_register_requires_a_name(self):
        class Anonymous(Analysis):
            name = ""

        with pytest.raises(AnalysisError, match="name"):
            Analysis.register(Anonymous)

    def test_backend_capability_classmethods(self):
        assert _CountingAnalysis.default_backend() == "incremental-csst"
        assert _DeletingAnalysis.default_backend() == "csst"
        assert "vc" in _CountingAnalysis.applicable_backends()
        assert set(_DeletingAnalysis.applicable_backends()) == {
            "graph", "csst", "csst-flat"}


class TestAnalysisResult:
    def test_operation_count_sums_components(self):
        result = AnalysisResult("a", "t", 10, 2, "vc",
                                insert_count=3, delete_count=1, query_count=5)
        assert result.operation_count == 9
        assert result.finding_count == 0

    def test_summary_contains_key_fields(self):
        result = AnalysisResult("a", "t", 10, 2, "vc", findings=["x"],
                                elapsed_seconds=0.5)
        summary = result.summary()
        assert "a[vc]" in summary and "1 findings" in summary
