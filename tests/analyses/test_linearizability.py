"""Tests for the linearizability root-causing analysis."""

import pytest

from repro.analyses.linearizability import (
    LinearizabilityAnalysis,
    QueueSpec,
    RegisterSpec,
    SetSpec,
    check_linearizability,
    extract_operations,
)
from repro.errors import AnalysisError, TraceError
from repro.trace import Trace
from repro.trace.generators import history_trace


def _sequential_set_history():
    trace = Trace(name="sequential")
    trace.begin(0, "add", argument=1)
    trace.end(0, "add", result=True)
    trace.begin(1, "contains", argument=1)
    trace.end(1, "contains", result=True)
    trace.begin(1, "remove", argument=1)
    trace.end(1, "remove", result=True)
    return trace


def _overlapping_linearizable_history():
    """contains(1) overlaps add(1); returning False is explained by
    linearizing the contains before the add."""
    trace = Trace(name="overlapping")
    trace.begin(0, "add", argument=1)
    trace.begin(1, "contains", argument=1)
    trace.end(1, "contains", result=False)
    trace.end(0, "add", result=True)
    trace.begin(1, "contains", argument=1)
    trace.end(1, "contains", result=True)
    return trace


def _violating_history():
    """contains(5) returns True although 5 was never added and the only add
    (of key 1) completed before it started: not linearizable."""
    trace = Trace(name="violation")
    trace.begin(0, "add", argument=1)
    trace.end(0, "add", result=True)
    trace.begin(1, "contains", argument=5)
    trace.end(1, "contains", result=True)
    return trace


class TestOperationExtraction:
    def test_operations_extracted_in_completion_order(self):
        operations = extract_operations(_sequential_set_history())
        assert [op.name for op in operations] == ["add", "contains", "remove"]
        assert operations[0].thread == 0
        assert operations[1].ordinal == 0
        assert operations[2].ordinal == 1

    def test_nested_begin_rejected(self):
        trace = Trace()
        trace.begin(0, "add", argument=1)
        trace.begin(0, "add", argument=2)
        with pytest.raises(TraceError):
            extract_operations(trace)

    def test_unmatched_end_rejected(self):
        trace = Trace()
        trace.end(0, "add", result=True)
        with pytest.raises(TraceError):
            extract_operations(trace)

    def test_unfinished_operation_rejected(self):
        trace = Trace()
        trace.begin(0, "add", argument=1)
        with pytest.raises(TraceError):
            extract_operations(trace)


class TestSequentialSpecs:
    def test_set_spec_semantics(self):
        spec = SetSpec()
        state = spec.initial_state()
        operations = extract_operations(_sequential_set_history())
        result, state = spec.apply(state, operations[0])
        assert result is True
        result, state = spec.apply(state, operations[1])
        assert result is True
        result, state = spec.apply(state, operations[2])
        assert result is True and state == frozenset()

    def test_queue_spec_semantics(self):
        spec = QueueSpec()
        trace = Trace()
        trace.begin(0, "enqueue", argument=3)
        trace.end(0, "enqueue", result=True)
        trace.begin(0, "dequeue")
        trace.end(0, "dequeue", result=3)
        trace.begin(0, "dequeue")
        trace.end(0, "dequeue", result=None)
        operations = extract_operations(trace)
        state = spec.initial_state()
        outcomes = []
        for operation in operations:
            outcome, state = spec.apply(state, operation)
            outcomes.append(outcome)
        assert outcomes == [True, 3, None]

    def test_register_spec_semantics(self):
        spec = RegisterSpec(initial_value=7)
        trace = Trace()
        trace.begin(0, "read")
        trace.end(0, "read", result=7)
        trace.begin(0, "write", argument=3)
        trace.end(0, "write", result=True)
        trace.begin(0, "read")
        trace.end(0, "read", result=3)
        operations = extract_operations(trace)
        state = spec.initial_state()
        outcomes = []
        for operation in operations:
            outcome, state = spec.apply(state, operation)
            outcomes.append(outcome)
        assert outcomes == [7, True, 3]

    def test_unknown_operation_rejected(self):
        trace = Trace()
        trace.begin(0, "pop")
        trace.end(0, "pop", result=None)
        operation = extract_operations(trace)[0]
        with pytest.raises(AnalysisError):
            SetSpec().apply(frozenset(), operation)

    def test_unknown_spec_name_rejected(self):
        with pytest.raises(AnalysisError):
            LinearizabilityAnalysis(spec="btree")


class TestVerdicts:
    def test_sequential_history_is_linearizable(self):
        result = check_linearizability(_sequential_set_history())
        assert result.details["verdict"] == "linearizable"
        assert result.finding_count == 0

    def test_overlapping_history_is_linearizable(self):
        result = check_linearizability(_overlapping_linearizable_history())
        assert result.details["verdict"] == "linearizable"

    def test_violation_detected_with_blocking_window(self):
        result = check_linearizability(_violating_history())
        assert result.details["verdict"] == "violation"
        violation = result.findings[0]
        assert any(op.name == "contains" for op in violation.blocking)
        assert "contains" in str(violation)

    def test_generated_history_without_violation_is_linearizable(self):
        trace = history_trace(num_threads=3, operations_per_thread=12,
                              inject_violation=False, seed=3)
        result = check_linearizability(trace)
        assert result.details["verdict"] == "linearizable"

    def test_generated_queue_history_is_linearizable(self):
        trace = history_trace(num_threads=3, operations_per_thread=10,
                              data_structure="queue", inject_violation=False,
                              seed=4)
        result = check_linearizability(trace, spec="queue")
        assert result.details["verdict"] == "linearizable"

    def test_max_steps_produces_unknown(self):
        trace = history_trace(num_threads=3, operations_per_thread=12,
                              inject_violation=True, seed=5)
        result = check_linearizability(trace, max_steps=3)
        assert result.details["verdict"] in ("unknown", "violation", "linearizable")
        assert result.details["steps"] <= 4


class TestDynamicBackendRequirement:
    def test_incremental_backend_rejected(self):
        with pytest.raises(AnalysisError, match="decremental"):
            check_linearizability(_sequential_set_history(), backend="vc")

    @pytest.mark.parametrize("backend", ["csst", "graph"])
    def test_verdicts_agree_across_dynamic_backends(self, backend):
        trace = history_trace(num_threads=3, operations_per_thread=10,
                              inject_violation=True, seed=9)
        reference = check_linearizability(trace, backend="csst")
        result = check_linearizability(trace, backend=backend)
        assert result.details["verdict"] == reference.details["verdict"]
        assert result.details["steps"] == reference.details["steps"]

    def test_deletions_occur_when_backtracking(self):
        trace = history_trace(num_threads=3, operations_per_thread=12,
                              inject_violation=True, seed=13)
        result = check_linearizability(trace, backend="csst")
        # A violating search must backtrack, and backtracking deletes edges.
        if result.details["verdict"] == "violation":
            assert result.delete_count > 0
