"""Tests for the x86-TSO consistency-checking analysis."""

import pytest

from repro.analyses.tso import TSOConsistencyAnalysis, check_tso_consistency
from repro.errors import AnalysisError
from repro.trace import MemoryOrder, Trace
from repro.trace.generators import tso_trace


def _sb_litmus_trace():
    """The classic store-buffering litmus test: both reads observe the
    initial value.  Forbidden under sequential consistency, allowed under
    x86-TSO thanks to store buffers."""
    trace = Trace(name="sb")
    trace.atomic_write(0, "x", value=1, memory_order=MemoryOrder.SEQ_CST)
    trace.atomic_read(0, "y", value=0, memory_order=MemoryOrder.SEQ_CST)
    trace.atomic_write(1, "y", value=2, memory_order=MemoryOrder.SEQ_CST)
    trace.atomic_read(1, "x", value=0, memory_order=MemoryOrder.SEQ_CST)
    return trace


def _coherence_violation_trace():
    """A read observes a value and a later read of the same variable goes
    back to the initial value: no TSO execution explains this."""
    trace = Trace(name="coherence-violation")
    trace.atomic_write(0, "x", value=1, memory_order=MemoryOrder.SEQ_CST)
    trace.atomic_read(1, "x", value=1, memory_order=MemoryOrder.SEQ_CST)
    trace.atomic_read(1, "x", value=0, memory_order=MemoryOrder.SEQ_CST)
    return trace


def _simple_consistent_trace():
    trace = Trace(name="simple")
    trace.atomic_write(0, "x", value=1, memory_order=MemoryOrder.SEQ_CST)
    trace.atomic_read(1, "x", value=1, memory_order=MemoryOrder.SEQ_CST)
    trace.atomic_write(1, "y", value=2, memory_order=MemoryOrder.SEQ_CST)
    trace.atomic_read(0, "y", value=2, memory_order=MemoryOrder.SEQ_CST)
    return trace


class TestVerdicts:
    def test_store_buffering_is_tso_consistent(self):
        result = check_tso_consistency(_sb_litmus_trace())
        assert result.details["consistent"] is True
        assert result.finding_count == 0

    def test_coherence_violation_is_inconsistent(self):
        result = check_tso_consistency(_coherence_violation_trace())
        assert result.details["consistent"] is False
        assert result.finding_count == 1

    def test_simple_message_passing_is_consistent(self):
        result = check_tso_consistency(_simple_consistent_trace())
        assert result.details["consistent"] is True

    def test_sc_like_generated_trace_is_consistent(self):
        trace = tso_trace(num_threads=3, events_per_thread=80,
                          stale_read_fraction=0.0, seed=2)
        result = check_tso_consistency(trace)
        assert result.details["consistent"] is True

    def test_witness_mentions_reason(self):
        result = check_tso_consistency(_coherence_violation_trace())
        assert "cycle" in str(result.findings[0])


class TestMechanics:
    def test_two_chains_per_thread(self):
        analysis = TSOConsistencyAnalysis()
        assert analysis._num_chains(_sb_litmus_trace()) == 4

    def test_duplicate_write_values_rejected(self):
        trace = Trace()
        trace.atomic_write(0, "x", value=7, memory_order=MemoryOrder.SEQ_CST)
        trace.atomic_write(1, "x", value=7, memory_order=MemoryOrder.SEQ_CST)
        with pytest.raises(AnalysisError, match="duplicate written value"):
            check_tso_consistency(trace)

    def test_read_of_unknown_value_rejected(self):
        trace = Trace()
        trace.atomic_read(0, "x", value=99, memory_order=MemoryOrder.SEQ_CST)
        with pytest.raises(AnalysisError, match="no write"):
            check_tso_consistency(trace)

    def test_details_report_counts(self):
        result = check_tso_consistency(_sb_litmus_trace())
        assert result.details["reads"] == 2
        assert result.details["writes"] == 2
        assert result.details["rounds"] >= 1
        assert result.insert_count > 0


class TestBackendIndependence:
    @pytest.mark.parametrize("backend", ["vc", "st", "incremental-csst"])
    def test_verdict_is_backend_independent(self, backend):
        trace = tso_trace(num_threads=3, events_per_thread=60,
                          stale_read_fraction=0.2, seed=8)
        reference = check_tso_consistency(trace, backend="incremental-csst")
        result = check_tso_consistency(trace, backend=backend)
        assert result.details["consistent"] == reference.details["consistent"]
        assert result.insert_count == reference.insert_count
