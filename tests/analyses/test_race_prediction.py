"""Tests for the predictive race-detection analysis."""

import pytest

from repro.analyses.race_prediction import RacePredictionAnalysis, predict_races
from repro.trace import Trace
from repro.trace.generators import racy_trace


def _unprotected_race_trace():
    trace = Trace(name="unprotected")
    trace.write(0, "x", value=1)
    trace.read(0, "y")
    trace.write(1, "x", value=2)
    trace.read(1, "y")
    return trace


def _lock_protected_trace():
    trace = Trace(name="protected")
    trace.acquire(0, "l")
    trace.write(0, "x", value=1)
    trace.release(0, "l")
    trace.acquire(1, "l")
    trace.write(1, "x", value=2)
    trace.release(1, "l")
    return trace


def _fork_join_ordered_trace():
    trace = Trace(name="fork-join")
    trace.write(0, "x", value=1)
    trace.fork(0, 1)
    trace.write(1, "x", value=2)
    trace.join(0, 1)
    trace.write(0, "x", value=3)
    return trace


class TestFindings:
    def test_unprotected_conflict_is_a_race(self):
        result = predict_races(_unprotected_race_trace())
        assert result.finding_count >= 1
        race = result.findings[0]
        assert race.variable == "x"
        assert {race.first.thread, race.second.thread} == {0, 1}

    def test_common_lock_suppresses_race(self):
        result = predict_races(_lock_protected_trace())
        assert result.finding_count == 0

    def test_fork_join_order_suppresses_race(self):
        result = predict_races(_fork_join_ordered_trace())
        assert result.finding_count == 0

    def test_read_read_is_never_a_race(self):
        trace = Trace()
        trace.read(0, "x")
        trace.read(1, "x")
        result = predict_races(trace)
        assert result.finding_count == 0

    def test_race_str_mentions_variable(self):
        result = predict_races(_unprotected_race_trace())
        assert "x" in str(result.findings[0])


class TestResultMetadata:
    def test_result_records_counts_and_backend(self):
        result = predict_races(_unprotected_race_trace(), backend="incremental-csst")
        assert result.analysis == "race-prediction"
        assert result.backend == "incremental-csst"
        assert result.trace_events == 4
        assert result.trace_threads == 2
        assert result.query_count > 0
        assert result.elapsed_seconds >= 0
        assert "candidates" in result.details

    def test_summary_is_one_line(self):
        result = predict_races(_unprotected_race_trace())
        assert "\n" not in result.summary()
        assert "race-prediction" in result.summary()

    def test_max_candidates_caps_work(self):
        trace = racy_trace(num_threads=4, events_per_thread=60, seed=3)
        capped = RacePredictionAnalysis(max_candidates=5).run(trace)
        assert capped.details["candidates"] <= 5


class TestBackendIndependence:
    @pytest.mark.parametrize("backend", ["vc", "st", "incremental-csst", "csst"])
    def test_same_races_on_every_backend(self, backend):
        trace = racy_trace(num_threads=3, events_per_thread=60, seed=7)
        reference = predict_races(trace, backend="incremental-csst")
        result = predict_races(trace, backend=backend)
        assert result.finding_count == reference.finding_count
        assert result.insert_count == reference.insert_count
        assert result.query_count == reference.query_count
