"""Event sources: iterables, traces, generators, files (plain/gz/followed),
and the backpressured push feed."""

import threading
import time

import pytest

from repro.errors import FeedCancelledError, StreamError
from repro.stream.source import (
    FeedSource,
    FileSource,
    GeneratorSource,
    IterableSource,
    TraceSource,
    open_source,
)
from repro.trace import dump_trace, dumps_trace, save_trace
from repro.trace.generators import racy_trace
from repro.trace.trace import Trace


def small_trace() -> Trace:
    trace = Trace(name="small")
    trace.write(0, "x", value=1)
    trace.read(1, "x")
    trace.write(0, "y", value=2)
    trace.read(1, "y")
    return trace


class TestIterableSource:
    def test_yields_in_order(self):
        trace = small_trace()
        source = IterableSource(list(trace))
        assert list(source) == list(trace)

    def test_single_pass_consumed(self):
        source = IterableSource(iter(small_trace()))
        list(source.events())
        with pytest.raises(StreamError):
            list(source.events())

    def test_factory_is_replayable_and_skips(self):
        trace = small_trace()
        source = IterableSource(lambda: iter(trace))
        assert list(source.events()) == list(trace)
        assert list(source.events(skip=2)) == list(trace)[2:]


class TestTraceSource:
    def test_name_and_skip(self):
        trace = small_trace()
        source = TraceSource(trace)
        assert source.name == "small"
        assert list(source.events(skip=1)) == list(trace)[1:]


class TestGeneratorSource:
    def test_deterministic_replay(self):
        source = GeneratorSource("racy", threads=3, events=20, seed=7)
        first = list(source.events())
        again = list(GeneratorSource("racy", threads=3, events=20,
                                     seed=7).events())
        assert first == again
        assert first == list(racy_trace(num_threads=3, events_per_thread=20,
                                        seed=7, name=source.name))

    def test_from_spec_parses_parameters(self):
        source = GeneratorSource.from_spec("racy:threads=2,events=10,seed=3")
        assert (source.kind, source.threads, source.size, source.seed) == (
            "racy", 2, 10, 3)

    def test_from_spec_rejects_unknown_kind(self):
        with pytest.raises(StreamError):
            GeneratorSource.from_spec("nonsense")

    def test_from_spec_rejects_malformed_parameter(self):
        with pytest.raises(StreamError):
            GeneratorSource.from_spec("racy:threads")


class TestStcSource:
    def test_open_source_reads_stc(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "t.stc"
        save_trace(trace, path)
        source = open_source(str(path))
        assert isinstance(source, TraceSource)
        assert list(source.events()) == list(trace)

    def test_stc_source_is_replayable(self, tmp_path):
        path = tmp_path / "t.stc"
        save_trace(small_trace(), path)
        source = open_source(str(path))
        first = list(source.events())
        assert list(source.events()) == first

    def test_follow_rejected_for_stc(self, tmp_path):
        path = tmp_path / "t.stc"
        save_trace(small_trace(), path)
        with pytest.raises(StreamError, match="follow"):
            open_source(str(path), follow=True)

    def test_mislabeled_std_file_sniffs_as_stc(self, tmp_path):
        """A .std path whose bytes are really .stc routes by content."""
        trace = small_trace()
        real = tmp_path / "real.stc"
        save_trace(trace, real)
        fake = tmp_path / "fake.std"
        fake.write_bytes(real.read_bytes())
        assert list(open_source(str(fake)).events()) == list(trace)


class TestFileSource:
    def test_reads_std_file(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "t.std"
        dump_trace(trace, path)
        source = FileSource(path)
        assert list(source.events()) == list(trace)
        assert source.name == "small"  # picked up from the header

    def test_reads_gzip(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "t.std.gz"
        dump_trace(trace, path)
        assert list(FileSource(path).events()) == list(trace)

    def test_follow_rejected_for_gzip(self, tmp_path):
        with pytest.raises(StreamError):
            FileSource(tmp_path / "t.std.gz", follow=True)

    def test_skip(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "t.std"
        dump_trace(trace, path)
        assert list(FileSource(path).events(skip=3)) == list(trace)[3:]

    def test_follow_sees_appended_events(self, tmp_path):
        trace = small_trace()
        text = dumps_trace(trace)
        head, tail = text.splitlines(True)[:3], text.splitlines(True)[3:]
        path = tmp_path / "t.std"
        path.write_text("".join(head))
        source = FileSource(path, follow=True, poll_interval=0.01,
                            idle_timeout=1.0)

        def append_rest():
            time.sleep(0.05)
            with open(path, "a", encoding="utf-8") as stream:
                stream.write("".join(tail))

        writer = threading.Thread(target=append_rest)
        writer.start()
        events = list(source.events())
        writer.join()
        assert events == list(trace)

    def test_follow_idle_timeout_terminates(self, tmp_path):
        path = tmp_path / "t.std"
        dump_trace(small_trace(), path)
        source = FileSource(path, follow=True, poll_interval=0.01,
                            idle_timeout=0.05)
        assert list(source.events()) == list(small_trace())


class TestFeedSource:
    def test_emit_assigns_indexes_and_drains(self):
        feed = FeedSource(maxsize=16)
        feed.emit(0, "write", variable="x", value=1)
        feed.emit(1, "read", variable="x")
        feed.emit(0, "read", variable="x")
        feed.close()
        events = list(feed.events())
        assert [(e.thread, e.index) for e in events] == [(0, 0), (1, 0), (0, 1)]

    def test_backpressure_timeout(self):
        feed = FeedSource(maxsize=1)
        feed.emit(0, "read", variable="x")
        with pytest.raises(StreamError):
            feed.emit(0, "read", variable="x", timeout=0.02)

    def test_push_after_close_rejected(self):
        feed = FeedSource()
        feed.close()
        with pytest.raises(StreamError):
            feed.emit(0, "read", variable="x")

    def test_concurrent_emitters_keep_per_thread_index_order(self):
        """Index assignment and enqueue are one critical section: parallel
        producers emitting for the same logical thread must enqueue in
        index order (a race here crashes the engine with 'out-of-order
        stream')."""
        feed = FeedSource(maxsize=10_000)
        errors = []

        def producer():
            try:
                for _ in range(500):
                    feed.emit(0, "read", variable="x")
            except StreamError as error:  # pragma: no cover - failure path
                errors.append(error)

        workers = [threading.Thread(target=producer) for _ in range(4)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        feed.close()
        assert not errors
        indexes = [event.index for event in feed.events()]
        assert indexes == sorted(indexes)
        assert len(indexes) == 2000

    def test_skip_rejected_on_push_feed(self):
        feed = FeedSource()
        with pytest.raises(StreamError, match="no replayable prefix"):
            next(feed.events(skip=5))

    def test_threaded_producer_consumer(self):
        feed = FeedSource(maxsize=4)
        trace = racy_trace(num_threads=2, events_per_thread=20, seed=1)

        def produce():
            for event in trace:
                feed.push(event, timeout=5.0)
            feed.close()

        producer = threading.Thread(target=produce)
        producer.start()
        events = list(feed.events())
        producer.join()
        assert events == list(trace)

    def test_cancel_unblocks_pending_push(self):
        """Regression: a producer blocked on backpressure against a consumer
        that will never drain used to deadlock; cancel() must wake it with
        the typed error."""
        feed = FeedSource(maxsize=1)
        feed.emit(0, "read", variable="x")  # buffer now full
        outcome = []

        def produce():
            try:
                feed.emit(0, "read", variable="x", timeout=10.0)
                outcome.append("returned")  # pragma: no cover - failure path
            except FeedCancelledError:
                outcome.append("cancelled")

        producer = threading.Thread(target=produce)
        producer.start()
        time.sleep(0.05)  # let the producer block in _reserve_slot
        feed.cancel()
        producer.join(timeout=5.0)
        assert not producer.is_alive()
        assert outcome == ["cancelled"]

    def test_abandoned_consumer_iterator_unblocks_producer(self):
        """Breaking out of the consuming loop (dropping the iterator) is
        the implicit form of cancel: blocked producers must not deadlock."""
        feed = FeedSource(maxsize=1)
        outcome = []

        def produce():
            try:
                for _ in range(10):
                    feed.emit(0, "read", variable="x", timeout=10.0)
                outcome.append("done")  # pragma: no cover - failure path
            except FeedCancelledError:
                outcome.append("cancelled")

        producer = threading.Thread(target=produce)
        producer.start()
        iterator = feed.events()
        next(iterator)  # consume one event, leave the producer blocked
        time.sleep(0.05)
        iterator.close()  # what GC / `break` + drop does
        producer.join(timeout=5.0)
        assert not producer.is_alive()
        assert outcome == ["cancelled"]
        assert feed.cancelled

    def test_push_after_cancel_raises_immediately(self):
        feed = FeedSource()
        feed.cancel()
        with pytest.raises(FeedCancelledError):
            feed.push(next(iter(small_trace())))
        with pytest.raises(FeedCancelledError):
            feed.emit(0, "read", variable="x")

    def test_clean_close_and_drain_is_not_cancellation(self):
        """Exhausting a closed feed is the normal shutdown path; the feed
        must not flip to cancelled just because the iterator finished."""
        feed = FeedSource()
        feed.emit(0, "read", variable="x")
        feed.close()
        assert len(list(feed.events())) == 1
        assert not feed.cancelled

    def test_cancel_drops_buffered_events(self):
        feed = FeedSource(maxsize=8)
        feed.emit(0, "read", variable="x")
        feed.emit(0, "read", variable="x")
        feed.cancel()
        assert len(feed) == 0
        assert list(feed.events()) == []


class TestOpenSource:
    def test_existing_file(self, tmp_path):
        path = tmp_path / "t.std"
        dump_trace(small_trace(), path)
        assert isinstance(open_source(str(path)), FileSource)

    def test_generator_spec(self):
        source = open_source("racy:threads=2,events=10")
        assert isinstance(source, GeneratorSource)

    def test_follow_with_generator_rejected(self):
        with pytest.raises(StreamError):
            open_source("racy:threads=2,events=10", follow=True)

    def test_unknown_rejected(self):
        with pytest.raises(StreamError):
            open_source("/no/such/file.std")
