"""Window policies: boundaries, retention, spec round-trips."""

import pytest

from repro.errors import StreamError
from repro.stream.window import (
    SlidingWindow,
    TumblingWindow,
    UnboundedWindow,
    parse_window,
)


class TestUnboundedWindow:
    def test_never_bounded_never_flushes_by_default(self):
        window = UnboundedWindow()
        assert not window.bounded
        assert not any(window.boundary(i) for i in range(1, 100))
        assert window.retain() is None

    def test_flush_every_marks_boundaries_without_eviction(self):
        window = UnboundedWindow(flush_every=10)
        assert [i for i in range(1, 31) if window.boundary(i)] == [10, 20, 30]
        assert window.retain() is None

    def test_flush_every_must_be_positive(self):
        with pytest.raises(StreamError):
            UnboundedWindow(flush_every=0)


class TestTumblingWindow:
    def test_boundary_every_size_events(self):
        window = TumblingWindow(5)
        assert [i for i in range(1, 16) if window.boundary(i)] == [5, 10, 15]

    def test_retains_nothing(self):
        assert TumblingWindow(5).retain() == 0

    def test_size_validation(self):
        with pytest.raises(StreamError):
            TumblingWindow(0)


class TestSlidingWindow:
    def test_boundary_every_slide_events(self):
        window = SlidingWindow(10, 4)
        assert [i for i in range(1, 13) if window.boundary(i)] == [4, 8, 12]

    def test_retains_overlap(self):
        assert SlidingWindow(10, 4).retain() == 6

    def test_default_slide_is_half(self):
        assert SlidingWindow(10).slide == 5

    def test_slide_validation(self):
        with pytest.raises(StreamError):
            SlidingWindow(10, 0)
        with pytest.raises(StreamError):
            SlidingWindow(10, 11)


class TestParseWindow:
    def test_none_spellings(self):
        for spec in (None, "none", "0", ""):
            assert isinstance(parse_window(spec), UnboundedWindow)

    def test_tumbling(self):
        window = parse_window("25")
        assert isinstance(window, TumblingWindow)
        assert window.size == 25

    def test_sliding(self):
        window = parse_window("40/10")
        assert isinstance(window, SlidingWindow)
        assert (window.size, window.slide) == (40, 10)

    def test_flush_every_applies_to_unbounded(self):
        window = parse_window("none", flush_every=7)
        assert window.flush_every == 7

    def test_garbage_rejected(self):
        with pytest.raises(StreamError):
            parse_window("ten")

    def test_flush_every_with_bounded_window_rejected(self):
        with pytest.raises(StreamError, match="flush_every only applies"):
            parse_window("500", flush_every=50)

    def test_spec_round_trip(self):
        for spec in ("none", "25", "40/10"):
            assert parse_window(spec).spec() == spec
