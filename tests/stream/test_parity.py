"""Streaming/batch parity: for every registered analysis over a corpus of
generated traces, the StreamEngine's final results equal a batch
``Analysis.run()`` -- including across a checkpoint/restore cycle.

This is the subsystem's core contract (unbounded window): streaming changes
*when* findings surface, never the final answer.
"""

import pytest

from repro.analyses.common.base import Analysis
from repro.stream.engine import StreamEngine
from repro.stream.source import TraceSource
from repro.stream.window import UnboundedWindow
from repro.trace.generators import build_trace

#: One representative workload per analysis (kind, per-thread size, seed).
#: Sizes are small enough to keep the whole matrix in seconds, large enough
#: that every analysis produces findings on at least one seed.
CORPUS = [
    ("racy", "race-prediction", 3, 40, 0),
    ("racy", "race-prediction", 4, 30, 1),
    ("deadlock", "deadlock-prediction", 3, 36, 0),
    ("deadlock", "deadlock-prediction", 4, 30, 2),
    ("memory", "memory-bugs", 3, 36, 0),
    ("memory", "use-after-free", 3, 36, 0),
    ("tso", "tso-consistency", 2, 30, 0),
    ("tso", "tso-consistency", 3, 24, 1),
    ("c11", "c11-races", 3, 36, 0),
    ("c11", "c11-races", 4, 30, 3),
    ("history", "linearizability", 2, 8, 0),
    ("history", "linearizability", 3, 6, 1),
]

IDS = [f"{analysis}-t{threads}-n{events}-s{seed}"
       for _kind, analysis, threads, events, seed in CORPUS]


def _normalize(findings):
    """Order-insensitive, value-based comparison form."""
    return sorted(map(str, findings))


@pytest.fixture(scope="module")
def traces():
    cache = {}
    for kind, _analysis, threads, events, seed in CORPUS:
        key = (kind, threads, events, seed)
        if key not in cache:
            cache[key] = build_trace(kind, num_threads=threads, events=events,
                                     seed=seed)
    return cache


def test_corpus_covers_every_registered_analysis():
    covered = {analysis for _k, analysis, *_rest in CORPUS}
    assert covered == set(Analysis.registered())


@pytest.mark.parametrize("kind, analysis, threads, events, seed", CORPUS,
                         ids=IDS)
class TestStreamingBatchParity:
    def test_stream_equals_batch(self, traces, kind, analysis, threads,
                                 events, seed):
        trace = traces[(kind, threads, events, seed)]
        batch = Analysis.by_name(analysis)().run(trace)
        engine = StreamEngine([analysis])
        result = engine.run(TraceSource(trace))
        final = result.results[analysis]
        assert final.findings == batch.findings
        assert _normalize(final.findings) == _normalize(batch.findings)

    def test_stream_with_periodic_flushes_equals_batch(self, traces, kind,
                                                       analysis, threads,
                                                       events, seed):
        trace = traces[(kind, threads, events, seed)]
        batch = Analysis.by_name(analysis)().run(trace)
        engine = StreamEngine([analysis],
                              window=UnboundedWindow(flush_every=17))
        result = engine.run(TraceSource(trace))
        assert result.results[analysis].findings == batch.findings

    def test_checkpoint_restore_cycle_equals_batch(self, traces, tmp_path,
                                                   kind, analysis, threads,
                                                   events, seed):
        from repro.stream.checkpoint import restore_engine

        trace = traces[(kind, threads, events, seed)]
        batch = Analysis.by_name(analysis)().run(trace)
        path = tmp_path / "ck.json"
        first = StreamEngine([analysis],
                             window=UnboundedWindow(flush_every=23))
        first.run(TraceSource(trace), max_events=max(1, len(trace) // 2),
                  checkpoint_path=str(path))
        resumed = restore_engine(path)
        result = resumed.run(TraceSource(trace), skip=resumed.cursor)
        assert result.results[analysis].findings == batch.findings


def test_all_analyses_attached_concurrently_keep_parity(traces):
    """One engine, several attachments, one pass -- each analysis still
    matches its own batch run."""
    trace = traces[("racy", 3, 40, 0)]
    names = ["race-prediction", "deadlock-prediction", "c11-races"]
    engine = StreamEngine(names, window=UnboundedWindow(flush_every=25))
    result = engine.run(TraceSource(trace))
    for name in names:
        batch = Analysis.by_name(name)().run(trace)
        assert result.results[name].findings == batch.findings
