"""StreamEngine: ingestion, shared backbone, windows, emission semantics."""

import pytest

from repro.analyses.common.base import Analysis
from repro.errors import StreamError
from repro.stream.engine import StreamEngine, finding_key
from repro.stream.source import TraceSource
from repro.stream.window import SlidingWindow, TumblingWindow, UnboundedWindow
from repro.trace.event import Event, EventKind
from repro.trace.generators import c11_trace, racy_trace
from repro.trace.trace import Trace


class TestConstruction:
    def test_needs_analyses(self):
        with pytest.raises(StreamError):
            StreamEngine([])

    def test_duplicate_analyses_rejected(self):
        with pytest.raises(StreamError):
            StreamEngine(["race-prediction", "race-prediction"])

    def test_instances_need_named_backends(self):
        from repro.core import make_partial_order

        backend = make_partial_order("vc", num_chains=2, capacity_hint=8)
        analysis = Analysis.by_name("race-prediction")(backend)
        with pytest.raises(StreamError):
            StreamEngine([analysis])

    def test_backbone_conflicts_with_bounded_window(self):
        with pytest.raises(StreamError):
            StreamEngine(["race-prediction"], window=TumblingWindow(10),
                         backbone=True)

    def test_unknown_backend_rejected(self):
        with pytest.raises(StreamError, match="unknown partial-order"):
            StreamEngine(["race-prediction"], backend="vcc")

    def test_inapplicable_backend_falls_back_to_default(self):
        # linearizability cannot run on vc (needs deletion); forcing the
        # sweep-style backend must not break the attachment.
        engine = StreamEngine(["linearizability"], backend="vc")
        spec = engine._attachments[0].analysis._backend_spec
        assert spec == Analysis.by_name("linearizability").default_backend()


class TestIngestion:
    def test_out_of_order_event_rejected(self):
        engine = StreamEngine(["race-prediction"])
        engine.feed(Event(thread=0, index=0, kind=EventKind.READ, variable="x"))
        with pytest.raises(StreamError):
            engine.feed(Event(thread=0, index=2, kind=EventKind.READ,
                              variable="x"))

    def test_feed_after_finish_rejected(self):
        engine = StreamEngine(["race-prediction"])
        engine.feed(Event(thread=0, index=0, kind=EventKind.READ, variable="x"))
        engine.finish()
        with pytest.raises(StreamError):
            engine.feed(Event(thread=0, index=1, kind=EventKind.READ,
                              variable="x"))

    def test_cursor_and_stats_advance(self):
        trace = racy_trace(num_threads=3, events_per_thread=10, seed=0)
        engine = StreamEngine(["race-prediction"])
        engine.run(TraceSource(trace))
        assert engine.cursor == len(trace)
        assert engine.stats.events == len(trace)
        assert engine.stats.threads == trace.num_threads


class TestSharedBackbone:
    def test_lock_edges_inserted_online(self):
        trace = Trace()
        trace.acquire(0, "l")
        trace.release(0, "l")
        trace.acquire(1, "l")
        trace.release(1, "l")
        engine = StreamEngine(["race-prediction"])
        engine.run(TraceSource(trace))
        order = engine.order
        assert order is not None
        assert order.edge_count == 1  # release(0) -> acquire(1)
        assert order.reachable((0, 1), (1, 0))

    def test_fork_join_edges_resolved(self):
        trace = Trace()
        trace.fork(0, 1)
        trace.write(1, "x", value=1)
        trace.join(0, 1)
        engine = StreamEngine(["race-prediction"])
        engine.run(TraceSource(trace))
        order = engine.order
        assert order.reachable((0, 0), (1, 0))  # fork -> first child event
        assert order.reachable((1, 0), (0, 1))  # last child event -> join

    def test_new_thread_grows_backbone(self):
        trace = Trace()
        for thread in range(5):
            trace.acquire(thread, "l")
            trace.release(thread, "l")
        engine = StreamEngine(["race-prediction"])
        engine.run(TraceSource(trace))
        assert engine.order.num_chains >= 5
        assert engine.order.edge_count == 4

    def test_bounded_window_disables_backbone(self):
        engine = StreamEngine(["race-prediction"], window=TumblingWindow(10))
        assert engine.order is None


class TestWindows:
    def test_tumbling_window_bounds_buffer(self):
        trace = racy_trace(num_threads=3, events_per_thread=40, seed=1)
        engine = StreamEngine(["race-prediction"], window=TumblingWindow(30))
        peak = 0
        for event in trace:
            engine.feed(event)
            peak = max(peak, engine.buffered_events)
        engine.finish()
        assert peak <= 30
        assert engine.stats.evicted > 0

    def test_sliding_window_bounds_buffer_with_overlap(self):
        trace = racy_trace(num_threads=3, events_per_thread=40, seed=1)
        engine = StreamEngine(["race-prediction"],
                              window=SlidingWindow(30, 10))
        peak = 0
        for event in trace:
            engine.feed(event)
            peak = max(peak, engine.buffered_events)
        engine.finish()
        assert peak <= 30

    def test_windowed_snapshot_is_rebased(self):
        trace = racy_trace(num_threads=3, events_per_thread=40, seed=1)
        engine = StreamEngine(["race-prediction"], window=TumblingWindow(25))
        for event in trace:
            engine.feed(event)
        snapshot, offsets = engine.snapshot()
        assert len(snapshot) == engine.buffered_events
        # Every thread's chain restarts at 0 in the snapshot.
        for thread in snapshot.threads:
            assert snapshot.thread_events(thread)[0].index == 0
        # Offsets map snapshot indexes back to true stream indexes.
        for thread, offset in offsets.items():
            assert offset > 0

    def test_final_results_survive_exact_window_multiple(self):
        """When the stream length is a multiple of the window size, the
        boundary flush IS the final flush: finish() must not re-evaluate
        the emptied buffer and overwrite the results with zeros."""
        trace = racy_trace(num_threads=3, events_per_thread=30, seed=2)
        size = len(trace)  # one tumbling window == the whole trace
        engine = StreamEngine(["race-prediction"],
                              window=TumblingWindow(size))
        result = engine.run(TraceSource(trace))
        batch = Analysis.by_name("race-prediction")(
            "incremental-csst").run(trace)
        final = result.results["race-prediction"]
        assert final.trace_events == len(trace)
        assert final.findings == batch.findings

    def test_overlapping_windows_do_not_duplicate_findings(self):
        trace = racy_trace(num_threads=3, events_per_thread=40, seed=1)
        engine = StreamEngine(["race-prediction"],
                              window=SlidingWindow(60, 20))
        engine.run(TraceSource(trace))
        keys = [finding_key(item.finding) for item in engine.findings]
        assert len(keys) == len(set(keys))


class TestEmission:
    def test_incremental_emission_before_end_of_stream(self):
        trace = racy_trace(num_threads=3, events_per_thread=60, seed=2)
        engine = StreamEngine(["race-prediction"],
                              window=UnboundedWindow(flush_every=20))
        result = engine.run(TraceSource(trace))
        positions = [item.position for item in result.findings]
        assert positions, "expected findings on this seeded workload"
        assert min(positions) < len(trace)

    def test_on_finding_callback_sees_every_emission(self):
        trace = racy_trace(num_threads=3, events_per_thread=40, seed=2)
        seen = []
        engine = StreamEngine(["race-prediction"],
                              window=UnboundedWindow(flush_every=25),
                              on_finding=seen.append)
        result = engine.run(TraceSource(trace))
        assert seen == result.findings

    def test_native_flush_without_feed_covers_the_view(self):
        """begin() + flush() with no feed() must honor the base contract
        (cover everything in the view) via the batch fallback, not return
        an empty online result."""
        trace = c11_trace(num_threads=3, events_per_thread=40, seed=1)
        analysis = Analysis.by_name("c11-races")("vc")
        batch = Analysis.by_name("c11-races")("vc").run(trace)
        analysis.begin(trace)
        result = analysis.flush()
        assert result.trace_events == len(trace)
        assert result.findings == batch.findings

    def test_native_analysis_emits_at_feed_time(self):
        trace = c11_trace(num_threads=3, events_per_thread=60, seed=1)
        engine = StreamEngine(["c11-races"])  # no flush_every needed
        result = engine.run(TraceSource(trace))
        batch = Analysis.by_name("c11-races")("vc").run(trace)
        assert result.findings_for("c11-races") == batch.findings
        positions = [item.position for item in result.findings]
        # Findings surface mid-stream, not only at the final flush.
        assert positions and min(positions) < len(trace)

    def test_final_findings_match_batch_even_with_mid_flushes(self):
        trace = racy_trace(num_threads=3, events_per_thread=60, seed=2)
        engine = StreamEngine(["race-prediction"],
                              window=UnboundedWindow(flush_every=15))
        result = engine.run(TraceSource(trace))
        batch = Analysis.by_name("race-prediction")(
            "incremental-csst").run(trace)
        assert result.results["race-prediction"].findings == batch.findings
        assert result.final_findings_for("race-prediction") == batch.findings
        # Alarm stream covers at least the final set (non-monotone
        # predictive analyses may have raised additional prefix alarms).
        emitted = {finding_key(f) for f in result.findings_for(
            "race-prediction")}
        final = {finding_key(f) for f in batch.findings}
        assert final <= emitted


class TestFlushErrors:
    def test_incomplete_state_is_tolerated_mid_stream(self):
        """A linearizability history mid-operation is 'not yet', not fatal:
        the flush error is recorded and the next flush re-evaluates."""
        from repro.trace.generators import history_trace

        trace = history_trace(num_threads=2, operations_per_thread=8, seed=0)
        engine = StreamEngine(["linearizability"],
                              window=UnboundedWindow(flush_every=7))
        result = engine.run(TraceSource(trace))
        assert engine.stats.flush_errors > 0
        # The stream ends with a complete history: the final flush succeeds
        # and matches the batch run.
        assert "linearizability" not in result.errors
        batch = Analysis.by_name("linearizability")().run(trace)
        assert result.results["linearizability"].findings == batch.findings

    def test_truncated_stream_reports_final_error(self):
        from repro.trace.generators import history_trace

        trace = history_trace(num_threads=2, operations_per_thread=8, seed=0)
        engine = StreamEngine(["linearizability"])
        result = engine.run(TraceSource(trace), max_events=3)
        assert "linearizability" in result.errors
        assert "linearizability" not in result.results


class TestFindingKey:
    def test_rebased_window_events_key_identically(self):
        first = Event(thread=0, index=5, kind=EventKind.WRITE, variable="x")
        second = Event(thread=1, index=7, kind=EventKind.READ, variable="x")
        rebased_first = Event(thread=0, index=1, kind=EventKind.WRITE,
                              variable="x")
        rebased_second = Event(thread=1, index=2, kind=EventKind.READ,
                               variable="x")
        from repro.analyses.race_prediction import Race

        true_key = finding_key(Race(first, second))
        window_key = finding_key(Race(rebased_first, rebased_second),
                                 base={0: 4, 1: 5})
        assert true_key == window_key

    def test_distinct_findings_key_differently(self):
        from repro.analyses.race_prediction import Race

        a = Event(thread=0, index=5, kind=EventKind.WRITE, variable="x")
        b = Event(thread=1, index=7, kind=EventKind.READ, variable="x")
        c = Event(thread=1, index=8, kind=EventKind.READ, variable="x")
        assert finding_key(Race(a, b)) != finding_key(Race(a, c))
