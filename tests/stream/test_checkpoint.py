"""Checkpoint/restore: state round-trips, corruption handling, resume."""

import json
import os
import threading

import pytest

from repro.errors import CheckpointError
from repro.stream.checkpoint import (
    CHECKPOINT_VERSION,
    load_checkpoint,
    restore_engine,
    save_checkpoint,
)
from repro.stream.engine import StreamEngine
from repro.stream.source import TraceSource
from repro.stream.window import TumblingWindow, UnboundedWindow
from repro.trace.generators import racy_trace


@pytest.fixture
def trace():
    return racy_trace(num_threads=3, events_per_thread=40, seed=3)


class TestStateRoundTrip:
    def test_state_is_json_serializable(self, trace):
        engine = StreamEngine(["race-prediction"],
                              window=UnboundedWindow(flush_every=25))
        engine.run(TraceSource(trace), max_events=50)
        state = engine.state_dict()
        restored_state = json.loads(json.dumps(state))
        rebuilt = StreamEngine.from_state(restored_state)
        assert rebuilt.cursor == engine.cursor
        assert rebuilt.buffered_events == engine.buffered_events
        assert rebuilt.analyses == engine.analyses

    def test_restored_engine_reproduces_live_trace(self, trace):
        engine = StreamEngine(["race-prediction"])
        engine.run(TraceSource(trace), max_events=60)
        rebuilt = StreamEngine.from_state(engine.state_dict())
        original, _ = engine.snapshot()
        restored, _ = rebuilt.snapshot()
        assert list(original) == list(restored)

    def test_restored_backbone_matches(self, trace):
        engine = StreamEngine(["race-prediction"])
        engine.run(TraceSource(trace), max_events=60)
        rebuilt = StreamEngine.from_state(engine.state_dict())
        assert rebuilt.order.edge_count == engine.order.edge_count

    def test_windowed_state_round_trips(self, trace):
        engine = StreamEngine(["race-prediction"],
                              window=TumblingWindow(25))
        engine.run(TraceSource(trace), max_events=60)
        rebuilt = StreamEngine.from_state(engine.state_dict())
        assert rebuilt.buffered_events == engine.buffered_events
        assert rebuilt.order is None

    def test_tampered_buffer_detected(self, trace):
        engine = StreamEngine(["race-prediction"])
        engine.run(TraceSource(trace), max_events=30)
        state = engine.state_dict()
        state["buffer"] = state["buffer"][:-1]  # lose an event
        with pytest.raises(CheckpointError):
            StreamEngine.from_state(state)


class TestFiles:
    def test_save_and_load(self, trace, tmp_path):
        path = tmp_path / "ck.json"
        engine = StreamEngine(["race-prediction"])
        engine.run(TraceSource(trace), max_events=30,
                   checkpoint_path=str(path))
        state = load_checkpoint(path)
        assert state["version"] == CHECKPOINT_VERSION
        assert state["cursor"] == 30

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "absent.json")

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text(json.dumps({"version": 999}))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_periodic_checkpoints_count(self, trace, tmp_path):
        path = tmp_path / "ck.json"
        engine = StreamEngine(["race-prediction"])
        engine.run(TraceSource(trace), checkpoint_path=str(path),
                   checkpoint_every=25)
        # every 25 events plus the final save
        assert engine.stats.checkpoints == len(trace) // 25 + 1

    def test_failed_save_cleans_up_temp_file(self, trace, tmp_path):
        # The published name is a non-empty directory: the tmp write
        # succeeds, the rename fails -- the tmp must not be left behind.
        path = tmp_path / "ck.json"
        path.mkdir()
        (path / "occupant").write_text("x")
        engine = StreamEngine(["race-prediction"])
        engine.run(TraceSource(trace), max_events=10)
        with pytest.raises(CheckpointError):
            save_checkpoint(engine, path)
        assert not (tmp_path / "ck.json.tmp").exists()


class TestTornCheckpoints:
    """A restore must never observe (or accept) a partial checkpoint.

    The atomic tmp-write + fsync + rename in ``save_checkpoint`` guarantees
    the published name always holds a complete document; these tests pin
    the failure mode down from the *reader* side by simulating every torn
    state a non-atomic writer could have produced."""

    @pytest.fixture
    def checkpoint_bytes(self, trace, tmp_path):
        path = tmp_path / "ck.json"
        engine = StreamEngine(["race-prediction"])
        engine.run(TraceSource(trace), max_events=40,
                   checkpoint_path=str(path))
        return path.read_bytes()

    def test_every_truncation_is_rejected_never_misread(
            self, checkpoint_bytes, tmp_path):
        """Property: for *every* proper prefix of a real checkpoint file,
        restore raises CheckpointError -- no truncation length parses as
        valid JSON that silently restores a wrong engine."""
        path = tmp_path / "torn.json"
        # Cutting inside trailing whitespace still leaves a complete
        # document, so the property ranges over prefixes of the
        # *meaningful* bytes only.
        size = len(checkpoint_bytes.rstrip())
        # Every cut point for small files; dense sampling plus the edges
        # for large ones (keeps the sweep O(hundreds) of parses).
        cuts = range(size) if size <= 512 else sorted(
            set(range(0, size, max(1, size // 256)))
            | set(range(max(0, size - 16), size)))
        for cut in cuts:
            path.write_bytes(checkpoint_bytes[:cut])
            with pytest.raises(CheckpointError):
                restore_engine(path)

    def test_torn_tail_garbage_rejected(self, checkpoint_bytes, tmp_path):
        """A crashed non-atomic writer can also leave old bytes after the
        new document's truncation point; json.load must reject the junk."""
        path = tmp_path / "torn.json"
        path.write_bytes(checkpoint_bytes[:len(checkpoint_bytes) // 2]
                         + b"\0\0garbage{{{")
        with pytest.raises(CheckpointError):
            restore_engine(path)

    def test_concurrent_saves_and_loads_never_see_partial(
            self, trace, tmp_path):
        """Atomicity under contention: a loader racing a saver always gets
        either a complete old document or a complete new one."""
        path = tmp_path / "ck.json"
        engine = StreamEngine(["race-prediction"])
        engine.run(TraceSource(trace), max_events=40)
        save_checkpoint(engine, path)
        stop = threading.Event()
        errors = []

        def saver():
            while not stop.is_set():
                save_checkpoint(engine, path)

        def loader():
            while not stop.is_set():
                try:
                    state = load_checkpoint(path)
                except CheckpointError as error:  # pragma: no cover
                    errors.append(error)
                    return
                if state["cursor"] != 40:  # pragma: no cover
                    errors.append(AssertionError(state["cursor"]))
                    return

        threads = [threading.Thread(target=saver),
                   threading.Thread(target=loader),
                   threading.Thread(target=loader)]
        for thread in threads:
            thread.start()
        import time
        time.sleep(0.3)
        stop.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert not errors

    def test_restore_from_published_name_ignores_tmp(self, trace, tmp_path):
        """A stale .tmp (crash between write and rename) must be invisible
        to restore: only the published name is read."""
        path = tmp_path / "ck.json"
        engine = StreamEngine(["race-prediction"])
        engine.run(TraceSource(trace), max_events=30,
                   checkpoint_path=str(path))
        (tmp_path / "ck.json.tmp").write_text("{torn")
        restored = restore_engine(path)
        assert restored.cursor == 30


class TestResume:
    def test_resume_completes_to_batch_findings(self, trace, tmp_path):
        from repro.analyses.common.base import Analysis

        batch = Analysis.by_name("race-prediction")(
            "incremental-csst").run(trace)
        path = tmp_path / "ck.json"
        first = StreamEngine(["race-prediction"],
                             window=UnboundedWindow(flush_every=20))
        first.run(TraceSource(trace), max_events=len(trace) // 2,
                  checkpoint_path=str(path))
        resumed = restore_engine(path)
        assert resumed.cursor == len(trace) // 2
        result = resumed.run(TraceSource(trace), skip=resumed.cursor)
        assert result.results["race-prediction"].findings == batch.findings

    def test_restore_preserves_per_analysis_backend(self, trace):
        engine = StreamEngine(["race-prediction"], backend="vc")
        engine.run(TraceSource(trace), max_events=30)
        rebuilt = StreamEngine.from_state(engine.state_dict())
        assert rebuilt._attachments[0].analysis._backend_spec == "vc"
        result = rebuilt.run(TraceSource(trace), skip=rebuilt.cursor)
        assert result.results["race-prediction"].backend == "vc"

    def test_native_restore_does_not_re_emit_during_replay(self, tmp_path):
        """Replaying the buffer rediscovers a native analysis's findings;
        the restored dedup keys must suppress their re-emission."""
        from repro.trace.generators import c11_trace

        trace = c11_trace(num_threads=3, events_per_thread=40, seed=1)
        path = tmp_path / "ck.json"
        first = StreamEngine(["c11-races"])
        first.run(TraceSource(trace), max_events=len(trace) // 2,
                  checkpoint_path=str(path))
        assert first.findings, "fixture must emit before the checkpoint"
        replay_emissions = []
        resumed = restore_engine(path, on_finding=replay_emissions.append)
        assert replay_emissions == []  # nothing re-emitted by the replay
        result = resumed.run(TraceSource(trace), skip=resumed.cursor)
        first_keys = {str(item.finding) for item in first.findings}
        second_keys = {str(item.finding) for item in result.findings}
        assert not (first_keys & second_keys)

    def test_resume_does_not_re_emit(self, trace, tmp_path):
        path = tmp_path / "ck.json"
        first = StreamEngine(["race-prediction"],
                             window=UnboundedWindow(flush_every=20))
        first.run(TraceSource(trace), max_events=len(trace) // 2,
                  checkpoint_path=str(path))
        first_keys = {(item.analysis, str(item.finding))
                      for item in first.findings}
        resumed = restore_engine(path)
        result = resumed.run(TraceSource(trace), skip=resumed.cursor)
        second_keys = {(item.analysis, str(item.finding))
                       for item in result.findings}
        assert not (first_keys & second_keys)
