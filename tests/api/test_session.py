"""Session facade tests: dispatch, workflows, capabilities."""

import json

import pytest

from repro.api import (
    AnalyzeConfig,
    CompareConfig,
    ConvertConfig,
    FuzzConfig,
    GenConfig,
    GenerateConfig,
    Session,
    SweepConfig,
    WatchConfig,
)
from repro.errors import ConfigError, ReproError
from repro.trace import dump_trace


@pytest.fixture(scope="module")
def session():
    return Session()


@pytest.fixture
def trace_file(tmp_path, session):
    result = session.run(GenerateConfig(kind="racy", threads=3, events=60,
                                        seed=5))
    path = tmp_path / "trace.std"
    dump_trace(result.trace, path)
    return str(path)


class TestDispatch:
    def test_run_dispatches_on_config_type(self, session):
        result = session.run(GenerateConfig(kind="tso", threads=2,
                                            events=10))
        assert result.trace.num_threads == 2

    def test_run_rejects_foreign_objects(self, session):
        with pytest.raises(ConfigError, match="cannot dispatch"):
            session.run({"analysis": "race-prediction"})

    def test_run_rejects_hooks_the_workflow_does_not_take(self, session):
        with pytest.raises(ConfigError, match="sweep does not accept "
                                              "on_finding"):
            session.run(SweepConfig(), on_finding=lambda item: None)


class TestAnalyze:
    def test_analyze_from_file(self, session, trace_file):
        result = session.run(AnalyzeConfig(analysis="race-prediction",
                                           trace=trace_file))
        assert result.raw.backend == "incremental-csst"
        assert result.raw.finding_count >= 1
        assert result.exit_code == 0

    def test_analyze_accepts_live_trace(self, session):
        generated = session.run(GenerateConfig(kind="racy", threads=3,
                                               events=60, seed=5))
        result = session.analyze(
            AnalyzeConfig(analysis="race-prediction", trace="unused.std"),
            trace=generated.trace)
        assert result.raw.trace_events == len(generated.trace)

    def test_analyze_resolves_friendly_names(self, session, trace_file):
        result = session.run(AnalyzeConfig(analysis="race_prediction",
                                           trace=trace_file))
        assert result.raw.analysis == "race-prediction"

    def test_analyze_table_bounds_findings_but_dict_keeps_all(
            self, session, trace_file):
        result = session.run(AnalyzeConfig(analysis="race-prediction",
                                           trace=trace_file, max_findings=1))
        assert result.to_table().count("finding:") == 1
        assert "more" in result.to_table()
        document = result.to_dict()
        assert len(document["findings"]) == document["finding_count"] > 1

    def test_unknown_backend_is_an_error(self, session, trace_file):
        with pytest.raises(ReproError, match="unknown partial-order backend"):
            session.run(AnalyzeConfig(analysis="race-prediction",
                                      trace=trace_file, backend="vcc"))


class TestCompare:
    def test_compare_covers_applicable_backends(self, session, trace_file):
        result = session.run(CompareConfig(analysis="memory-bugs",
                                           trace=trace_file))
        backends = [run.backend for run in result.runs]
        assert "vc" in backends and "incremental-csst" in backends
        findings = {run.finding_count for run in result.runs}
        assert len(findings) == 1  # every backend agrees

    def test_compare_backend_filter(self, session, trace_file):
        result = session.run(CompareConfig(analysis="memory-bugs",
                                           trace=trace_file,
                                           backends="vc,st"))
        assert [run.backend for run in result.runs] == ["vc", "st"]

    def test_compare_inapplicable_filter_is_an_error(self, session,
                                                     trace_file):
        with pytest.raises(ReproError, match="applicable"):
            session.run(CompareConfig(analysis="linearizability",
                                      trace=trace_file, backends="vc"))

    def test_compare_rejects_misspelled_backend_even_with_valid_ones(
            self, session, trace_file):
        # A typo must not silently shrink the comparison to the valid rest.
        with pytest.raises(ReproError,
                           match=r"not applicable.*incremental_csst"):
            session.run(CompareConfig(analysis="memory-bugs",
                                      trace=trace_file,
                                      backends="vc,incremental_csst"))

    def test_compare_rejects_empty_backend_selection(self, session,
                                                     trace_file):
        with pytest.raises(ReproError, match="no backends selected"):
            session.run(CompareConfig(analysis="memory-bugs",
                                      trace=trace_file, backends=()))

    def test_analysis_params_change_the_run(self, session, trace_file):
        wide = session.run(AnalyzeConfig(analysis="race-prediction",
                                         trace=trace_file))
        narrow = session.run(AnalyzeConfig(
            analysis="race-prediction", trace=trace_file,
            params={"candidate_window": 1}))
        assert narrow.raw.details["candidates"] < \
            wide.raw.details["candidates"]

    def test_explicitly_empty_sweep_selection_is_an_error(self, session):
        # analyses=() must not silently widen to "every analysis".
        with pytest.raises(ReproError, match="sweep plan is empty"):
            session.run(SweepConfig(suite="smoke", analyses=()))


class TestSweep:
    def test_sweep_returns_structured_records(self, session):
        result = session.run(SweepConfig(suite="smoke",
                                         analyses="race-prediction",
                                         backends="vc,st"))
        assert len(result.records) == 2
        assert result.exit_code == 0
        document = result.to_dict()
        assert document["jobs"] == 2 and document["failures"] == 0

    def test_sweep_json_matches_runner_layer(self, session):
        result = session.run(SweepConfig(suite="smoke",
                                         analyses="race-prediction",
                                         backends="vc", baseline="vc"))
        assert result.to_json() == result.sweep.to_json(baseline="vc")
        assert result.to_table() == result.sweep.format_table(baseline="vc")

    def test_sweep_warnings_are_collected(self, session):
        result = session.run(SweepConfig(suite="smoke",
                                         analyses="c11-races",
                                         backends="vc", timeout=5,
                                         baseline="vc", format="csv"))
        text = "\n".join(result.warnings)
        assert "timeout only applies to parallel runs" in text
        assert "baseline has no effect with the csv format" in text

    def test_sweep_unknown_baseline_is_an_error(self, session):
        with pytest.raises(ReproError, match="unknown baseline backend"):
            session.run(SweepConfig(suite="smoke", baseline="vcc"))


class TestWatch:
    def test_watch_streams_findings_through_hook(self, session, trace_file):
        seen = []
        result = session.run(
            WatchConfig(source=trace_file, analyses="race_prediction",
                        flush_every=30),
            on_finding=seen.append)
        assert result.exit_code == 0
        assert seen, "expected streamed findings"
        final = result.to_dict()["final"]["race-prediction"]
        assert final  # the summary document carries the final findings

    def test_watch_checkpoint_resume_notices(self, session, trace_file,
                                             tmp_path):
        checkpoint = str(tmp_path / "ck.json")
        session.run(WatchConfig(source=trace_file,
                                analyses="race-prediction",
                                max_events=30, checkpoint=checkpoint))
        notices = []
        result = session.run(
            WatchConfig(source=trace_file, analyses="race-prediction",
                        checkpoint=checkpoint),
            on_notice=lambda kind, message: notices.append((kind, message)))
        assert result.resumed_from == checkpoint
        assert result.resume_cursor == 30
        assert any(kind == "info" and "resumed from" in message
                   for kind, message in notices)
        assert not result.warnings

    def test_watch_flush_failure_sets_exit_code(self, session, tmp_path):
        generated = session.run(GenerateConfig(kind="history", threads=2,
                                               events=8))
        path = tmp_path / "h.std"
        dump_trace(generated.trace, path)
        result = session.run(WatchConfig(source=str(path),
                                         analyses="linearizability",
                                         max_events=3))
        assert result.exit_code == 1
        assert any("last flush failed" in warning
                   for warning in result.warnings)


class TestConvert:
    def test_std_to_stc_to_std_is_lossless(self, session, trace_file,
                                           tmp_path):
        stc = tmp_path / "t.stc"
        result = session.run(ConvertConfig(source=trace_file, out=str(stc)))
        assert (result.source_format, result.out_format) == ("std", "stc")
        assert stc.read_bytes()[:4] == b"\x89STC"
        assert result.event_count > 0

        back = tmp_path / "back.std"
        again = session.run(ConvertConfig(source=str(stc), out=str(back)))
        assert (again.source_format, again.out_format) == ("stc", "std")
        from repro.trace import load_trace
        assert list(load_trace(back)) == list(load_trace(trace_file))

    def test_to_flag_overrides_suffix(self, session, trace_file, tmp_path):
        out = tmp_path / "weird.bin"
        result = session.run(ConvertConfig(source=trace_file, out=str(out),
                                           to="stc"))
        assert result.out_format == "stc"
        assert out.read_bytes()[:4] == b"\x89STC"

    def test_result_exports(self, session, trace_file, tmp_path):
        result = session.run(ConvertConfig(source=trace_file,
                                           out=str(tmp_path / "t.stc")))
        document = result.to_dict()
        assert document["source_format"] == "std"
        assert document["out_format"] == "stc"
        json.dumps(document)
        assert "->" in result.to_table()
        assert result.exit_code == 0

    def test_analyze_reads_stc_directly(self, session, trace_file,
                                        tmp_path):
        stc = tmp_path / "t.stc"
        session.run(ConvertConfig(source=trace_file, out=str(stc)))
        from_std = session.run(AnalyzeConfig(analysis="race-prediction",
                                             trace=trace_file))
        from_stc = session.run(AnalyzeConfig(analysis="race-prediction",
                                             trace=str(stc)))
        assert ([str(f) for f in from_stc.raw.findings]
                == [str(f) for f in from_std.raw.findings])

    def test_missing_source_is_an_error(self, session, tmp_path):
        with pytest.raises((ReproError, OSError)):
            session.run(ConvertConfig(source=str(tmp_path / "nope.std"),
                                      out=str(tmp_path / "out.stc")))


class TestGenAndFuzz:
    def test_gen_corpus_builds_and_registers(self, session, tmp_path):
        from repro.runner.corpus import SUITES

        out = tmp_path / "corpus"
        try:
            result = session.run(GenConfig(out=str(out), name="apitest",
                                           kinds="racy", count=1, seed=2))
            manifest = result.to_dict()
            assert manifest["suite"] == "corpus:apitest"
            assert (out / "manifest.json").exists()
            assert "corpus:apitest" in SUITES
            # The manifest document is exactly what landed on disk.
            on_disk = json.loads((out / "manifest.json").read_text())
            assert manifest == on_disk
        finally:
            SUITES.pop("corpus:apitest", None)

    def test_fuzz_quick_run(self, session, tmp_path):
        cases = []
        result = session.run(
            FuzzConfig(seeds=4, quick=True, kinds="racy",
                       out=str(tmp_path / "fz")),
            on_case=cases.append)
        assert result.exit_code == 0
        assert len(cases) == 4
        document = result.to_dict()
        assert document["ok"] and document["cases"] == 4
        assert document["divergences"] == []


class TestCapabilities:
    def test_capabilities_shape(self, session):
        caps = session.capabilities()
        assert set(caps) == {"version", "analyses", "backends", "kinds",
                             "suites", "formats", "observability",
                             "tuning", "serving", "exit_codes"}
        assert len(caps["analyses"]) == 7
        assert caps["exit_codes"] == {"ok": 0, "failure": 1, "error": 2,
                                      "interrupt": 130}
        assert caps["backends"]["csst"]["supports_deletion"]
        assert caps["backends"]["vc"]["incremental"]
        assert not caps["backends"]["vc"]["dynamic"]
        assert caps["analyses"]["race-prediction"]["fed_by"]
        tuning = caps["tuning"]
        assert tuning["auto_backend"] == "auto"
        assert tuning["policies"] == ["static", "heuristic", "bandit"]
        assert tuning["default_policy"] == "heuristic"
        assert "auto" in caps["analyses"]["race-prediction"]["backends"]
        obs = caps["observability"]
        assert obs["sinks"] == ["memory", "jsonl", "prom"]
        assert obs["metrics"]["stream_events_total"]["type"] == "counter"
        assert obs["metrics"]["span_seconds"]["type"] == "histogram"
        json.dumps(caps)  # must serialize cleanly

    def test_capabilities_matches_version(self, session):
        import repro

        assert session.capabilities()["version"] == repro.__version__
