"""Config contract tests: frozen, validated, dict round-trip."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    ALL_CONFIGS,
    AnalyzeConfig,
    BenchConfig,
    CompareConfig,
    ConvertConfig,
    FuzzConfig,
    GenConfig,
    GenerateConfig,
    ReportConfig,
    ServeConfig,
    StatsConfig,
    SweepConfig,
    TimelineConfig,
    WatchConfig,
)
from repro.errors import ConfigError, ReproError

#: One representative instance per config class (non-default values where
#: it matters, so round trips are not trivially passing on defaults).
REPRESENTATIVES = [
    GenerateConfig(kind="racy", threads=3, events=60, seed=5,
                   params={"num_locks": 2}),
    AnalyzeConfig(analysis="race-prediction", trace="t.std", backend="vc",
                  max_findings=3),
    CompareConfig(analysis="memory-bugs", trace="t.std",
                  backends="vc,incremental-csst"),
    SweepConfig(suite="smoke", jobs=2, analyses="race-prediction",
                backends=("vc", "st"), baseline="vc", timeout=4.0,
                repeat=2, seed=7, format="json"),
    WatchConfig(source="t.std", analyses="race_prediction,deadlock",
                window="50", checkpoint="ck.json", max_events=30),
    ServeConfig(analyses="race_prediction,deadlock",
                sources=("a.std", "b.std"), workers=3, backend="auto",
                checkpoint_dir="ck", checkpoint_every=50, queue_size=64,
                quota_events=1000, drain_timeout=30.0,
                crash_worker="1@25"),
    GenConfig(out="corpus", name="c", kinds="racy,locked-mix", count=2,
              seed=3, threads="uniform:2,4",
              params={"racy": {"num_locks": 2}}, schedulers=("rr",),
              format="stc"),
    ConvertConfig(source="t.std.gz", out="t.stc", to="stc"),
    FuzzConfig(seeds=5, quick=True, kinds="racy", backends="vc",
               stream=False, seed=2, out="fz", minimize=False,
               max_checks=10),
    BenchConfig(quick=True, repeats=2, out="-", threshold=3.0,
                compare=False),
    StatsConfig(source="m.jsonl", format="prom", index=0),
    TimelineConfig(source="m.jsonl", out="t.json", index=0),
    ReportConfig(mode="trend", dir="bench", out="tables", basename="trend"),
]


class TestRoundTrip:
    @pytest.mark.parametrize("config", REPRESENTATIVES,
                             ids=lambda config: type(config).command)
    def test_from_dict_of_to_dict_is_identity(self, config):
        cls = type(config)
        rebuilt = cls.from_dict(config.to_dict())
        assert rebuilt == config
        # Idempotent on the dict side too: re-serializing the rebuilt
        # config yields the same document.
        assert rebuilt.to_dict() == config.to_dict()

    @pytest.mark.parametrize("cls", ALL_CONFIGS,
                             ids=lambda cls: cls.command)
    def test_unknown_keys_rejected(self, cls):
        config = next(c for c in REPRESENTATIVES if type(c) is cls)
        document = config.to_dict()
        document["quantum"] = 1
        with pytest.raises(ConfigError, match="unknown .* config keys"):
            cls.from_dict(document)

    def test_to_dict_is_jsonable(self):
        import json

        for config in REPRESENTATIVES:
            json.dumps(config.to_dict())

    def test_from_dict_rejects_non_mapping(self):
        with pytest.raises(ConfigError, match="must be a mapping"):
            SweepConfig.from_dict(["suite", "smoke"])


class TestNormalization:
    def test_name_lists_accept_csv_strings_and_sequences(self):
        by_string = SweepConfig(analyses="race-prediction, deadlock-prediction")
        by_list = SweepConfig(analyses=["race-prediction",
                                        "deadlock-prediction"])
        assert by_string == by_list
        assert by_string.analyses == ("race-prediction",
                                      "deadlock-prediction")

    def test_empty_name_list_is_preserved_not_defaulted(self):
        # Only None means "default set": a caller whose filtered name list
        # came up empty must not silently run everything.
        assert SweepConfig(analyses="").analyses == ()
        assert WatchConfig(source="s", analyses=[]).analyses == ()
        assert SweepConfig().analyses is None

    def test_params_mapping_and_pairs_are_equivalent(self):
        by_mapping = GenerateConfig(kind="racy", params={"num_locks": 2})
        by_pairs = GenerateConfig(kind="racy", params=(("num_locks", 2),))
        assert by_mapping == by_pairs
        assert by_mapping.to_dict()["params"] == {"num_locks": 2}

    def test_configs_are_frozen(self):
        config = SweepConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.jobs = 2

    def test_replace_derives_variants(self):
        config = dataclasses.replace(SweepConfig(), jobs=4)
        assert config.jobs == 4

    def test_gen_config_coerces_numeric_shapes(self):
        # A JSON config file may carry numeric distribution shorthands.
        config = GenConfig(out="c", threads=4, events=30, count="2")
        assert config.threads == "4" and config.events == "30"
        assert config.count == 2

    def test_numeric_fields_coerce_string_payloads(self):
        # Query strings and loosely typed JSON deliver numbers as strings;
        # they must land as numbers, never crash with a raw TypeError.
        assert SweepConfig.from_dict({"jobs": "2", "timeout": "1.5"}) == \
            SweepConfig(jobs=2, timeout=1.5)
        assert GenerateConfig(kind="racy", threads="4").threads == 4
        assert FuzzConfig(seeds="5").seeds == 5
        assert WatchConfig(source="s", flush_every="3").flush_every == 3
        assert BenchConfig(threshold="2.5").threshold == 2.5

    def test_non_numeric_strings_raise_config_error(self):
        with pytest.raises(ConfigError, match="jobs must be an integer"):
            SweepConfig(jobs="two")
        with pytest.raises(ConfigError, match="timeout must be a number"):
            SweepConfig(timeout="soon")

    def test_fractional_floats_are_not_truncated_for_int_fields(self):
        with pytest.raises(ConfigError, match="jobs must be an integer"):
            SweepConfig(jobs=2.9)
        assert SweepConfig(jobs=2.0).jobs == 2  # integral floats are fine

    def test_gen_params_must_be_a_kind_mapping(self):
        # A bare string (or any non-mapping shape) is a clean ConfigError,
        # not an unpacking traceback.
        with pytest.raises(ConfigError, match="params must map kind"):
            GenConfig(out="c", params="locked-mix")
        with pytest.raises(ConfigError, match="params"):
            GenConfig(out="c", params={"racy": 3})

    def test_analyze_params_reach_the_analysis(self):
        config = AnalyzeConfig(analysis="race-prediction", trace="t.std",
                               params={"candidate_window": 10})
        assert config.params == (("candidate_window", 10),)
        assert AnalyzeConfig.from_dict(config.to_dict()) == config


class TestValidation:
    @pytest.mark.parametrize("build, message", [
        (lambda: GenerateConfig(kind=""), "workload kind"),
        (lambda: GenerateConfig(kind="racy", threads=0), "threads"),
        (lambda: AnalyzeConfig(analysis="", trace="t"), "analysis name"),
        (lambda: AnalyzeConfig(analysis="a", trace=""), "trace path"),
        (lambda: SweepConfig(jobs=0), "jobs must be >= 1"),
        (lambda: SweepConfig(repeat=0), "repeat must be >= 1"),
        (lambda: SweepConfig(format="xml"), "unknown sweep format"),
        (lambda: SweepConfig(timeout=0), "timeout must be > 0"),
        (lambda: WatchConfig(source=""), "source"),
        (lambda: WatchConfig(source="s", flush_every=0), "flush_every"),
        (lambda: GenConfig(out=""), "output directory"),
        (lambda: GenConfig(out="c", count=0), "count must be >= 1"),
        (lambda: FuzzConfig(seeds=0), "seeds must be >= 1"),
        (lambda: FuzzConfig(max_checks=0), "max_checks must be >= 1"),
        (lambda: BenchConfig(mode="mem"), "unknown bench mode"),
        (lambda: BenchConfig(repeats=0), "repeats must be >= 1"),
        (lambda: BenchConfig(threshold=0.0), "threshold must be > 0"),
    ])
    def test_invalid_values_raise_config_error(self, build, message):
        with pytest.raises(ConfigError, match=message):
            build()

    def test_config_error_is_a_repro_error(self):
        assert issubclass(ConfigError, ReproError)


names = st.one_of(st.none(), st.lists(
    st.text(alphabet="abcdefgh-", min_size=1, max_size=8), max_size=4))


class TestRoundTripProperties:
    """Property round trips over generated field values (hypothesis)."""

    @settings(max_examples=50, deadline=None)
    @given(jobs=st.integers(1, 64), repeat=st.integers(1, 16),
           seed=st.one_of(st.none(), st.integers(-2**31, 2**31)),
           timeout=st.one_of(st.none(), st.floats(0.001, 1e6)),
           fmt=st.sampled_from(SweepConfig.FORMATS),
           analyses=names, backends=names)
    def test_sweep_config(self, jobs, repeat, seed, timeout, fmt, analyses,
                          backends):
        config = SweepConfig(jobs=jobs, repeat=repeat, seed=seed,
                             timeout=timeout, format=fmt,
                             analyses=analyses, backends=backends)
        assert SweepConfig.from_dict(config.to_dict()) == config

    @settings(max_examples=50, deadline=None)
    @given(seeds=st.integers(1, 10_000), quick=st.booleans(),
           stream=st.booleans(), minimize=st.booleans(),
           seed=st.integers(-2**31, 2**31), max_checks=st.integers(1, 10_000),
           kinds=names)
    def test_fuzz_config(self, seeds, quick, stream, minimize, seed,
                         max_checks, kinds):
        config = FuzzConfig(seeds=seeds, quick=quick, stream=stream,
                            minimize=minimize, seed=seed,
                            max_checks=max_checks, kinds=kinds)
        assert FuzzConfig.from_dict(config.to_dict()) == config

    @settings(max_examples=50, deadline=None)
    @given(kind=st.text(alphabet="abcxyz", min_size=1, max_size=8),
           threads=st.integers(1, 64), events=st.integers(1, 10_000),
           seed=st.integers(-2**31, 2**31),
           params=st.dictionaries(
               st.text(alphabet="abc_", min_size=1, max_size=6),
               st.one_of(st.integers(-100, 100), st.booleans(),
                         st.text(alphabet="xyz", max_size=4)),
               max_size=3))
    def test_generate_config(self, kind, threads, events, seed, params):
        config = GenerateConfig(kind=kind, threads=threads, events=events,
                                seed=seed, params=params)
        assert GenerateConfig.from_dict(config.to_dict()) == config
