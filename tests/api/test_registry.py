"""Registry tests: unified resolution and plugin registration."""

import pytest

from repro.api import Registry, Session, SweepConfig, default_registry
from repro.errors import ReproError


@pytest.fixture
def registry():
    return Registry()


class TestResolution:
    def test_analyses_backends_kinds_suites_resolve(self, registry):
        assert "race-prediction" in registry.analyses()
        assert "incremental-csst" in registry.backends()
        assert "racy" in registry.generators()
        assert "smoke" in registry.suites()

    def test_analysis_name_spellings(self, registry):
        assert registry.resolve_analysis("race-prediction") == "race-prediction"
        assert registry.resolve_analysis("race_prediction") == "race-prediction"
        assert registry.resolve_analysis("deadlock") == "deadlock-prediction"
        assert registry.resolve_analysis("lin") == "linearizability"

    def test_unknown_names_are_clean_errors(self, registry):
        with pytest.raises(ReproError, match="unknown analysis"):
            registry.resolve_analysis("quantum")
        with pytest.raises(ReproError, match="unknown partial-order backend"):
            registry.backend("quantum")

    def test_registries_are_views_over_shared_state(self):
        # Two instances observe the same tables; default_registry pins one.
        assert Registry().analyses() == Registry().analyses()
        assert default_registry() is default_registry()


class TestBackendPlugins:
    def test_registered_backend_joins_every_front_end(self, registry):
        from repro.core import BACKENDS, IncrementalCSST

        class TracingOrder(IncrementalCSST):
            """An IncrementalCSST variant standing in for a plugin."""

        name = "tracing-csst"
        try:
            registry.register_backend(name, TracingOrder)
            # Factory table.
            assert BACKENDS[name] is TracingOrder
            # Family membership inferred from supports_deletion=False.
            from repro.analyses.common.base import Analysis

            cls = Analysis.by_name("race-prediction")
            assert name in cls.applicable_backends()
            lin = Analysis.by_name("linearizability")
            assert name not in lin.applicable_backends()
            # Capabilities reflect it.
            caps = Session().capabilities()
            assert caps["backends"][name]["incremental"]
            # And a sweep can actually run on it.
            result = Session().run(SweepConfig(
                suite="smoke", analyses="race-prediction",
                backends=f"vc,{name}"))
            assert result.exit_code == 0
            assert {record.backend for record in result.records} == \
                {"vc", name}
        finally:
            from repro.core import unregister_backend

            unregister_backend(name)
        assert name not in BACKENDS

    def test_builtin_backends_cannot_be_unregistered(self):
        from repro.core import unregister_backend

        with pytest.raises(ReproError, match="built-in"):
            unregister_backend("vc")

    def test_builtin_backends_cannot_be_shadowed(self, registry):
        from repro.core import BACKENDS, GraphOrder, incremental_backends

        # Shadowing a built-in (even with extra family flags) must be
        # rejected outright -- family membership of built-ins is fixed.
        with pytest.raises(ReproError, match="cannot replace built-in"):
            registry.register_backend("graph", GraphOrder, incremental=True)
        assert "graph" not in incremental_backends()
        assert BACKENDS["graph"] is GraphOrder

    def test_register_backend_rejects_non_partial_orders(self, registry):
        with pytest.raises(ReproError, match="PartialOrder subclass"):
            registry.register_backend("bogus", dict)


class TestAnalysisAndGeneratorPlugins:
    def test_plugin_callable_installs_everything_at_once(self, registry):
        from repro.analyses.common.base import Analysis, _ANALYSIS_REGISTRY
        from repro.analyses.race_prediction import RacePredictionAnalysis
        from repro.trace.generators import GENERATOR_REGISTRY, racy_trace

        class PluginAnalysis(RacePredictionAnalysis):
            name = "plugin-races"

        def plugin(reg):
            reg.register_analysis(PluginAnalysis)
            reg.register_generator(
                "plugin-racy", racy_trace, analyses=("plugin-races",),
                description="plugin-provided workload")

        try:
            registry.install(plugin)
            assert Analysis.by_name("plugin-races") is PluginAnalysis
            entry = GENERATOR_REGISTRY["plugin-racy"]
            assert entry.source == "plugin"
            assert entry.analyses == ("plugin-races",)
            caps = Session().capabilities()
            assert caps["kinds"]["plugin-racy"]["source"] == "plugin"
            assert caps["analyses"]["plugin-races"]["fed_by"] == \
                ["plugin-racy"]
        finally:
            _ANALYSIS_REGISTRY.pop("plugin-races", None)
            GENERATOR_REGISTRY.pop("plugin-racy", None)

    def test_load_plugins_tolerates_missing_group(self, registry):
        # No distribution installs entry points for this group; loading
        # must be a clean no-op, not an error.
        assert registry.load_plugins(group="repro.plugins.nonexistent") == []

    def test_session_keeps_the_plugin_load_report(self):
        assert Session().plugin_report == []
        assert Session(load_plugins=True).plugin_report == []
