"""CLI <-> API parity goldens.

The acceptance contract of the facade: every subcommand is a shim, so the
bytes the CLI prints for a JSON format must be exactly
``Session.run(config).to_json()`` for the equivalent config.  These tests
spy on ``Session.run`` to capture the very result object the CLI rendered
and compare the captured stdout against its serialized forms -- any
orchestration the CLI did on the side would break the byte equality.

Timing-free requests (gen, fuzz) additionally pin that an *independent*
``Session.run`` of the equivalent config reproduces the CLI bytes
verbatim; timing-carrying requests (analyze, sweep) compare modulo the
elapsed-seconds fields.
"""

import json

import pytest

from repro.api import (
    AnalyzeConfig,
    FuzzConfig,
    GenConfig,
    Session,
    SweepConfig,
)
from repro.cli import main


@pytest.fixture
def spy_run(monkeypatch):
    """Capture the (config, result) pairs flowing through Session.run."""
    captured = []
    real_run = Session.run

    def spying_run(self, config, **hooks):
        result = real_run(self, config, **hooks)
        captured.append((config, result))
        return result

    monkeypatch.setattr(Session, "run", spying_run)
    return captured


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "trace.std"
    assert main(["generate", "racy", "--threads", "3", "--events", "60",
                 "--seed", "5", "--out", str(path)]) == 0
    return str(path)


def _without_timing(document):
    """Drop wall-clock fields so two separate runs can be compared."""
    if isinstance(document, dict):
        return {key: _without_timing(value)
                for key, value in document.items()
                if "elapsed" not in key and "seconds" not in key}
    if isinstance(document, list):
        return [_without_timing(item) for item in document]
    return document


class TestAnalyzeParity:
    def test_cli_json_is_the_session_result_json(self, trace_file, spy_run,
                                                 capsys):
        capsys.readouterr()
        assert main(["analyze", "race-prediction", trace_file,
                     "--format", "json"]) == 0
        out = capsys.readouterr().out
        config, result = spy_run[-1]
        assert config == AnalyzeConfig(analysis="race-prediction",
                                       trace=trace_file)
        assert out == result.to_json() + "\n"

    def test_cli_text_is_the_session_result_table(self, trace_file, spy_run,
                                                  capsys):
        capsys.readouterr()
        assert main(["analyze", "race-prediction", trace_file]) == 0
        out = capsys.readouterr().out
        _, result = spy_run[-1]
        assert out == result.to_table() + "\n"

    def test_independent_session_run_matches_modulo_timing(self, trace_file,
                                                           capsys):
        assert main(["analyze", "race-prediction", trace_file,
                     "--format", "json"]) == 0
        cli_document = json.loads(capsys.readouterr().out)
        api_document = Session().run(
            AnalyzeConfig(analysis="race-prediction",
                          trace=trace_file)).to_dict()
        assert _without_timing(cli_document) == _without_timing(api_document)


class TestSweepParity:
    ARGS = ["sweep", "--suite", "smoke", "--analyses", "race-prediction",
            "--backends", "vc,st", "--baseline", "vc"]
    CONFIG = SweepConfig(suite="smoke", analyses="race-prediction",
                         backends="vc,st", baseline="vc", format="json")

    def test_cli_json_is_the_session_result_json(self, spy_run, capsys):
        assert main(self.ARGS + ["--format", "json"]) == 0
        out = capsys.readouterr().out
        config, result = spy_run[-1]
        assert config == self.CONFIG
        assert out == result.to_json() + "\n"

    def test_cli_table_is_the_session_result_table(self, spy_run, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        _, result = spy_run[-1]
        assert out == result.to_table() + "\n"

    def test_independent_session_run_matches_modulo_timing(self, capsys):
        assert main(self.ARGS + ["--format", "json"]) == 0
        cli_document = json.loads(capsys.readouterr().out)
        api_document = Session().run(self.CONFIG).to_dict()
        # Speedup ratios derive from wall clock; everything else is pinned.
        cli_document.pop("speedups"), api_document.pop("speedups")
        assert _without_timing(cli_document) == _without_timing(api_document)


class TestGenParity:
    def test_cli_json_is_byte_identical_to_session_json(self, tmp_path,
                                                        capsys):
        from repro.runner.corpus import SUITES

        argv_out = tmp_path / "cli-corpus"
        api_out = tmp_path / "api-corpus"
        try:
            assert main(["gen", "corpus", "--out", str(argv_out), "--name",
                         "parity", "--kinds", "racy,locked-mix", "--count",
                         "1", "--seed", "2", "--format", "json"]) == 0
            cli_json = capsys.readouterr().out
            result = Session().run(GenConfig(out=str(api_out), name="parity",
                                             kinds="racy,locked-mix",
                                             count=1, seed=2))
            assert cli_json == result.to_json() + "\n"
            # ... and the member files themselves are byte-identical
            # (canonical gzip: a corpus is a pure function of its config).
            for member in result.manifest["traces"]:
                assert (argv_out / member["file"]).read_bytes() == \
                    (api_out / member["file"]).read_bytes()
        finally:
            SUITES.pop("corpus:parity", None)


class TestFuzzParity:
    ARGS = ["fuzz", "--seeds", "4", "--quick", "--kinds", "racy,locked-mix",
            "--seed", "3"]

    def test_cli_json_is_byte_identical_to_session_json(self, tmp_path,
                                                        capsys):
        assert main(self.ARGS + ["--out", str(tmp_path / "a"),
                                 "--format", "json"]) == 0
        cli_json = capsys.readouterr().out
        result = Session().run(FuzzConfig(seeds=4, quick=True,
                                          kinds="racy,locked-mix", seed=3,
                                          out=str(tmp_path / "b")))
        assert cli_json == result.to_json() + "\n"

    def test_cli_text_is_the_session_result_table(self, spy_run, capsys,
                                                  tmp_path):
        assert main(self.ARGS + ["--out", str(tmp_path / "c")]) == 0
        out = capsys.readouterr().out
        _, result = spy_run[-1]
        assert out == result.to_table() + "\n"


class TestWatchParity:
    def test_jsonl_summary_is_the_session_result_dict(self, trace_file,
                                                      spy_run, capsys):
        capsys.readouterr()
        assert main(["watch", "--source", trace_file, "--analyses",
                     "race-prediction", "--format", "jsonl"]) == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines()]
        summary = [line for line in lines if line["type"] == "summary"][0]
        _, result = spy_run[-1]
        assert summary == result.to_dict()

    def test_text_block_is_the_session_result_table(self, trace_file,
                                                    spy_run, capsys):
        capsys.readouterr()
        assert main(["watch", "--source", trace_file, "--analyses",
                     "race-prediction"]) == 0
        out = capsys.readouterr().out
        _, result = spy_run[-1]
        assert out.endswith(result.to_table() + "\n")


class TestVersionAndCapabilities:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"

    def test_capabilities_subcommand_is_session_capabilities(self, capsys):
        assert main(["capabilities"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document == json.loads(
            json.dumps(Session().capabilities(), sort_keys=True))
        assert document["exit_codes"]["error"] == 2


class TestExitCodes:
    def test_config_errors_exit_2(self, capsys):
        assert main(["fuzz", "--seeds", "0"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_reported_failures_exit_1(self, tmp_path, capsys):
        # A truncated linearizability stream leaves no final result.
        path = tmp_path / "h.std"
        main(["generate", "history", "--threads", "2", "--events", "8",
              "--out", str(path)])
        assert main(["watch", "--source", str(path), "--analyses",
                     "linearizability", "--max-events", "3"]) == 1

    def test_os_errors_exit_2(self, capsys):
        assert main(["analyze", "race-prediction",
                     "/no/such/trace.std"]) == 2
        assert "error:" in capsys.readouterr().err
