"""Selection policies: choice semantics, bandit convergence, state I/O."""

from __future__ import annotations

import json
import random

import pytest

from repro.errors import TuneError
from repro.trace.generators import build_trace
from repro.tune import (
    DEFAULT_POLICY,
    POLICY_NAMES,
    STATE_VERSION,
    BanditPolicy,
    HeuristicPolicy,
    StaticPolicy,
    extract_features,
    make_policy,
    save_policy_state,
)

CANDIDATES = ("incremental-csst", "incremental-csst-flat", "vc", "vc-flat")


def racy_features():
    return extract_features(build_trace("racy", num_threads=3, events=30,
                                        seed=1))


def c11_features():
    return extract_features(build_trace("c11", num_threads=3, events=30,
                                        seed=1))


class TestStaticPolicy:
    def test_returns_default(self):
        policy = StaticPolicy()
        assert policy.choose("a", CANDIDATES, racy_features(),
                             default="vc") == "vc"

    def test_falls_back_to_first_candidate(self):
        policy = StaticPolicy()
        assert policy.choose("a", CANDIDATES, racy_features(),
                             default="nope") == CANDIDATES[0]

    def test_empty_candidates_is_an_error(self):
        with pytest.raises(TuneError):
            StaticPolicy().choose("a", (), racy_features())


class TestHeuristicPolicy:
    def test_atomic_heavy_prefers_vector_clocks(self):
        features = c11_features()
        assert features.atomic_fraction > HeuristicPolicy.ATOMIC_THRESHOLD
        assert HeuristicPolicy().choose("a", CANDIDATES, features) == "vc-flat"

    def test_lock_structured_prefers_incremental_flat(self):
        features = racy_features()
        assert HeuristicPolicy().choose("a", CANDIDATES, features) \
            == "incremental-csst-flat"

    def test_honours_candidate_list(self):
        # Deletion-style analyses only offer csst family backends.
        chosen = HeuristicPolicy().choose(
            "a", ("csst", "csst-flat", "graph"), racy_features())
        assert chosen == "csst-flat"

    def test_unmatched_preferences_fall_back(self):
        chosen = HeuristicPolicy().choose("a", ("graph",), racy_features(),
                                          default="graph")
        assert chosen == "graph"


class TestBanditPolicy:
    def test_unseen_candidates_tried_first(self):
        policy = BanditPolicy(seed=3)
        features = racy_features()
        picks = []
        for _round in range(len(CANDIDATES)):
            backend = policy.choose("a", CANDIDATES, features)
            picks.append(backend)
            policy.observe("a", features.bucket(), backend, 0.05)
        assert sorted(picks) == sorted(CANDIDATES)

    def test_converges_on_synthetic_two_backend_model(self):
        """On a synthetic runtime model (fast=10ms, slow=100ms, +/-20%
        noise) the bandit must settle on the fast arm."""
        policy = BanditPolicy(epsilon=0.1, seed=0)
        features = racy_features()
        bucket = features.bucket()
        runtimes = {"fast": 0.010, "slow": 0.100}
        noise = random.Random(42)
        picks = []
        for _round in range(200):
            backend = policy.choose("a", ("fast", "slow"), features)
            picks.append(backend)
            elapsed = runtimes[backend] * noise.uniform(0.8, 1.2)
            policy.observe("a", bucket, backend, elapsed)
        tail = picks[-50:]
        assert tail.count("fast") >= 45
        # Exploitation (epsilon fully decayed) must also pick fast.
        exploit = BanditPolicy(epsilon=0.0, seed=0)
        exploit.load_state(policy.state_dict())
        assert exploit.choose("a", ("fast", "slow"), features) == "fast"

    def test_arms_are_keyed_per_analysis_and_bucket(self):
        policy = BanditPolicy(epsilon=0.0, seed=0)
        features = racy_features()
        bucket = features.bucket()
        for backend, elapsed in (("fast", 0.01), ("slow", 0.1)):
            policy.observe("a", bucket, backend, elapsed)
            policy.observe("b", bucket, backend,
                           0.11 - elapsed)  # inverted for analysis b
        assert policy.choose("a", ("fast", "slow"), features) == "fast"
        assert policy.choose("b", ("fast", "slow"), features) == "slow"

    def test_exploration_is_seeded(self):
        features = racy_features()

        def run(seed):
            policy = BanditPolicy(epsilon=1.0, seed=seed)
            for backend in CANDIDATES:
                policy.observe("a", features.bucket(), backend, 0.05)
            return [policy.choose("a", CANDIDATES, features)
                    for _ in range(20)]

        assert run(7) == run(7)

    def test_negative_elapsed_ignored(self):
        policy = BanditPolicy()
        policy.observe("a", "b", "fast", -1.0)
        assert policy.state_dict()["arms"] == {}

    def test_bad_epsilon_rejected(self):
        with pytest.raises(TuneError):
            BanditPolicy(epsilon=1.5)


class TestStateRoundTrip:
    def test_bandit_state_round_trips_through_json(self, tmp_path):
        policy = BanditPolicy(epsilon=0.2, seed=9)
        features = racy_features()
        bucket = features.bucket()
        policy.observe("race-prediction", bucket, "vc", 0.1)
        policy.observe("race-prediction", bucket, "vc", 0.3)
        path = tmp_path / "state.json"
        save_policy_state(policy, str(path))
        document = json.loads(path.read_text())
        assert document["version"] == STATE_VERSION
        assert document["policy"] == "bandit"
        restored = make_policy("bandit", state_path=str(path))
        assert restored.state_dict() == policy.state_dict()
        key = f"race-prediction|{bucket}|vc"
        assert restored.state_dict()["arms"][key] == [2, 0.4]

    def test_state_file_alone_selects_the_policy(self, tmp_path):
        path = tmp_path / "state.json"
        save_policy_state(BanditPolicy(seed=4), str(path))
        restored = make_policy(state_path=str(path))
        assert restored.name == "bandit"
        assert restored.seed == 4

    def test_policy_mismatch_rejected(self, tmp_path):
        path = tmp_path / "state.json"
        save_policy_state(BanditPolicy(), str(path))
        with pytest.raises(TuneError, match="saved by policy"):
            make_policy("heuristic", state_path=str(path))

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text(json.dumps({"version": 99, "policy": "bandit"}))
        with pytest.raises(TuneError, match="version"):
            make_policy("bandit", state_path=str(path))

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "state.json"
        path.write_text("{not json")
        with pytest.raises(TuneError, match="cannot read"):
            make_policy("bandit", state_path=str(path))

    def test_malformed_arm_rejected(self):
        policy = BanditPolicy()
        with pytest.raises(TuneError, match="malformed bandit arm"):
            policy.load_state({"version": STATE_VERSION, "policy": "bandit",
                               "arms": {"k": "oops"}})


class TestMakePolicy:
    def test_default_policy(self):
        assert make_policy().name == DEFAULT_POLICY

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_every_name_constructs(self, name):
        assert make_policy(name).name == name

    def test_unknown_name_rejected(self):
        with pytest.raises(TuneError, match="unknown selection policy"):
            make_policy("oracle")

    def test_instance_passthrough(self):
        policy = BanditPolicy()
        assert make_policy(policy) is policy

    def test_instance_with_state_path_rejected(self):
        with pytest.raises(TuneError):
            make_policy(BanditPolicy(), state_path="x.json")

    def test_missing_state_file_is_fine(self, tmp_path):
        policy = make_policy("bandit",
                             state_path=str(tmp_path / "later.json"))
        assert policy.name == "bandit"
