"""TraceFeatures extraction: determinism, representation-independence,
and the zero-materialization contract.

Three contracts under test, the first two as hypothesis properties:

* **deterministic** -- extracting twice from the same trace yields an
  equal (and equally hashable) feature vector;
* **representation-independent** -- an eager ``Trace``, the lazy trace
  decoded from its ``.stc`` encoding, and an STD text round trip all
  produce identical features;
* **lazy** -- extraction from a ``.stc``-backed trace materializes zero
  :class:`Event` objects (same counting stand-in as
  ``tests/trace/test_binfmt.py``).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import (
    Event,
    EventKind,
    MemoryOrder,
    Trace,
    decode_trace,
    dumps_trace,
    encode_trace,
    loads_trace,
)
from repro.trace.generators import GENERATOR_REGISTRY, build_trace
from repro.tune import FEATURE_NAMES, TraceFeatures, extract_features
from repro.tune.features import _tri

#: Event shapes the strategy can emit: (kind, needs_variable_prefix,
#: needs_memory_order).  Locks get their own namespace so lock_density
#: and contention are exercised independently.
_SHAPES = [
    (EventKind.READ, "x", None),
    (EventKind.WRITE, "x", None),
    (EventKind.ATOMIC_READ, "a", MemoryOrder.ACQUIRE),
    (EventKind.ATOMIC_WRITE, "a", MemoryOrder.RELEASE),
    (EventKind.ACQUIRE, "lock", None),
    (EventKind.RELEASE, "lock", None),
    (EventKind.FENCE, None, MemoryOrder.SEQ_CST),
]


@st.composite
def traces(draw) -> Trace:
    """Random small traces over a feature-relevant event mix."""
    num_threads = draw(st.integers(min_value=1, max_value=4))
    ops = draw(st.lists(
        st.tuples(st.integers(0, num_threads - 1),
                  st.integers(0, len(_SHAPES) - 1),
                  st.integers(0, 4)),
        min_size=0, max_size=60))
    trace = Trace(name="prop")
    for thread, shape, var in ops:
        kind, prefix, order = _SHAPES[shape]
        kwargs = {}
        if prefix is not None:
            kwargs["variable"] = f"{prefix}{var}"
        if kind in (EventKind.READ, EventKind.WRITE, EventKind.ATOMIC_READ,
                    EventKind.ATOMIC_WRITE):
            kwargs["value"] = var
        if order is not None:
            kwargs["memory_order"] = order
        trace.append(thread, kind, **kwargs)
    return trace


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(traces())
    def test_extraction_is_deterministic(self, trace):
        first, second = extract_features(trace), extract_features(trace)
        assert first == second
        assert hash(first) == hash(second)
        assert first.vector() == second.vector()
        assert first.bucket() == second.bucket()

    @settings(max_examples=60, deadline=None)
    @given(traces())
    def test_eager_lazy_and_text_round_trip_agree(self, trace):
        eager = extract_features(trace)
        lazy = extract_features(decode_trace(encode_trace(trace)))
        text = extract_features(loads_trace(dumps_trace(trace)))
        assert eager == lazy == text

    @settings(max_examples=60, deadline=None)
    @given(traces())
    def test_invariants(self, trace):
        features = extract_features(trace)
        assert features.events == len(trace)
        assert features.accesses == features.reads + features.writes
        assert features.atomics <= features.accesses
        assert sum(count for _name, count in features.kind_hist) \
            == features.events
        assert 0.0 <= features.lock_density <= 1.0
        assert 0.0 <= features.atomic_fraction <= 1.0
        assert 0.0 <= features.mean_contention <= features.max_contention \
            <= 1.0 or features.accesses == 0
        vector = features.vector()
        assert len(vector) == len(FEATURE_NAMES)
        assert all(isinstance(value, float) and not math.isnan(value)
                   for value in vector)


class TestGeneratorKinds:
    @pytest.mark.parametrize("kind", sorted(GENERATOR_REGISTRY))
    def test_every_generator_kind_extracts(self, kind):
        trace = build_trace(kind, num_threads=3, events=20, seed=7)
        features = extract_features(trace)
        assert features.events == len(trace)
        assert features.threads <= trace.num_threads
        lazy = extract_features(decode_trace(encode_trace(trace)))
        assert features == lazy

    def test_empty_trace(self):
        features = extract_features(Trace(name="empty"))
        assert features.events == 0
        assert features.read_write_ratio == 0.0
        assert features.max_contention == 0.0
        assert features.bucket() == "t0e0rw0lk0c0"


class CountingEvent(Event):
    """Stand-in for ``binfmt.Event`` that counts materializations."""

    instances = 0

    def __init__(self, *args, **kwargs):
        type(self).instances += 1
        super().__init__(*args, **kwargs)


@pytest.fixture
def counting_event(monkeypatch):
    CountingEvent.instances = 0
    monkeypatch.setattr("repro.trace.binfmt.Event", CountingEvent)
    return CountingEvent


class TestLaziness:
    def test_stc_extraction_materializes_zero_events(self, counting_event):
        """The acceptance contract: feature extraction over a lazy
        ``.stc`` trace inflates no Event objects at all."""
        trace = build_trace("c11", num_threads=3, events=20, seed=7)
        loaded = decode_trace(encode_trace(trace))
        features = extract_features(loaded)
        assert features == extract_features(trace)
        assert counting_event.instances == 0
        assert loaded.materialized_count == 0


class TestBucket:
    def test_tri_thresholds(self):
        assert _tri(0.0, 0.5, 2.0) == 0
        assert _tri(0.5, 0.5, 2.0) == 1
        assert _tri(1.99, 0.5, 2.0) == 1
        assert _tri(2.0, 0.5, 2.0) == 2

    def test_bucket_encodes_log_sizes(self):
        trace = build_trace("racy", num_threads=4, events=30, seed=1)
        features = extract_features(trace)
        bucket = features.bucket()
        assert bucket.startswith(
            f"t{int(math.log2(features.threads))}"
            f"e{int(math.log10(features.events))}rw")

    def test_similar_traces_share_size_digits(self):
        # Same kind/shape, different seed: the log-scale size digits (and
        # usually the regime digits) agree, so policies can aggregate.
        first = extract_features(
            build_trace("racy", num_threads=4, events=30, seed=1))
        second = extract_features(
            build_trace("racy", num_threads=4, events=30, seed=2))
        assert first.bucket()[:4] == second.bucket()[:4] == "t2e2"
