"""The ``auto`` pseudo-backend end to end: analysis layer, sweep
executor (oracle/regret), streaming engine, session facade."""

from __future__ import annotations

import json

import pytest

from repro.analyses.common.base import Analysis
from repro.api import AnalyzeConfig, Session, SweepConfig, WatchConfig
from repro.core import AUTO_BACKEND, BACKENDS
from repro.errors import ConfigError, ReproError
from repro.runner.executor import plan_jobs, run_suite
from repro.runner.corpus import SUITES
from repro.stream.engine import StreamEngine
from repro.trace.generators import build_trace
from repro.tune import BanditPolicy, HeuristicPolicy, save_policy_state


def write_trace(tmp_path, kind="racy", threads=3, events=40, seed=1):
    from repro.trace import dumps_trace

    trace = build_trace(kind, num_threads=threads, events=events, seed=seed)
    path = tmp_path / "t.std"
    path.write_text(dumps_trace(trace))
    return trace, path


class TestAnalysisLayer:
    def test_auto_is_not_a_factory_backend(self):
        assert AUTO_BACKEND not in BACKENDS

    def test_auto_resolves_to_a_concrete_backend(self):
        trace = build_trace("racy", num_threads=3, events=40, seed=1)
        cls = Analysis.by_name("race-prediction")
        auto = cls(AUTO_BACKEND).run(trace)
        assert auto.backend in cls.applicable_backends()
        assert auto.details["backend_selected"] == auto.backend
        assert auto.details["policy"] == "heuristic"
        assert auto.details["feature_bucket"]
        static = cls(auto.backend).run(trace)
        assert [str(f) for f in auto.findings] \
            == [str(f) for f in static.findings]

    def test_auto_honours_an_explicit_policy_instance(self):
        trace = build_trace("c11", num_threads=3, events=30, seed=2)
        cls = Analysis.by_name("c11-races")
        result = cls(AUTO_BACKEND, policy=HeuristicPolicy()).run(trace)
        # Atomic-heavy trace: the heuristic prefers vector clocks.
        assert result.backend == "vc-flat"

    def test_static_backends_record_no_selection(self):
        trace = build_trace("racy", num_threads=3, events=40, seed=1)
        result = Analysis.by_name("race-prediction")("vc").run(trace)
        assert "backend_selected" not in result.details


class TestSweepPlanning:
    def test_auto_adds_one_job_per_pair(self):
        suite = SUITES["smoke"]
        static = plan_jobs(suite)
        auto_only = plan_jobs(suite, backends=[AUTO_BACKEND])
        assert all(job.backend == AUTO_BACKEND for job in auto_only)
        pairs = {(job.spec.trace_id, job.analysis) for job in static}
        assert {(job.spec.trace_id, job.analysis) for job in auto_only} \
            == pairs

    def test_oracle_runs_statics_alongside_auto(self):
        suite = SUITES["smoke"]
        jobs = plan_jobs(suite, backends=[AUTO_BACKEND], oracle=True)
        backends = {job.backend for job in jobs}
        assert AUTO_BACKEND in backends
        assert len(backends) > 1
        assert all(job.tag_features for job in jobs
                   if job.backend != AUTO_BACKEND)

    def test_oracle_without_auto_rejected(self):
        with pytest.raises(ReproError, match="oracle"):
            plan_jobs(SUITES["smoke"], backends=["vc"], oracle=True)

    def test_unknown_backend_still_rejected(self):
        with pytest.raises(ReproError):
            plan_jobs(SUITES["smoke"], backends=["auto", "vcc"])


class TestSweepExecution:
    def test_auto_sweep_records_selection(self):
        result = run_suite("smoke", backends=[AUTO_BACKEND],
                           analyses=["race-prediction"])
        assert result.records
        for record in result.records:
            assert record.ok
            assert record.backend == AUTO_BACKEND
            assert record.backend_selected in BACKENDS
            assert record.policy == "heuristic"
            assert record.feature_bucket
            assert record.display_backend \
                == f"auto:{record.backend_selected}"

    def test_oracle_report_and_regret(self, tmp_path):
        state = tmp_path / "state.json"
        result = run_suite("smoke", backends=[AUTO_BACKEND],
                           analyses=["race-prediction"], policy="bandit",
                           policy_state_path=str(state), oracle=True)
        assert result.oracle is not None
        report = result.oracle
        assert report["jobs"] > 0
        assert report["optimal_picks"] <= report["jobs"]
        assert report["regret_seconds"] == pytest.approx(
            report["auto_seconds"] - report["best_seconds"])
        assert "oracle" in result.to_document()
        assert "oracle:" in result.to_table()
        # The sweep saved learned state for warm-starting later runs.
        document = json.loads(state.read_text())
        assert document["policy"] == "bandit"
        assert document["arms"]

    def test_non_oracle_document_has_no_oracle_key(self):
        result = run_suite("smoke", backends=[AUTO_BACKEND],
                           analyses=["race-prediction"])
        assert "oracle" not in result.to_document()


class TestStreamEngine:
    def test_auto_pins_backend_and_matches_batch(self):
        trace = build_trace("racy", num_threads=3, events=60, seed=1)
        engine = StreamEngine(["race-prediction"], backend=AUTO_BACKEND)
        result = engine.run(trace)
        chosen = result.backends_selected["race-prediction"]
        assert chosen in BACKENDS
        batch = Analysis.by_name("race-prediction")(chosen).run(trace)
        assert len(result.final_findings_for("race-prediction")) \
            == len(batch.findings)

    def test_short_stream_resolves_at_flush(self):
        trace = build_trace("racy", num_threads=2, events=8, seed=3)
        assert len(trace) < StreamEngine.AUTO_PREAMBLE_EVENTS
        engine = StreamEngine(["race-prediction"], backend=AUTO_BACKEND)
        result = engine.run(trace)
        assert result.backends_selected["race-prediction"] in BACKENDS

    def test_native_analysis_resolves_before_first_feed(self):
        trace = build_trace("c11", num_threads=3, events=40, seed=2)
        engine = StreamEngine(["c11-races"], backend=AUTO_BACKEND)
        result = engine.run(trace)
        chosen = result.backends_selected["c11-races"]
        batch = Analysis.by_name("c11-races")(chosen).run(trace)
        assert len(result.final_findings_for("c11-races")) \
            == len(batch.findings)

    def test_fallback_emits_a_typed_warning(self):
        # linearizability cannot run on vc; the silent fallback of old
        # versions must now surface a StreamWarning.
        engine = StreamEngine(["linearizability"], backend="vc")
        assert len(engine.warnings) == 1
        warning = engine.warnings[0]
        assert warning.category == "backend-fallback"
        assert warning.analysis == "linearizability"
        assert "vc" in warning.message
        trace = build_trace("history", num_threads=2, events=10, seed=1)
        result = engine.run(trace)
        assert result.warnings == [warning]

    def test_applicable_backend_warns_nothing(self):
        engine = StreamEngine(["race-prediction"], backend="vc")
        assert engine.warnings == []


class TestSessionFacade:
    def test_analyze_auto(self, tmp_path):
        _trace, path = write_trace(tmp_path)
        config = AnalyzeConfig(analysis="race-prediction", trace=str(path),
                               backend="auto")
        result = Session().run(config)
        document = result.to_dict()
        assert document["backend"] in BACKENDS
        assert document["backend_selected"] == document["backend"]

    def test_analyze_static_reports_itself_as_selected(self, tmp_path):
        _trace, path = write_trace(tmp_path)
        config = AnalyzeConfig(analysis="race-prediction", trace=str(path),
                               backend="vc")
        assert Session().run(config).to_dict()["backend_selected"] == "vc"

    def test_watch_auto_reports_selection(self, tmp_path):
        _trace, path = write_trace(tmp_path, events=60)
        notices = []
        config = WatchConfig(source=str(path), analyses="race-prediction",
                             backend="auto")
        result = Session().run(
            config, on_notice=lambda kind, message: notices.append(message))
        document = result.to_dict()
        assert document["backends_selected"]["race-prediction"] in BACKENDS
        assert any("auto selected backend" in message for message in notices)

    def test_watch_warm_starts_from_sweep_state(self, tmp_path):
        state = tmp_path / "state.json"
        save_policy_state(BanditPolicy(seed=1), str(state))
        _trace, path = write_trace(tmp_path, events=60)
        config = WatchConfig(source=str(path), analyses="race-prediction",
                             backend="auto", policy="bandit",
                             policy_state=str(state))
        result = Session().run(config)
        assert result.to_dict()["backends_selected"]["race-prediction"] \
            in BACKENDS

    def test_capabilities_advertise_tuning(self):
        document = Session().capabilities()
        tuning = document["tuning"]
        assert tuning["auto_backend"] == AUTO_BACKEND
        assert tuning["default_policy"] in tuning["policies"]
        assert "events" in tuning["features"]
        for entry in document["analyses"].values():
            assert AUTO_BACKEND in entry["backends"]


class TestConfigValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            AnalyzeConfig(analysis="race-prediction", trace="t.std",
                          policy="oracle")

    def test_oracle_requires_auto(self):
        with pytest.raises(ConfigError):
            SweepConfig(oracle=True, backends="vc")

    def test_policy_without_auto_warns(self):
        config = SweepConfig(backends="vc", policy="bandit")
        assert any("auto" in message
                   for message in config.validation_warnings())
