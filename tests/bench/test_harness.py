"""Tests for the benchmark measurement and reporting helpers."""

import math

import pytest

from repro.bench.harness import (
    BenchmarkRow,
    TableResult,
    geometric_mean,
    measure,
)
from repro.errors import BenchmarkError


class TestMeasure:
    def test_measure_returns_time_and_value(self):
        run = measure(lambda: sum(range(1000)))
        assert run.value == sum(range(1000))
        assert run.seconds >= 0

    def test_measure_tracks_peak_memory(self):
        run = measure(lambda: [0] * 100_000)
        assert run.peak_memory_bytes > 100_000

    def test_memory_tracking_can_be_disabled(self):
        run = measure(lambda: [0] * 10_000, track_memory=False)
        assert run.peak_memory_bytes == 0


class TestGeometricMean:
    def test_of_identical_values(self):
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_of_reciprocal_values_is_one(self):
        assert geometric_mean([4.0, 0.25]) == pytest.approx(1.0)

    def test_ignores_non_positive_values(self):
        assert geometric_mean([0.0, -1.0, 8.0]) == pytest.approx(8.0)

    def test_empty_sequence_is_zero(self):
        assert geometric_mean([]) == 0.0

    def test_matches_closed_form(self):
        values = [1.0, 2.0, 4.0]
        assert geometric_mean(values) == pytest.approx(math.exp(
            sum(math.log(v) for v in values) / 3))


class TestBenchmarkRow:
    def test_ratio_between_backends(self):
        row = BenchmarkRow("b", 4, 1000, seconds={"vc": 2.0, "csst": 1.0})
        assert row.ratio("vc", "csst") == pytest.approx(2.0)

    def test_ratio_with_missing_backend_is_none(self):
        row = BenchmarkRow("b", 4, 1000, seconds={"vc": 2.0})
        assert row.ratio("vc", "csst") is None

    def test_memory_ratio(self):
        row = BenchmarkRow("b", 4, 1000, memory={"vc": 4096, "csst": 1024})
        assert row.ratio("vc", "csst", metric="memory") == pytest.approx(4.0)


class TestTableResult:
    def _table(self):
        table = TableResult("Table X", backends=["vc", "csst"])
        table.add_row(BenchmarkRow("first", 4, 1_000, 0.2,
                                   seconds={"vc": 2.0, "csst": 1.0},
                                   memory={"vc": 2048, "csst": 1024}))
        table.add_row(BenchmarkRow("second", 8, 2_000_000, 0.1,
                                   seconds={"vc": 8.0, "csst": 1.0},
                                   memory={"vc": 4096, "csst": 4096}))
        return table

    def test_totals_per_backend(self):
        totals = self._table().totals()
        assert totals["vc"] == pytest.approx(10.0)
        assert totals["csst"] == pytest.approx(2.0)

    def test_mean_ratios_over_reference(self):
        ratios = self._table().mean_ratios("csst")
        assert ratios["vc"] == pytest.approx(4.0)
        assert "csst" not in ratios

    def test_mean_memory_ratios(self):
        ratios = self._table().mean_ratios("csst", metric="memory")
        assert ratios["vc"] == pytest.approx(math.sqrt(2.0))

    def test_format_contains_rows_and_total(self):
        text = self._table().format()
        assert "Table X" in text
        assert "first" in text and "second" in text
        assert "Total" in text
        assert "2.0M" in text    # event count formatting

    def test_format_memory_metric(self):
        text = self._table().format(metric="memory")
        assert "KiB" in text

    def test_render_rejects_ragged_rows(self):
        from repro.bench.harness import render_table

        with pytest.raises(BenchmarkError):
            render_table("t", ["a", "b"], [["only-one"]])
