"""Tests for the CSV export helpers."""

import csv
import io

from repro.bench.export import (
    crossover_to_csv,
    figure11_to_csv,
    table_to_csv,
    table_to_csv_string,
)
from repro.bench.harness import BenchmarkRow, TableResult
from repro.bench.tables import (
    CrossoverPoint,
    CrossoverResult,
    Figure11Result,
    ScalabilityPoint,
)


def _sample_table() -> TableResult:
    table = TableResult("Table X", backends=["vc", "incremental-csst"])
    table.add_row(BenchmarkRow("alpha", 4, 1000, 0.25,
                               seconds={"vc": 1.5, "incremental-csst": 0.5},
                               memory={"vc": 2048, "incremental-csst": 1024}))
    table.add_row(BenchmarkRow("beta", 2, 500, 0.10,
                               seconds={"vc": 0.3, "incremental-csst": 0.2},
                               memory={"vc": 512, "incremental-csst": 512}))
    return table


class TestTableCsv:
    def test_header_and_rows(self):
        text = table_to_csv_string(_sample_table())
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0][:4] == ["benchmark", "threads", "events", "density"]
        assert rows[1][0] == "alpha"
        assert rows[-1][0] == "TOTAL"

    def test_totals_row_sums_backends(self):
        rows = list(csv.reader(io.StringIO(table_to_csv_string(_sample_table()))))
        header = rows[0]
        total = rows[-1]
        vc_column = header.index("vc_seconds")
        assert float(total[vc_column]) == 1.8

    def test_write_to_file(self, tmp_path):
        path = tmp_path / "table.csv"
        table_to_csv(_sample_table(), path)
        content = path.read_text(encoding="utf-8")
        assert "alpha" in content and "beta" in content


class TestFigureCsv:
    def test_figure11_csv(self, tmp_path):
        figure = Figure11Result(points=[
            ScalabilityPoint("vc", 10, 500, 1e-4, 1e-6, 400, 1000),
            ScalabilityPoint("incremental-csst", 10, 500, 5e-5, 2e-6, 400, 1000),
        ])
        path = tmp_path / "fig11.csv"
        figure11_to_csv(figure, path)
        rows = list(csv.reader(path.open()))
        assert rows[0][0] == "backend"
        assert len(rows) == 3

    def test_crossover_csv(self, tmp_path):
        result = CrossoverResult(points=[
            CrossoverPoint("vc", 800, 1.2, 100, 2000),
            CrossoverPoint("incremental-csst", 800, 0.4, 100, 2000),
        ])
        path = tmp_path / "crossover.csv"
        crossover_to_csv(result, path)
        rows = list(csv.reader(path.open()))
        assert rows[0] == ["backend", "events_per_thread", "seconds",
                           "insert_count", "query_count"]
        assert len(rows) == 3


class TestRowsToCsv:
    def test_rows_to_csv_to_stream(self):
        from repro.bench.export import rows_to_csv

        buffer = io.StringIO()
        rows_to_csv(["a", "b"], [[1, 2], [3, 4]], buffer)
        rows = list(csv.reader(io.StringIO(buffer.getvalue())))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]
        assert "\r" not in buffer.getvalue()  # stream-safe line endings

    def test_rows_to_csv_to_path(self, tmp_path):
        from repro.bench.export import rows_to_csv

        path = tmp_path / "rows.csv"
        rows_to_csv(["x"], [["y"]], path)
        assert path.read_bytes() == b"x\ny\n"
