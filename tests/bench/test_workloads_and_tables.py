"""Tests for the benchmark workload definitions and table runners.

The table runners are exercised at a tiny scale so that the whole test stays
fast while still covering the full measurement pipeline (trace generation,
analysis runs per backend, density estimation, formatting).
"""

import pytest

from repro.analyses.membug import MemoryBugAnalysis
from repro.bench.tables import (
    ALL_TABLE_RUNNERS,
    run_analysis_table,
    run_crossover,
    run_figure10,
    run_figure11,
    run_table3,
    run_table7,
)
from repro.bench.workloads import (
    ALL_TABLES,
    TABLE3_MEMORY_BUGS,
    TABLE7_LINEARIZABILITY,
    Workload,
)

TINY = 0.05


class TestWorkloads:
    def test_every_table_has_workloads(self):
        assert set(ALL_TABLES) == {f"table{i}" for i in range(1, 8)}
        for workloads in ALL_TABLES.values():
            assert len(workloads) >= 3

    def test_workload_names_are_unique_per_table(self):
        for workloads in ALL_TABLES.values():
            names = [workload.name for workload in workloads]
            assert len(names) == len(set(names))

    def test_build_produces_named_trace(self):
        workload = TABLE3_MEMORY_BUGS[0]
        trace = workload.build(scale=TINY)
        assert trace.name == workload.name
        assert len(trace) > 0

    def test_scale_reduces_trace_size(self):
        workload = TABLE3_MEMORY_BUGS[0]
        small = workload.build(scale=0.1)
        large = workload.build(scale=0.5)
        assert len(small) < len(large)

    def test_builds_are_deterministic(self):
        workload = TABLE7_LINEARIZABILITY[0]
        assert list(workload.build(TINY).events) == list(workload.build(TINY).events)


class TestTableRunners:
    def test_run_analysis_table_produces_rows(self):
        table = run_analysis_table(
            "tiny", TABLE3_MEMORY_BUGS[:2], MemoryBugAnalysis,
            backends=("vc", "incremental-csst"), scale=TINY, track_memory=False,
        )
        assert len(table.rows) == 2
        for row in table.rows:
            assert set(row.seconds) == {"vc", "incremental-csst"}
            assert all(value >= 0 for value in row.seconds.values())
            assert 0 <= row.density <= 1
        assert "tiny" in table.format()

    def test_table3_runner_smoke(self):
        table = run_table3(backends=("incremental-csst",), scale=TINY,
                           track_memory=False)
        assert len(table.rows) == len(TABLE3_MEMORY_BUGS)

    def test_table7_runner_smoke(self):
        table = run_table7(backends=("csst",), scale=TINY, track_memory=False)
        assert len(table.rows) == len(TABLE7_LINEARIZABILITY)
        assert all("csst" in row.seconds for row in table.rows)

    def test_all_runners_registered(self):
        assert set(ALL_TABLE_RUNNERS) == set(ALL_TABLES)

    def test_figure10_aggregates_supplied_tables(self):
        table = run_analysis_table(
            "tiny", TABLE3_MEMORY_BUGS[:1], MemoryBugAnalysis,
            backends=("vc", "incremental-csst"), scale=TINY, track_memory=True,
        )
        figure = run_figure10(tables={"table3": table})
        assert "table3" in figure.time_ratios
        assert "vc" in figure.time_ratios["table3"]
        assert "VCs" in figure.format()

    def test_figure11_points_and_series(self):
        figure = run_figure11(backends=("incremental-csst",),
                              chain_lengths=(64, 128), chain_counts=(4,),
                              edges_per_length=0.5, queries=50)
        assert len(figure.points) == 2
        series = figure.series("incremental-csst", 4)
        assert [length for length, _value in series] == [64, 128]
        assert "CSSTs" in figure.format()

    def test_crossover_runner(self):
        result = run_crossover(backends=("vc", "incremental-csst"),
                               events_per_thread=(60, 120), num_threads=3)
        assert len(result.points) == 4
        series = result.series("vc")
        assert [events for events, _seconds in series] == [60, 120]
        assert "VCs" in result.format()
