"""Perf-regression harness: suite mechanics, JSON round-trip, comparison
logic, and the ``repro bench perf`` CLI wiring.

The real perf suite is exercised end to end by CI's perf-smoke job; these
tests drive the machinery with tiny injected cases so they stay fast.
"""

import json

import pytest

from repro.bench import perf
from repro.cli import main
from repro.errors import BenchmarkError


def _tiny_cases():
    def make(name, result):
        def setup(quick):
            def run():
                return result
            return run
        return perf.PerfCase(name, setup)

    return [make("fig11/csst", 1), make("fig11/csst-flat", 2),
            make("sst-ops/object", 3), make("sst-ops/flat", 4)]


class TestRunPerf:
    def test_document_structure(self):
        document = perf.run_perf(quick=True, repeats=2, warmup=0,
                                 cases=_tiny_cases())
        assert document["version"] == perf.PERF_FORMAT_VERSION
        assert document["mode"] == "quick"
        assert document["repeats"] == 2
        assert set(document["results"]) == {
            "fig11/csst", "fig11/csst-flat", "sst-ops/object", "sst-ops/flat"}
        for entry in document["results"].values():
            assert entry["seconds"] == min(entry["runs"])
            assert len(entry["runs"]) == 2
        assert set(document["speedups"]) == {
            "csst-flat-over-csst", "flat-sst-over-sst"}

    def test_full_mode_flag(self):
        document = perf.run_perf(quick=False, repeats=1, warmup=0,
                                 cases=_tiny_cases()[:1])
        assert document["mode"] == "full"

    def test_bad_repeats_rejected(self):
        with pytest.raises(BenchmarkError):
            perf.run_perf(repeats=0, cases=_tiny_cases())

    def test_default_cases_cover_the_speedup_pairs(self):
        names = {case.name for case in perf.default_cases()}
        for fast, slow, _label in perf.SPEEDUP_PAIRS:
            assert fast in names and slow in names

    def test_one_real_kernel_case_runs(self):
        # The smallest real case end to end (quick sizes): the SST op mix.
        (case,) = [c for c in perf.default_cases() if c.name == "sst-ops/flat"]
        document = perf.run_perf(quick=True, repeats=1, warmup=0,
                                 cases=[case])
        assert document["results"]["sst-ops/flat"]["seconds"] >= 0


class TestCompare:
    def _docs(self, current_seconds, baseline_seconds, mode="quick"):
        current = {"mode": mode,
                   "results": {"case": {"seconds": current_seconds}}}
        baseline = {"modes": {mode: {
            "results": {"case": {"seconds": baseline_seconds}}}}}
        return current, baseline

    def test_clean_when_within_threshold(self):
        current, baseline = self._docs(0.011, 0.010)
        assert perf.compare_documents(current, baseline, threshold=2.0) == []

    def test_regression_detected(self):
        current, baseline = self._docs(0.030, 0.010)
        entries = perf.compare_documents(current, baseline, threshold=2.0)
        assert len(entries) == 1 and "case" in entries[0]
        assert perf.is_regression(entries)

    def test_missing_mode_is_advisory_not_regression(self):
        current, _ = self._docs(0.030, 0.010, mode="full")
        baseline = {"modes": {"quick": {"results": {}}}}
        entries = perf.compare_documents(current, baseline)
        assert len(entries) == 1 and entries[0].startswith("note:")
        assert not perf.is_regression(entries)

    def test_unknown_cases_ignored(self):
        current = {"mode": "quick",
                   "results": {"new-case": {"seconds": 9.0}}}
        baseline = {"modes": {"quick": {"results": {}}}}
        assert perf.compare_documents(current, baseline) == []

    def test_bad_threshold_rejected(self):
        current, baseline = self._docs(1.0, 1.0)
        with pytest.raises(BenchmarkError):
            perf.compare_documents(current, baseline, threshold=0)


class TestPersistence:
    def test_write_read_roundtrip(self, tmp_path):
        document = perf.run_perf(quick=True, repeats=1, warmup=0,
                                 cases=_tiny_cases())
        path = str(tmp_path / "bench.json")
        perf.write_document(document, path)
        assert perf.read_document(path) == json.loads(
            json.dumps(document))

    def test_default_output_path_dedupes_same_day_runs(self, tmp_path,
                                                       monkeypatch):
        # A second run on the same day must not overwrite the first
        # report: the default name gains a -N suffix instead.
        import datetime

        monkeypatch.chdir(tmp_path)
        first = perf.default_output_path()
        assert first == \
            f"BENCH_{datetime.date.today().isoformat()}.json"
        (tmp_path / first).write_text("{}")
        second = perf.default_output_path()
        assert second == first[:-len(".json")] + "-1.json"
        (tmp_path / second).write_text("{}")
        third = perf.default_output_path()
        assert third == first[:-len(".json")] + "-2.json"

    def test_build_baseline_contains_both_modes(self):
        document = perf.build_baseline(repeats=1, warmup=0,
                                       cases=_tiny_cases())
        assert set(document["modes"]) == {"quick", "full"}
        assert document["modes"]["quick"]["mode"] == "quick"
        assert document["modes"]["full"]["mode"] == "full"


class TestBenchCli:
    @pytest.fixture(autouse=True)
    def tiny_suite(self, monkeypatch):
        monkeypatch.setattr(perf, "default_cases", _tiny_cases)

    def test_bench_perf_writes_dated_json(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "perf", "--quick", "--repeats", "1"]) == 0
        output = capsys.readouterr().out
        assert "perf[quick]" in output
        assert "csst-flat-over-csst" in output
        written = list(tmp_path.glob("BENCH_*.json"))
        assert len(written) == 1
        document = json.loads(written[0].read_text())
        assert document["mode"] == "quick"

    def test_bench_perf_explicit_out_and_no_baseline_note(self, tmp_path,
                                                          capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        out = tmp_path / "run.json"
        assert main(["bench", "perf", "--quick", "--repeats", "1",
                     "--out", str(out)]) == 0
        assert out.exists()
        assert "regression check skipped" in capsys.readouterr().out

    def test_bench_perf_update_baseline_then_compare_clean(self, tmp_path,
                                                           capsys,
                                                           monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "perf", "--repeats", "1",
                     "--update-baseline"]) == 0
        assert (tmp_path / perf.BASELINE_FILENAME).exists()
        assert main(["bench", "perf", "--quick", "--repeats", "1",
                     "--out", str(tmp_path / "run.json")]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_bench_perf_detects_regression(self, tmp_path, capsys,
                                           monkeypatch):
        monkeypatch.chdir(tmp_path)
        baseline = {
            "version": perf.PERF_FORMAT_VERSION,
            "modes": {"quick": {"results": {
                "fig11/csst": {"seconds": 1e-9}}}},
        }
        (tmp_path / perf.BASELINE_FILENAME).write_text(json.dumps(baseline))
        code = main(["bench", "perf", "--quick", "--repeats", "1",
                     "--out", str(tmp_path / "run.json")])
        assert code == 1
        assert "threshold" in capsys.readouterr().err

    def test_bench_perf_missing_explicit_baseline_errors(self, tmp_path,
                                                         capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        code = main(["bench", "perf", "--quick", "--repeats", "1",
                     "--out", str(tmp_path / "run.json"),
                     "--baseline", str(tmp_path / "missing.json")])
        assert code == 2
        assert "baseline file not found" in capsys.readouterr().err

    def test_bench_perf_no_compare_skips_check(self, tmp_path, capsys,
                                               monkeypatch):
        monkeypatch.chdir(tmp_path)
        baseline = {
            "version": perf.PERF_FORMAT_VERSION,
            "modes": {"quick": {"results": {
                "fig11/csst": {"seconds": 1e-9}}}},
        }
        (tmp_path / perf.BASELINE_FILENAME).write_text(json.dumps(baseline))
        assert main(["bench", "perf", "--quick", "--repeats", "1",
                     "--no-compare",
                     "--out", str(tmp_path / "run.json")]) == 0
