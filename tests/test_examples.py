"""The example scripts must run end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart.py",
    "api_tour.py",
    "race_detection.py",
    "consistency_checking.py",
    "linearizability_rootcause.py",
    "custom_analysis.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_and_reports_success(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr
    assert "finished OK" in completed.stdout


def test_every_example_has_a_module_docstring():
    for script in EXAMPLES:
        source = (EXAMPLES_DIR / script).read_text(encoding="utf-8")
        assert source.lstrip().startswith(('#!', '"""')), script
        assert '"""' in source
