"""Tests for the differential fuzzer and its delta-debugging minimizer."""

import json

import pytest

from repro.core import FLAT_EQUIVALENTS
from repro.errors import FuzzError
from repro.gen import fuzz as fuzz_module
from repro.gen.fuzz import (
    FuzzCase,
    comparison_plan,
    minimize_trace,
    plan_cases,
    rebuild_trace,
    run_fuzz,
)
from repro.trace.generators import build_trace
from repro.trace.trace import Trace


class TestPlanning:
    def test_plan_is_deterministic(self):
        assert plan_cases(20, quick=True) == plan_cases(20, quick=True)

    def test_kinds_rotate_round_robin(self):
        cases = plan_cases(24, kinds=["racy", "c11"], quick=True)
        assert [case.kind for case in cases[:4]] == \
            ["racy", "c11", "racy", "c11"]

    def test_scenario_kinds_get_scheduler_params(self):
        cases = plan_cases(3, kinds=["locked-mix"], quick=True)
        schedulers = [dict(case.params)["scheduler"] for case in cases]
        assert schedulers == ["rr", "weighted", "adversarial"]

    def test_schedulers_cycle_per_kind_even_with_multiple_of_three_kinds(self):
        # Regression: with a kind count divisible by the scheduler-cycle
        # length, indexing by the global case index would pin every kind
        # to one scheduler forever.
        kinds = ["locked-mix", "mpmc-queue", "fork-join"]
        cases = plan_cases(9, kinds=kinds, quick=True)
        for kind in kinds:
            schedulers = [dict(c.params)["scheduler"] for c in cases
                          if c.kind == kind]
            assert schedulers == ["rr", "weighted", "adversarial"], kind

    def test_history_shapes_stay_tiny(self):
        for case in plan_cases(6, kinds=["history"]):
            assert case.events <= 8

    def test_unknown_kind_rejected(self):
        with pytest.raises(FuzzError, match="unknown kinds"):
            plan_cases(5, kinds=["quantum"])

    def test_zero_seeds_rejected(self):
        with pytest.raises(FuzzError, match="seeds >= 1"):
            plan_cases(0)

    def test_case_build_is_reproducible(self):
        case = plan_cases(1, kinds=["mpmc-queue"], quick=True)[0]
        assert [str(e) for e in case.build()] == \
            [str(e) for e in case.build()]


class TestComparisonPlan:
    def test_covers_flat_object_pairs(self):
        plans = comparison_plan("racy")
        pairs = {(left, right) for _a, left, right in plans}
        # The default backend is incremental-csst; its flat twin must be
        # among the compared backends.
        assert ("incremental-csst",
                FLAT_EQUIVALENTS["incremental-csst"]) in pairs

    def test_covers_streaming_vs_batch(self):
        plans = comparison_plan("racy")
        assert any(right == "stream" for _a, _l, right in plans)
        plans = comparison_plan("racy", stream=False)
        assert not any(right == "stream" for _a, _l, right in plans)

    def test_deletion_analyses_compare_dynamic_backends(self):
        plans = comparison_plan("history")
        rights = {right for _a, _l, right in plans}
        assert "graph" in rights and "csst-flat" in rights

    def test_unknown_kind_yields_no_plan(self):
        assert comparison_plan("quantum") == []


class TestCleanRun:
    def test_small_fuzz_run_is_clean(self, tmp_path):
        report = run_fuzz(seeds=12, quick=True, out_dir=tmp_path / "out")
        assert report.ok
        assert report.cases == 12
        assert report.comparisons > report.cases
        assert not (tmp_path / "out").exists()  # no artifacts when clean
        assert "0 divergence" in report.summary()

    def test_progress_hook_sees_every_case(self, tmp_path):
        seen = []
        run_fuzz(seeds=4, quick=True, kinds=["racy"],
                 out_dir=tmp_path / "out", on_case=seen.append)
        assert len(seen) == 4

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(FuzzError, match="unknown backends"):
            run_fuzz(seeds=1, backends=["vcc"], out_dir=tmp_path)


class TestMinimizer:
    def test_rebuild_reassigns_indexes(self):
        trace = build_trace("racy", num_threads=3, events=20, seed=1)
        events = [e for e in trace if e.thread != 1]
        rebuilt = rebuild_trace(events, "cut")
        assert len(rebuilt) == len(events)
        for thread in rebuilt.threads:
            indexes = [e.index for e in rebuilt.thread_events(thread)]
            assert indexes == list(range(len(indexes)))

    def test_minimize_shrinks_to_the_core(self):
        trace = Trace(name="big")
        for i in range(30):
            trace.write(0, f"noise{i}")
        trace.write(1, "x", value=1)
        for i in range(30):
            trace.read(2, f"other{i}")
        trace.read(3, "x")

        def predicate(candidate):
            threads = {e.thread for e in candidate if e.variable == "x"}
            return 1 in threads and 3 in threads

        minimal = minimize_trace(trace, predicate)
        assert len(minimal) == 2
        assert {e.thread for e in minimal} == {1, 3}

    def test_minimize_requires_a_holding_predicate(self):
        trace = Trace(name="t")
        trace.write(0, "x")
        with pytest.raises(FuzzError, match="does not hold"):
            minimize_trace(trace, lambda _t: False)

    def test_minimize_respects_check_budget(self):
        trace = build_trace("racy", num_threads=3, events=30, seed=0)
        calls = []

        def predicate(candidate):
            calls.append(1)
            return True

        minimize_trace(trace, predicate, max_checks=10)
        assert len(calls) <= 10


class TestInjectedDivergence:
    """End-to-end divergence path: a deliberately broken backend must be
    caught, delta-debugged, and written to disk."""

    @pytest.fixture
    def broken_flat(self, monkeypatch):
        real = fuzz_module._run_findings

        def buggy(analysis, backend, trace):
            findings = real(analysis, backend, trace)
            if backend.endswith("-flat") and findings:
                return findings[:-1]  # silently drop one finding
            return findings

        monkeypatch.setattr(fuzz_module, "_run_findings", buggy)

    def test_divergence_is_caught_minimized_and_reported(self, broken_flat,
                                                         tmp_path):
        report = run_fuzz(seeds=4, quick=True, kinds=["racy"],
                          out_dir=tmp_path / "cex", max_checks=120)
        assert not report.ok
        divergence = report.divergences[0]
        assert divergence.right.endswith("-flat")
        assert divergence.counterexample is not None
        assert divergence.minimized_events is not None
        assert divergence.minimized_events <= divergence.case.events * \
            divergence.case.threads
        # Both artifacts exist and the JSON report is structured.
        cex_files = list((tmp_path / "cex").glob("*.std"))
        reports = list((tmp_path / "cex").glob("*.json"))
        assert cex_files and reports
        document = json.loads(reports[0].read_text())
        assert document["analysis"] == divergence.analysis
        assert document["left_findings"] != document["right_findings"]
        assert "DIVERGENCE" in report.summary()

    def test_no_minimize_keeps_divergence_unwritten(self, broken_flat,
                                                    tmp_path):
        report = run_fuzz(seeds=2, quick=True, kinds=["racy"],
                          out_dir=tmp_path / "cex", minimize=False)
        assert not report.ok
        assert report.divergences[0].counterexample is None
        assert not (tmp_path / "cex").exists()


class TestErrorDivergence:
    def test_backend_error_is_a_divergence_not_a_crash(self, monkeypatch,
                                                       tmp_path):
        from repro.errors import AnalysisError

        real = fuzz_module._run_findings

        def exploding(analysis, backend, trace):
            if backend == "vc-flat":
                raise AnalysisError("injected failure")
            return real(analysis, backend, trace)

        monkeypatch.setattr(fuzz_module, "_run_findings", exploding)
        report = run_fuzz(seeds=1, quick=True, kinds=["racy"],
                          out_dir=tmp_path / "cex")
        errors = [d for d in report.divergences if d.error]
        assert errors and "injected failure" in errors[0].error
        # The failing input itself is the artifact (no minimization).
        assert errors[0].counterexample is not None


class TestCaseIds:
    def test_case_id_shares_the_trace_spec_format(self):
        from repro.runner.corpus import TraceSpec

        spec = TraceSpec(kind="racy", threads=2, events=10, seed=30)
        case = FuzzCase(index=3, spec=spec)
        assert case.case_id == f"fuzz0003-{spec.trace_id}"
        assert (case.kind, case.threads, case.events, case.seed) == \
            ("racy", 2, 10, 30)
        with_params = FuzzCase(index=0, spec=TraceSpec(
            kind="locked-mix", threads=2, events=10, seed=0,
            params=(("scheduler", "rr"),)))
        assert with_params.case_id.endswith("-scheduler=rr")
