"""Tests for the scenario families and their registry integration."""

import pytest

from repro.analyses.common.base import Analysis
from repro.errors import GenerationError
from repro.gen.families import (
    FAMILY_REGISTRY,
    build_family_trace,
    get_family,
)
from repro.trace.event import EventKind
from repro.trace.generators import GENERATOR_REGISTRY, build_trace

FAMILY_NAMES = sorted(FAMILY_REGISTRY)


class TestRegistryUnification:
    def test_every_family_is_a_registered_generator(self):
        for name, family in FAMILY_REGISTRY.items():
            entry = GENERATOR_REGISTRY[name]
            assert entry.source == "scenario"
            assert entry.analyses == family.analyses
            assert entry.description == family.description

    def test_no_duplicate_kind_names(self):
        classic = {kind for kind, entry in GENERATOR_REGISTRY.items()
                   if entry.source == "classic"}
        assert not classic & set(FAMILY_REGISTRY)

    def test_family_analyses_exist(self):
        registered = set(Analysis.registered())
        for family in FAMILY_REGISTRY.values():
            assert set(family.analyses) <= registered

    def test_unknown_family_rejected(self):
        with pytest.raises(GenerationError, match="unknown scenario family"):
            get_family("quantum")


@pytest.mark.parametrize("family_name", FAMILY_NAMES)
class TestEveryFamily:
    def test_builds_through_the_unified_entry_point(self, family_name):
        trace = build_trace(family_name, num_threads=4, events=40, seed=5)
        assert len(trace) > 0
        assert trace.num_threads >= 2
        trace.critical_sections()  # must not raise: locks are balanced

    def test_declared_analyses_run(self, family_name):
        trace = build_trace(family_name, num_threads=3, events=30, seed=2)
        for analysis in GENERATOR_REGISTRY[family_name].analyses:
            result = Analysis.by_name(analysis)().run(trace)
            assert result.trace_events == len(trace)

    def test_some_seed_produces_findings(self, family_name):
        analyses = GENERATOR_REGISTRY[family_name].analyses
        found = 0
        for seed in range(4):
            trace = build_trace(family_name, num_threads=4, events=40,
                                seed=seed)
            found += sum(Analysis.by_name(a)().run(trace).finding_count
                         for a in analyses)
        assert found > 0, (f"{family_name} produced no findings for any of "
                           f"its analyses on seeds 0-3")

    def test_scheduler_changes_the_interleaving(self, family_name):
        base = build_trace(family_name, num_threads=4, events=40, seed=3,
                           scheduler="rr")
        alt = build_trace(family_name, num_threads=4, events=40, seed=3,
                          scheduler="adversarial")
        assert [str(e) for e in base] != [str(e) for e in alt]


class TestParameterPinning:
    def test_pinned_knob_is_respected(self):
        trace = build_family_trace("locked-mix", num_threads=3,
                                   events_per_thread=30, seed=1,
                                   contention=0.0)
        assert not any(e.kind is EventKind.ACQUIRE for e in trace)
        trace = build_family_trace("locked-mix", num_threads=3,
                                   events_per_thread=30, seed=1,
                                   contention=1.0)
        assert any(e.kind is EventKind.ACQUIRE for e in trace)

    def test_unknown_knob_rejected(self):
        with pytest.raises(GenerationError, match="unknown parameters"):
            build_family_trace("locked-mix", num_threads=2,
                               events_per_thread=10, seed=0, bogus=1)

    def test_heap_churn_uaf_knob_feeds_the_analysis(self):
        high = build_family_trace("heap-churn", num_threads=4,
                                  events_per_thread=60, seed=1,
                                  uaf_fraction=0.9, escape_fraction=0.9,
                                  locked_use_fraction=0.0)
        uaf = Analysis.by_name("use-after-free")().run(high)
        assert uaf.finding_count > 0

    def test_producer_consumer_single_thread_honours_thread_count(self):
        trace = build_trace("producer-consumer", num_threads=1, events=20,
                            seed=0)
        assert trace.num_threads == 1
        assert len(trace) > 0

    def test_fork_join_emits_fork_join_events(self):
        trace = build_family_trace("fork-join", num_threads=4,
                                   events_per_thread=20, seed=0,
                                   detach_fraction=0.0)
        kinds = {e.kind for e in trace}
        assert EventKind.FORK in kinds and EventKind.JOIN in kinds
        # Every worker is forked before its first event.
        position = {}
        for i, event in enumerate(trace):
            position.setdefault(event.thread, i)
        for event in trace:
            if event.kind is EventKind.FORK:
                first = position[event.target]
                fork_at = list(trace).index(event)
                assert fork_at < first


class TestSweepAndWatchIntegration:
    """Acceptance: every scenario family runs end-to-end via both
    ``repro sweep`` (suite of specs) and ``repro watch`` (generator
    source)."""

    def test_families_sweep_end_to_end(self):
        from repro.runner.corpus import Suite, grid
        from repro.runner.executor import run_jobs, plan_jobs

        suite = Suite(name="fam-test", description="scenario families",
                      specs=grid(FAMILY_NAMES, [3], [24]))
        jobs = plan_jobs(suite, backends=["incremental-csst"])
        result = run_jobs(jobs, workers=1)
        assert not result.failures()
        assert {record.kind for record in result.records} == \
            set(FAMILY_NAMES)

    @pytest.mark.parametrize("family_name", FAMILY_NAMES)
    def test_families_watch_end_to_end(self, family_name):
        from repro.stream.engine import StreamEngine
        from repro.stream.source import open_source

        source = open_source(f"{family_name}:threads=3,events=20,seed=1")
        analyses = [a for a in GENERATOR_REGISTRY[family_name].analyses]
        engine = StreamEngine(analyses)
        result = engine.run(source)
        assert set(result.results) == set(analyses)
        assert result.stats.events == len(source._materialize())
