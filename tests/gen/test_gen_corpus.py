"""Tests for the corpus builder, manifest and suite/source integration."""

import json

import pytest

from repro.errors import GenerationError
from repro.gen.corpus import (
    CorpusConfig,
    build_corpus,
    load_manifest,
    plan_corpus,
    read_manifest,
    register_corpus_suite,
    resolve_member,
    suite_from_manifest,
)
from repro.runner.corpus import SUITES
from repro.runner.executor import run_suite


@pytest.fixture
def small_config():
    return CorpusConfig(name="t", kinds=("locked-mix", "racy"), count=2,
                        seed=5)


@pytest.fixture
def built(tmp_path, small_config):
    manifest = build_corpus(tmp_path / "corpus", small_config)
    yield tmp_path / "corpus", manifest
    SUITES.pop("corpus:t", None)


class TestConfig:
    def test_from_mapping_validates_keys(self):
        with pytest.raises(GenerationError, match="unknown corpus config"):
            CorpusConfig.from_mapping({"bogus": 1})

    def test_from_mapping_rejects_bare_string_lists(self):
        with pytest.raises(GenerationError, match="'kinds' must be a list"):
            CorpusConfig.from_mapping({"kinds": "racy"})
        with pytest.raises(GenerationError,
                           match="'schedulers' must be a list"):
            CorpusConfig.from_mapping({"schedulers": "adversarial"})

    def test_from_mapping_rejects_non_mapping_overrides(self):
        with pytest.raises(GenerationError, match="'params' must map"):
            CorpusConfig.from_mapping({"params": {"locked-mix": 5}})
        with pytest.raises(GenerationError, match="'params' must map"):
            CorpusConfig.from_mapping({"params": [1, 2]})

    def test_from_mapping_round_trips_params(self):
        config = CorpusConfig.from_mapping({
            "name": "x", "kinds": ["racy"], "count": 2,
            "params": {"racy": {"write_fraction": 0.9}},
        })
        assert config.overrides_for("racy") == {"write_fraction": 0.9}
        assert config.overrides_for("c11") == {}

    def test_from_file(self, tmp_path):
        path = tmp_path / "config.json"
        path.write_text(json.dumps({"name": "filecfg", "count": 1,
                                    "kinds": ["racy"]}))
        config = CorpusConfig.from_file(path)
        assert config.name == "filecfg" and config.count == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(GenerationError, match="unknown kinds"):
            CorpusConfig(kinds=("quantum",)).resolved_kinds()

    def test_empty_kinds_means_every_registered_kind(self):
        from repro.trace.generators import GENERATOR_REGISTRY

        assert CorpusConfig().resolved_kinds() == tuple(GENERATOR_REGISTRY)


class TestPlanning:
    def test_plan_is_deterministic(self, small_config):
        assert plan_corpus(small_config) == plan_corpus(small_config)

    def test_scenario_kinds_cycle_schedulers(self, small_config):
        members = plan_corpus(small_config)
        locked = [m for m in members if m["kind"] == "locked-mix"]
        assert [m["params"]["scheduler"] for m in locked] == \
            ["rr", "weighted"]
        racy = [m for m in members if m["kind"] == "racy"]
        assert all("scheduler" not in m["params"] for m in racy)

    def test_history_events_are_capped(self):
        config = CorpusConfig(kinds=("history",), count=2, seed=0,
                              events="const:500")
        members = plan_corpus(config)
        assert all(m["events"] <= 10 for m in members)

    def test_count_must_be_positive(self):
        with pytest.raises(GenerationError, match="count must be"):
            plan_corpus(CorpusConfig(count=0))

    def test_non_integer_shape_sample_is_a_clean_error(self):
        config = CorpusConfig(kinds=("racy",), count=1,
                              threads="choice:four,five")
        with pytest.raises(GenerationError, match="non-integer sample"):
            plan_corpus(config)


class TestBuilding:
    def test_writes_files_and_manifest(self, built):
        out, manifest = built
        assert (out / "manifest.json").exists()
        for member in manifest["traces"]:
            assert (out / member["file"]).exists()
            assert member["event_count"] > 0
        assert manifest["suite"] == "corpus:t"

    def test_rebuild_is_byte_identical(self, built, tmp_path, small_config):
        out, manifest = built
        again = build_corpus(tmp_path / "again", small_config,
                             register=False)
        for member in manifest["traces"]:
            left = (out / member["file"]).read_bytes()
            right = (tmp_path / "again" / member["file"]).read_bytes()
            assert left == right, member["file"]
        left_manifest = (out / "manifest.json").read_bytes()
        right_manifest = (tmp_path / "again" / "manifest.json").read_bytes()
        assert left_manifest == right_manifest

    def test_build_registers_the_sweep_suite(self, built):
        _out, manifest = built
        assert "corpus:t" in SUITES
        suite = SUITES["corpus:t"]
        assert len(suite.specs) == len(manifest["traces"])


class TestSweepIntegration:
    def test_corpus_suite_sweeps_clean(self, built):
        result = run_suite("corpus:t", analyses=["race-prediction"],
                           backends=["vc", "incremental-csst-flat"])
        assert not result.failures()
        assert len(result.records) == 8  # 4 traces x 2 backends
        # Spec-regenerated traces carry the manifest's trace ids.
        ids = {record.trace_id for record in result.records}
        expected = {m["trace_id"] for m in built[1]["traces"]}
        assert ids == expected


class TestStcCorpus:
    @pytest.fixture
    def stc_built(self, tmp_path):
        config = CorpusConfig(name="b", kinds=("racy", "c11"), count=2,
                              seed=5, format="stc")
        manifest = build_corpus(tmp_path / "corpus", config)
        yield tmp_path / "corpus", manifest, config
        SUITES.pop("corpus:b", None)

    def test_members_are_stc_files(self, stc_built):
        root, manifest, _config = stc_built
        assert manifest["format"] == "stc"
        for member in manifest["traces"]:
            assert member["file"].endswith(".stc")
            blob = (root / member["file"]).read_bytes()
            assert blob[:4] == b"\x89STC"

    def test_members_load_and_match_their_specs(self, stc_built):
        from repro.trace import read_trace
        from repro.trace.generators import build_trace

        root, manifest, _config = stc_built
        for member in manifest["traces"]:
            trace = read_trace(root / member["file"])
            assert len(trace) == member["event_count"]
            rebuilt = build_trace(member["kind"],
                                  num_threads=member["threads"],
                                  events=member["events"],
                                  seed=member["seed"], **member["params"])
            assert list(trace) == list(rebuilt)

    def test_resolve_member_returns_stc_path(self, stc_built):
        root, manifest, _config = stc_built
        wanted = manifest["traces"][0]["trace_id"]
        path, name = resolve_member(f"{root / 'manifest.json'}#{wanted}",
                                    manifest)
        assert path.endswith(".stc")
        assert name == wanted

    def test_stc_corpus_suite_sweeps_clean(self, stc_built):
        result = run_suite("corpus:b", analyses=["race-prediction"],
                           backends=["vc"])
        assert not result.failures()

    def test_stc_rebuild_is_byte_identical(self, stc_built, tmp_path):
        root, manifest, config = stc_built
        again = build_corpus(tmp_path / "again", config)
        SUITES.pop("corpus:b", None)
        for member in manifest["traces"]:
            assert ((root / member["file"]).read_bytes()
                    == (tmp_path / "again" / member["file"]).read_bytes())

    def test_unknown_format_rejected(self):
        with pytest.raises(GenerationError, match="format"):
            CorpusConfig(name="x", format="parquet")


class TestManifestConsumption:
    def test_load_manifest_validates(self, tmp_path):
        bogus = tmp_path / "not.json"
        bogus.write_text(json.dumps({"something": 1}))
        with pytest.raises(GenerationError, match="not a corpus manifest"):
            load_manifest(bogus)

    def test_version_check(self, tmp_path):
        stale = tmp_path / "old.json"
        stale.write_text(json.dumps({"traces": [], "version": 99}))
        with pytest.raises(GenerationError, match="unsupported corpus "
                                                  "manifest version"):
            load_manifest(stale)

    def test_read_manifest_probes_shape(self, built, tmp_path):
        out, _manifest = built
        assert read_manifest(out / "manifest.json") is not None
        other = tmp_path / "plain.json"
        other.write_text("[1, 2]")
        assert read_manifest(other) is None
        unparsable = tmp_path / "broken.json"
        unparsable.write_text("{nope")
        assert read_manifest(unparsable) is None

    def test_suite_from_manifest_round_trips_specs(self, built):
        _out, manifest = built
        suite = suite_from_manifest(manifest)
        assert [spec.trace_id for spec in suite.specs] == \
            [m["trace_id"] for m in manifest["traces"]]

    def test_register_corpus_suite_from_path(self, built):
        out, _manifest = built
        SUITES.pop("corpus:t", None)
        suite = register_corpus_suite(out / "manifest.json")
        assert SUITES[suite.name] is suite

    def test_resolve_member_defaults_to_first(self, built):
        out, manifest = built
        path, name = resolve_member(str(out / "manifest.json"))
        assert name == manifest["traces"][0]["trace_id"]
        assert path.endswith(manifest["traces"][0]["file"])

    def test_resolve_member_by_fragment(self, built):
        out, manifest = built
        wanted = manifest["traces"][2]["trace_id"]
        path, name = resolve_member(f"{out / 'manifest.json'}#{wanted}")
        assert name == wanted

    def test_resolve_member_unknown_fragment(self, built):
        out, _manifest = built
        with pytest.raises(GenerationError, match="no trace 'zzz'"):
            resolve_member(f"{out / 'manifest.json'}#zzz")


class TestWatchIntegration:
    def test_open_source_resolves_manifest_members(self, built):
        from repro.stream.source import FileSource, open_source
        from repro.trace.formats import load_trace

        out, manifest = built
        member = manifest["traces"][1]
        source = open_source(f"{out / 'manifest.json'}#{member['trace_id']}")
        assert isinstance(source, FileSource)
        assert source.name == member["trace_id"]
        events = list(source.events())
        on_disk = load_trace(out / member["file"])
        assert [str(e) for e in events] == [str(e) for e in on_disk]

    def test_open_source_bad_fragment_is_stream_error(self, built):
        from repro.errors import StreamError
        from repro.stream.source import open_source

        out, _manifest = built
        with pytest.raises(StreamError, match="no trace"):
            open_source(f"{out / 'manifest.json'}#nope")
