"""Tests for the scenario-program model and its blocking executor.

The executor's whole value is that it only emits *well-formed*
interleavings: mutual exclusion respected, queues FIFO within capacity,
barriers releasing together, forks before first child event.  These tests
pin those invariants on the emitted traces directly.
"""

import random

import pytest

from repro.errors import GenerationError
from repro.gen.scenario import Op, Scenario, ScenarioExecutor, execute
from repro.gen.schedulers import (
    AdversarialPreemption,
    ContentionWeighted,
    RoundRobinBursts,
    make_scheduler,
)
from repro.trace.event import EventKind


def run_scenario(scenario, scheduler=None, seed=0):
    return execute(scenario, scheduler or RoundRobinBursts(burst=2),
                   seed=seed)


def locked_increment_scenario(threads=3, sections=4):
    programs = {}
    for thread in range(threads):
        ops = []
        for _ in range(sections):
            ops.append(Op("acquire", target="l"))
            ops.append(Op("read", target="x"))
            ops.append(Op("write", target="x", value=thread))
            ops.append(Op("release", target="l"))
        programs[thread] = ops
    return Scenario(name="locked", programs=programs)


class TestOpValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(GenerationError, match="unknown scenario op"):
            Op("teleport", target="x")

    def test_empty_scenario_rejected(self):
        with pytest.raises(GenerationError, match="at least one thread"):
            Scenario(name="empty", programs={})

    def test_all_forked_scenario_rejected(self):
        with pytest.raises(GenerationError, match="no root threads"):
            Scenario(name="cycle", programs={
                0: [Op("fork", target=1)],
                1: [Op("fork", target=0)],
            })


class TestMutualExclusion:
    @pytest.mark.parametrize("scheduler", [
        RoundRobinBursts(burst=1),
        ContentionWeighted(skew=1.5),
        AdversarialPreemption(preempt=0.9),
    ])
    def test_critical_sections_never_overlap(self, scheduler):
        trace, stats = run_scenario(locked_increment_scenario(), scheduler)
        held_by = None
        for event in trace:
            if event.kind is EventKind.ACQUIRE:
                assert held_by is None, "two threads inside the lock"
                held_by = event.thread
            elif event.kind is EventKind.RELEASE:
                assert held_by == event.thread
                held_by = None
        assert held_by is None
        assert stats.repairs == 0
        # The derived index agrees: every section has a release.
        for section in trace.critical_sections():
            assert section.release is not None

    def test_interleaving_actually_happens(self):
        trace, _stats = run_scenario(locked_increment_scenario(),
                                     RoundRobinBursts(burst=1))
        threads_in_order = [event.thread for event in trace]
        assert len(set(threads_in_order)) == 3
        switches = sum(1 for a, b in zip(threads_in_order,
                                         threads_in_order[1:]) if a != b)
        assert switches >= 3


class TestQueues:
    def test_spsc_queue_is_fifo_and_capacity_bounded(self):
        items = 6
        scenario = Scenario(
            name="spsc",
            programs={
                0: [Op("put", target="q", value=i) for i in range(items)],
                1: [Op("get", target="q") for _ in range(items)],
            },
            queue_capacity={"q": 2},
        )
        trace, stats = run_scenario(scenario, RoundRobinBursts(burst=3))
        assert stats.repairs == 0
        puts = [e for e in trace if e.kind is EventKind.ATOMIC_WRITE
                and e.variable == "q"]
        gets = [e for e in trace if e.kind is EventKind.ATOMIC_READ
                and e.variable == "q"]
        assert [e.value for e in puts] == list(range(items))
        assert [e.value for e in gets] == list(range(items))
        # Every ticket is produced before it is consumed, and the queue
        # never holds more than its capacity.
        position = {id(e): i for i, e in enumerate(trace)}
        for put, get in zip(puts, gets):
            assert position[id(put)] < position[id(get)]
        outstanding = 0
        for event in trace:
            if event.kind is EventKind.ATOMIC_WRITE and event.variable == "q":
                outstanding += 1
            elif event.kind is EventKind.ATOMIC_READ and event.variable == "q":
                outstanding -= 1
            assert 0 <= outstanding <= 2


    def test_put_without_value_reads_back_what_was_written(self):
        # Regression: a valueless put must write the ticket fallback to the
        # payload cell, so the consumer's read observes a written value.
        scenario = Scenario(
            name="valueless",
            programs={
                0: [Op("put", target="q"), Op("put", target="q")],
                1: [Op("get", target="q"), Op("get", target="q")],
            },
        )
        trace, _stats = run_scenario(scenario, RoundRobinBursts(burst=2))
        writes = {(e.variable, e.value) for e in trace
                  if e.kind is EventKind.WRITE}
        reads = {(e.variable, e.value) for e in trace
                 if e.kind is EventKind.READ}
        assert reads <= writes


class TestBarriers:
    def test_barrier_phases_are_totally_ordered(self):
        scenario = Scenario(
            name="phases",
            programs={
                t: [Op("write", target=f"p0_{t}"), Op("barrier", target="b"),
                    Op("write", target=f"p1_{t}"), Op("barrier", target="b")]
                for t in range(3)
            },
        )
        trace, stats = run_scenario(scenario, RoundRobinBursts(burst=2))
        assert stats.repairs == 0
        arrivals = [e for e in trace if e.kind is EventKind.ATOMIC_RMW]
        phase0 = [e for e in arrivals if e.variable == "b#p0"]
        phase1 = [e for e in arrivals if e.variable == "b#p1"]
        assert len(phase0) == 3 and len(phase1) == 3
        position = {id(e): i for i, e in enumerate(trace)}
        assert max(position[id(e)] for e in phase0) < \
            min(position[id(e)] for e in phase1)


class TestForkJoin:
    def test_fork_precedes_child_and_join_follows_it(self):
        scenario = Scenario(
            name="fj",
            programs={
                0: [Op("fork", target=1), Op("write", target="x"),
                    Op("join", target=1), Op("read", target="x")],
                1: [Op("write", target="y"), Op("write", target="x")],
            },
            roots=[0],
        )
        trace, stats = run_scenario(scenario, RoundRobinBursts(burst=1))
        assert stats.repairs == 0
        position = {id(e): i for i, e in enumerate(trace)}
        fork = next(e for e in trace if e.kind is EventKind.FORK)
        join = next(e for e in trace if e.kind is EventKind.JOIN)
        child_events = [e for e in trace if e.thread == 1]
        assert position[id(fork)] < min(position[id(e)] for e in child_events)
        assert position[id(join)] > max(position[id(e)] for e in child_events)


class TestStuckBreaking:
    def deadlocking_scenario(self):
        return Scenario(name="dl", programs={
            0: [Op("acquire", target="a"), Op("acquire", target="b"),
                Op("read", target="x"), Op("release", target="b"),
                Op("release", target="a")],
            1: [Op("acquire", target="b"), Op("acquire", target="a"),
                Op("read", target="x"), Op("release", target="a"),
                Op("release", target="b")],
        })

    def test_inverted_lock_order_deadlock_is_repaired(self):
        # burst=1 round-robin forces t0:acq(a), t1:acq(b), then both block.
        trace, stats = run_scenario(self.deadlocking_scenario(),
                                    RoundRobinBursts(burst=1))
        assert stats.repairs >= 1
        assert stats.skipped_sections >= 1
        # The emitted trace is still well-formed.
        for section in trace.critical_sections():
            assert section.release is not None

    def test_unjoined_child_is_force_started(self):
        scenario = Scenario(
            name="orphan",
            programs={
                0: [Op("join", target=1), Op("read", target="x")],
                1: [Op("write", target="x")],
            },
            roots=[0],  # thread 1 is never forked
        )
        trace, stats = run_scenario(scenario, RoundRobinBursts(burst=1))
        assert stats.forced_starts >= 1
        assert any(e.thread == 1 for e in trace)

    def test_reentrant_acquire_is_repaired_not_crashed(self):
        # Locks are non-reentrant: a self-re-acquire blocks the thread on
        # itself; the stuck-breaker must skip the inner section instead of
        # aborting generation.
        scenario = Scenario(name="reentrant", programs={
            0: [Op("acquire", target="l"), Op("acquire", target="l"),
                Op("read", target="x"), Op("release", target="l"),
                Op("release", target="l")],
        })
        trace, stats = run_scenario(scenario, RoundRobinBursts(burst=1))
        assert stats.skipped_sections >= 1
        for section in trace.critical_sections():
            assert section.release is not None

    def test_starved_get_is_skipped(self):
        scenario = Scenario(
            name="starved",
            programs={
                0: [Op("put", target="q", value=1)],
                1: [Op("get", target="q"), Op("get", target="q"),
                    Op("read", target="x")],
            },
        )
        trace, stats = run_scenario(scenario, RoundRobinBursts(burst=4))
        assert stats.skipped_queue_ops >= 1
        assert any(e.variable == "x" for e in trace)


class TestDeterminismAndSafety:
    def test_round_robin_first_pick_is_lowest_runnable_thread(self):
        trace, _stats = run_scenario(locked_increment_scenario(),
                                     RoundRobinBursts(burst=4))
        assert trace[0].thread == 0

    def test_same_seed_same_trace(self):
        for spec in ("rr:burst=3", "weighted:skew=1.2",
                     "adversarial:preempt=0.7"):
            left, _ = execute(locked_increment_scenario(),
                              make_scheduler(spec), seed=11)
            right, _ = execute(locked_increment_scenario(),
                               make_scheduler(spec), seed=11)
            assert [str(e) for e in left] == [str(e) for e in right], spec

    def test_release_without_hold_is_a_builder_error(self):
        scenario = Scenario(name="bad",
                            programs={0: [Op("release", target="l")]})
        with pytest.raises(GenerationError, match="does not.*hold|not hold"):
            run_scenario(scenario)

    def test_non_integer_rr_burst_rejected_up_front(self):
        from repro.errors import GenerationError
        from repro.gen.schedulers import make_scheduler

        with pytest.raises(GenerationError, match="rr burst must be"):
            make_scheduler("rr:burst=2.5")

    def test_scheduler_returning_non_runnable_thread_is_rejected(self):
        class Rogue:
            def pick(self, rng, runnable, executor):
                return -99

        scenario = locked_increment_scenario(threads=2, sections=1)
        with pytest.raises(GenerationError, match="non-runnable"):
            ScenarioExecutor(scenario, random.Random(0)).run(Rogue())

    def test_fork_of_unknown_thread_rejected(self):
        scenario = Scenario(name="badfork",
                            programs={0: [Op("fork", target=7)]})
        with pytest.raises(GenerationError, match="no program"):
            run_scenario(scenario)
