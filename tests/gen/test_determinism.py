"""Generator determinism: same seed -> byte-identical serialized output.

This is the contract the perf baseline, corpus reproducibility and fuzz
reproduction all lean on, for *every* registered generator (classic and
scenario families alike): building twice with one seed must produce the
same events, and serializing must produce byte-identical ``.std`` *and*
``.std.gz`` files -- the gzip layer writes canonical members (zeroed
mtime, no embedded filename), so compressed bytes are path- and
time-independent too.
"""

import pytest

from repro.trace.formats import dump_trace, dumps_trace, load_trace
from repro.trace.generators import GENERATOR_REGISTRY, build_trace

ALL_KINDS = sorted(GENERATOR_REGISTRY)


def build_twice(kind, **kwargs):
    return (build_trace(kind, **kwargs), build_trace(kind, **kwargs))


@pytest.mark.parametrize("kind", ALL_KINDS)
class TestEveryRegisteredGenerator:
    def shape(self, kind):
        events = 8 if kind == "history" else 40
        return dict(num_threads=3, events=events, seed=13)

    def test_same_seed_same_events(self, kind):
        left, right = build_twice(kind, **self.shape(kind))
        assert [str(e) for e in left] == [str(e) for e in right]

    def test_std_bytes_identical(self, kind, tmp_path):
        left, right = build_twice(kind, **self.shape(kind))
        a, b = tmp_path / "a.std", tmp_path / "b.std"
        dump_trace(left, a)
        dump_trace(right, b)
        assert a.read_bytes() == b.read_bytes()

    def test_std_gz_bytes_identical_across_paths(self, kind, tmp_path):
        left, right = build_twice(kind, **self.shape(kind))
        # Different basenames on purpose: canonical gzip members must not
        # embed the filename (or a timestamp).
        a, b = tmp_path / "first.std.gz", tmp_path / "second_name.std.gz"
        dump_trace(left, a)
        dump_trace(right, b)
        assert a.read_bytes() == b.read_bytes()
        restored = load_trace(a)
        assert [str(e) for e in restored] == [str(e) for e in left]

    def test_different_seed_different_trace(self, kind):
        shape = self.shape(kind)
        base = dumps_trace(build_trace(kind, **shape))
        others = []
        for seed in (14, 15, 16):
            shape_other = dict(shape, seed=seed)
            others.append(dumps_trace(build_trace(kind, **shape_other)))
        assert any(other != base for other in others), \
            f"{kind} ignored its seed"


class TestSchedulerDeterminism:
    @pytest.mark.parametrize("scheduler", ["rr", "rr:burst=1", "weighted",
                                           "adversarial"])
    def test_scenario_kind_deterministic_per_scheduler(self, scheduler):
        kwargs = dict(num_threads=4, events=30, seed=3, scheduler=scheduler)
        left = dumps_trace(build_trace("mpmc-queue", **kwargs))
        right = dumps_trace(build_trace("mpmc-queue", **kwargs))
        assert left == right
