"""Tests for the named parameter distributions."""

import random

import pytest

from repro.errors import GenerationError
from repro.gen.distributions import (
    Choice,
    Constant,
    FloatUniform,
    Geometric,
    Space,
    Uniform,
    Zipf,
    parse_distribution,
)


class TestParsing:
    @pytest.mark.parametrize("spec, expected", [
        ("const:5", Constant(5)),
        ("uniform:2,8", Uniform(2, 8)),
        ("funiform:0.1,0.9", FloatUniform(0.1, 0.9)),
        ("choice:a,b,c", Choice(("a", "b", "c"))),
        ("zipf:1.2,16", Zipf(1.2, 16)),
        ("geom:0.5,4", Geometric(0.5, 4)),
    ])
    def test_named_specs_round_trip(self, spec, expected):
        parsed = parse_distribution(spec)
        assert parsed == expected
        assert parse_distribution(parsed.spec()) == parsed

    def test_bare_literals_become_constants(self):
        assert parse_distribution(4) == Constant(4)
        assert parse_distribution(0.25) == Constant(0.25)
        assert parse_distribution("7") == Constant(7)
        assert parse_distribution("0.5") == Constant(0.5)
        assert parse_distribution("rr") == Constant("rr")

    def test_distribution_instances_pass_through(self):
        dist = Uniform(1, 3)
        assert parse_distribution(dist) is dist

    def test_unknown_name_rejected(self):
        with pytest.raises(GenerationError, match="unknown distribution"):
            parse_distribution("gaussian:0,1")

    def test_malformed_arguments_rejected(self):
        with pytest.raises(GenerationError, match="malformed distribution"):
            parse_distribution("uniform:2")
        with pytest.raises(GenerationError, match="malformed distribution"):
            parse_distribution("zipf:a,b")

    def test_invalid_bounds_rejected(self):
        with pytest.raises(GenerationError, match="out of order"):
            Uniform(5, 2)
        with pytest.raises(GenerationError, match="at least one value"):
            Choice(())
        with pytest.raises(GenerationError):
            Zipf(-1.0, 4)
        with pytest.raises(GenerationError):
            Geometric(0.0, 3)


class TestSampling:
    def test_same_seed_same_samples(self):
        for spec in ("uniform:1,100", "funiform:0,1", "choice:x,y,z",
                     "zipf:1.1,8", "geom:0.5,5"):
            dist = parse_distribution(spec)
            left = [dist.sample(random.Random(7)) for _ in range(5)]
            right = [dist.sample(random.Random(7)) for _ in range(5)]
            assert left == right, spec

    def test_uniform_respects_bounds(self):
        dist = Uniform(3, 6)
        rng = random.Random(0)
        samples = {dist.sample(rng) for _ in range(200)}
        assert samples <= {3, 4, 5, 6}
        assert len(samples) == 4

    def test_zipf_skews_toward_low_ranks(self):
        dist = Zipf(1.5, 10)
        rng = random.Random(1)
        samples = [dist.sample(rng) for _ in range(2000)]
        assert samples.count(1) > samples.count(10) * 3
        assert min(samples) >= 1 and max(samples) <= 10

    def test_geometric_capped(self):
        dist = Geometric(0.9, 3)
        rng = random.Random(2)
        samples = {dist.sample(rng) for _ in range(200)}
        assert samples <= {1, 2, 3}
        assert 3 in samples


class TestSpace:
    def test_from_config_and_sample(self):
        space = Space.from_config({"threads": "uniform:2,4",
                                   "contention": 0.5})
        sample = space.sample(random.Random(3))
        assert set(sample) == {"threads", "contention"}
        assert 2 <= sample["threads"] <= 4
        assert sample["contention"] == 0.5

    def test_override_replaces_and_validates(self):
        space = Space.from_config({"a": "uniform:1,9", "b": 2})
        narrowed = space.override({"a": 5})
        assert narrowed.sample(random.Random(0)) == {"a": 5, "b": 2}
        with pytest.raises(GenerationError, match="unknown parameters"):
            space.override({"c": 1})

    def test_to_config_round_trips(self):
        space = Space.from_config({"a": "uniform:1,9", "b": "funiform:0,1"})
        assert Space.from_config(space.to_config()).to_config() == \
            space.to_config()
