"""Sinks and renderers: JSONL round trip, Prometheus exposition, tables."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    load_snapshot,
    read_snapshots,
    render_prom,
    render_stats_table,
)


def _sample_registry():
    registry = MetricsRegistry()
    registry.counter("events_total", source="t.std").inc(42)
    registry.gauge("buffered").set(7)
    histogram = registry.histogram("latency_seconds", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 2.0):
        histogram.observe(value)
    with registry.span("analyze"):
        with registry.span("load"):
            pass
    return registry


class TestMemorySink:
    def test_latest_tracks_emissions(self):
        sink = MemorySink()
        assert sink.latest is None
        sink.emit({"counters": [], "n": 1})
        sink.emit({"counters": [], "n": 2})
        assert sink.latest["n"] == 2
        assert len(sink.snapshots) == 2


class TestJsonlRoundTrip:
    def test_append_and_read_back(self, tmp_path):
        path = tmp_path / "m.jsonl"
        sink = JsonlSink(path)
        first = _sample_registry().snapshot()
        second = _sample_registry().snapshot()
        sink.emit(first)
        sink.emit(second)
        snapshots = read_snapshots(path)
        assert snapshots == [first, second]
        assert load_snapshot(path) == second
        assert load_snapshot(path, index=0) == first

    def test_lines_are_compact_single_documents(self, tmp_path):
        path = tmp_path / "m.jsonl"
        JsonlSink(path).emit(_sample_registry().snapshot())
        [line] = path.read_text().splitlines()
        assert json.loads(line)["counters"]
        assert ": " not in line and ", " not in line  # compact separators

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "m.jsonl"
        sink = JsonlSink(path)
        sink.emit(_sample_registry().snapshot())
        with open(path, "a", encoding="utf-8") as stream:
            stream.write("\n")
        assert len(read_snapshots(path)) == 1

    def test_malformed_line_is_an_error(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text('{"counters": []}\nnot json\n')
        with pytest.raises(ObservabilityError, match="not valid JSON"):
            read_snapshots(path)

    def test_non_snapshot_document_is_an_error(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text('{"events": 3}\n')
        with pytest.raises(ObservabilityError, match="not a metrics "
                                                     "snapshot"):
            read_snapshots(path)

    def test_empty_file_is_an_error(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text("")
        with pytest.raises(ObservabilityError, match="no metric snapshots"):
            read_snapshots(path)

    def test_out_of_range_index_is_an_error(self, tmp_path):
        path = tmp_path / "m.jsonl"
        JsonlSink(path).emit(_sample_registry().snapshot())
        with pytest.raises(ObservabilityError, match="out of range"):
            load_snapshot(path, index=3)


class TestPromRendering:
    def test_exposition_structure(self):
        text = render_prom(_sample_registry().snapshot())
        lines = text.splitlines()
        assert text.endswith("\n")
        assert "# TYPE events_total counter" in lines
        assert 'events_total{source="t.std"} 42' in lines
        assert "# TYPE buffered gauge" in lines
        assert "buffered 7" in lines
        assert "# TYPE latency_seconds histogram" in lines

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = render_prom(_sample_registry().snapshot())
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="1"} 2' in text
        assert 'latency_seconds_bucket{le="+Inf"} 3' in text
        assert "latency_seconds_sum 2.55" in text
        assert "latency_seconds_count 3" in text

    def test_type_line_emitted_once_per_name(self):
        registry = MetricsRegistry()
        registry.counter("c", a=1).inc()
        registry.counter("c", a=2).inc()
        text = render_prom(registry.snapshot())
        assert text.count("# TYPE c counter") == 1

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", path='a"b\\c\nd').inc()
        text = render_prom(registry.snapshot())
        assert r'path="a\"b\\c\nd"' in text

    def test_metric_names_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("weird-name.total").inc()
        assert "weird_name_total 1" in render_prom(registry.snapshot())

    def test_empty_snapshot_renders_empty(self):
        assert render_prom(MetricsRegistry().snapshot()) == ""


class TestStatsTable:
    def test_table_rows_and_span_tree(self):
        text = render_stats_table(_sample_registry().snapshot())
        assert "events_total{source=t.std}" in text
        assert "counter" in text and "gauge" in text
        assert "count=3" in text
        assert "spans:" in text
        lines = text.splitlines()
        [analyze_line] = [l for l in lines if l.startswith("  analyze")]
        [load_line] = [l for l in lines if l.startswith("    load")]
        assert analyze_line.endswith("s") and load_line.endswith("s")

    def test_empty_snapshot_says_so(self):
        assert "no metrics recorded" in \
            render_stats_table(MetricsRegistry().snapshot())
