"""End-to-end instrumentation: real workloads under an active registry
produce the catalogued metrics, and ``Session`` plumbs telemetry through
results and sinks."""

import json

import pytest

from repro.api import (
    AnalyzeConfig,
    GenerateConfig,
    ReportConfig,
    Session,
    StatsConfig,
    SweepConfig,
    TimelineConfig,
    WatchConfig,
)
from repro.errors import ReproError
from repro.obs import (
    METRIC_CATALOG,
    MetricsRegistry,
    use_registry,
    validate_chrome_trace,
)
from repro.trace import dump_trace


@pytest.fixture
def session():
    return Session()


@pytest.fixture
def trace_file(tmp_path, session):
    result = session.run(GenerateConfig(kind="racy", threads=3, events=60,
                                        seed=5))
    path = tmp_path / "trace.std"
    dump_trace(result.trace, path)
    return str(path)


def _value(snapshot, kind, name, **labels):
    wanted = {str(k): str(v) for k, v in labels.items()}
    for entry in snapshot[kind]:
        if entry["name"] == name and entry["labels"] == wanted:
            return entry
    raise AssertionError(f"{name}{wanted} not in snapshot {kind}: "
                         f"{[e['name'] for e in snapshot[kind]]}")


class TestStreamEngine:
    def test_feed_and_flush_metrics(self):
        from repro.stream.engine import StreamEngine
        from repro.trace.generators import racy_trace

        registry = MetricsRegistry()
        with use_registry(registry):
            engine = StreamEngine(["race-prediction"])
            for index, event in enumerate(racy_trace(num_threads=3,
                                                     events_per_thread=60,
                                                     seed=5)):
                engine.feed(event)
                if (index + 1) % 30 == 0:
                    engine.flush()
            engine.finish()
        snapshot = registry.snapshot()
        events = _value(snapshot, "counters", "stream_events_total")
        assert events["value"] == engine.stats.events == 180
        flushes = _value(snapshot, "counters", "stream_flushes_total")
        assert flushes["value"] == engine.stats.flushes
        findings = _value(snapshot, "counters", "stream_findings_total",
                          analysis="race-prediction")
        assert findings["value"] == engine.stats.emitted > 0
        buffered = _value(snapshot, "gauges", "stream_buffered_events")
        assert buffered["value"] == engine.buffered_events
        flush_seconds = _value(snapshot, "histograms",
                               "stream_flush_seconds",
                               analysis="race-prediction")
        assert flush_seconds["count"] == engine.stats.flushes

    def test_native_analysis_feed_latency(self):
        from repro.stream.engine import StreamEngine
        from repro.trace.event import Event, EventKind

        registry = MetricsRegistry()
        with use_registry(registry):
            engine = StreamEngine(["c11-races"])
            for index in range(10):
                engine.feed(Event(thread=0, index=index,
                                  kind=EventKind.READ, variable="x"))
        feed = _value(registry.snapshot(), "histograms",
                      "stream_feed_seconds", analysis="c11-races")
        assert feed["count"] == 10

    def test_bounded_window_eviction_counter(self):
        from repro.stream.engine import StreamEngine
        from repro.stream.window import TumblingWindow
        from repro.trace.event import Event, EventKind

        registry = MetricsRegistry()
        with use_registry(registry):
            engine = StreamEngine(["race-prediction"],
                                  window=TumblingWindow(10))
            for index in range(25):
                engine.feed(Event(thread=0, index=index,
                                  kind=EventKind.READ, variable="x"))
        evicted = _value(registry.snapshot(), "counters",
                         "stream_evicted_total")
        assert evicted["value"] == 20  # two full windows evicted

    def test_checkpoint_metrics(self, tmp_path):
        from repro.stream.checkpoint import save_checkpoint
        from repro.stream.engine import StreamEngine
        from repro.trace.event import Event, EventKind

        registry = MetricsRegistry()
        path = tmp_path / "ck.json"
        with use_registry(registry):
            engine = StreamEngine(["race-prediction"])
            engine.feed(Event(thread=0, index=0, kind=EventKind.READ,
                              variable="x"))
            save_checkpoint(engine, path)
        snapshot = registry.snapshot()
        assert _value(snapshot, "counters", "checkpoint_total")["value"] == 1
        size = _value(snapshot, "gauges", "checkpoint_bytes")["value"]
        assert size == path.stat().st_size > 0
        assert _value(snapshot, "histograms",
                      "checkpoint_seconds")["count"] == 1


class TestTraceIO:
    def test_load_and_write_counters_by_format(self, tmp_path):
        from repro.trace import read_trace, save_trace
        from repro.trace.generators import racy_trace

        trace = racy_trace(num_threads=2, events_per_thread=10, seed=1)
        std, stc = tmp_path / "t.std", tmp_path / "t.stc"
        registry = MetricsRegistry()
        with use_registry(registry):
            save_trace(trace, std)
            save_trace(trace, stc)
            read_trace(std)
            list(read_trace(stc))  # hydrate every lazy event
        snapshot = registry.snapshot()
        for fmt in ("std", "stc"):
            writes = _value(snapshot, "counters", "trace_writes_total",
                            format=fmt)
            assert writes["value"] == 1
            loads = _value(snapshot, "counters", "trace_loads_total",
                           format=fmt)
            assert loads["value"] == 1
            parse = _value(snapshot, "histograms", "trace_parse_seconds",
                           format=fmt)
            assert parse["count"] == 1
            size = _value(snapshot, "counters", "trace_parse_bytes_total",
                          format=fmt)
            assert size["value"] > 0
        hydrations = _value(snapshot, "counters", "stc_hydrations_total")
        assert hydrations["value"] == len(trace)


class TestAnalysisRun:
    def test_run_metrics_and_po_op_counts(self, session, trace_file):
        registry = MetricsRegistry()
        with use_registry(registry):
            result = session.analyze(
                AnalyzeConfig(analysis="race-prediction", trace=trace_file))
        raw = result.raw
        snapshot = registry.snapshot()
        run = _value(snapshot, "histograms", "analysis_run_seconds",
                     analysis="race-prediction",
                     backend="incremental-csst")
        assert run["count"] == 1
        assert run["sum"] == pytest.approx(raw.elapsed_seconds)
        findings = _value(snapshot, "counters", "analysis_findings_total",
                          analysis="race-prediction")
        assert findings["value"] == raw.finding_count
        inserts = _value(snapshot, "counters", "po_ops_total",
                         analysis="race-prediction", op="insert")
        assert inserts["value"] == raw.insert_count > 0


class TestSweepMetrics:
    def test_serial_sweep_records_jobs(self, session):
        registry = MetricsRegistry()
        with use_registry(registry):
            session.run(SweepConfig(suite="smoke",
                                    analyses="race-prediction",
                                    backends="vc,st"))
        snapshot = registry.snapshot()
        jobs = _value(snapshot, "counters", "sweep_jobs_total", status="ok")
        assert jobs["value"] == 2
        for backend in ("vc", "st"):
            seconds = _value(snapshot, "histograms", "sweep_job_seconds",
                             analysis="race-prediction", backend=backend)
            assert seconds["count"] == 1


class TestSessionPlumbing:
    def test_disabled_by_default_telemetry_is_none(self, session,
                                                   trace_file):
        result = session.run(AnalyzeConfig(analysis="race-prediction",
                                           trace=trace_file))
        assert result.telemetry is None
        # ... and deliberately absent from the parity-pinned document.
        assert "telemetry" not in result.to_dict()

    def test_metrics_path_enables_and_appends_snapshots(self, session,
                                                        trace_file,
                                                        tmp_path):
        path = tmp_path / "m.jsonl"
        for _ in range(2):
            result = session.run(AnalyzeConfig(analysis="race-prediction",
                                               trace=trace_file,
                                               metrics=str(path)))
        assert result.telemetry is not None
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            snapshot = json.loads(line)
            loads = _value(snapshot, "counters", "trace_loads_total",
                           format="std")
            assert loads["value"] > 0

    def test_root_span_is_named_after_the_command(self, session,
                                                  trace_file, tmp_path):
        result = session.run(WatchConfig(source=trace_file,
                                         analyses="race-prediction",
                                         flush_every=30,
                                         metrics=str(tmp_path / "m.jsonl")))
        assert [span["name"] for span in result.telemetry["spans"]] == \
            ["watch"]

    def test_session_level_registry_accumulates_across_runs(self,
                                                            trace_file):
        registry = MetricsRegistry()
        session = Session(metrics=registry)
        config = AnalyzeConfig(analysis="race-prediction", trace=trace_file)
        session.run(config)
        session.run(config)
        loads = _value(registry.snapshot(), "counters",
                       "trace_loads_total", format="std")
        assert loads["value"] == 2

    def test_emitted_metric_names_are_catalogued(self, session, trace_file,
                                                 tmp_path):
        result = session.run(AnalyzeConfig(analysis="race-prediction",
                                           trace=trace_file,
                                           metrics=str(tmp_path / "m.jsonl")))
        snapshot = result.telemetry
        names = {entry["name"]
                 for kind in ("counters", "gauges", "histograms")
                 for entry in snapshot[kind]}
        assert names <= set(METRIC_CATALOG)


class TestStatsAndReport:
    def test_stats_renders_every_format(self, session, trace_file,
                                        tmp_path):
        path = tmp_path / "m.jsonl"
        session.run(AnalyzeConfig(analysis="race-prediction",
                                  trace=trace_file, metrics=str(path)))
        for fmt in StatsConfig.FORMATS:
            result = session.run(StatsConfig(source=str(path), format=fmt))
            assert result.snapshot_count == 1
            assert result.exit_code == 0
        assert "trace_loads_total" in result.to_table()
        assert "# TYPE trace_loads_total counter" in result.to_prom()
        assert json.loads(result.to_json())["counters"]

    def test_stats_bad_index_is_a_clean_error(self, session, trace_file,
                                              tmp_path):
        path = tmp_path / "m.jsonl"
        session.run(AnalyzeConfig(analysis="race-prediction",
                                  trace=trace_file, metrics=str(path)))
        with pytest.raises(ReproError, match="out of range"):
            session.run(StatsConfig(source=str(path), index=7))

    def test_report_trend_writes_the_tables(self, session, tmp_path):
        document = {"modes": {"quick": {
            "python": "3", "repeats": 1,
            "results": {"fig11/csst": {"seconds": 0.1}},
        }}}
        (tmp_path / "BENCH_baseline.json").write_text(json.dumps(document))
        result = session.run(ReportConfig(dir=str(tmp_path),
                                          out=str(tmp_path / "tables")))
        assert result.exit_code == 0
        assert "fig11/csst" in \
            (tmp_path / "tables" / "perf_trend.md").read_text()
        assert "perf_trend.md" in result.to_table()


class TestTimeline:
    def test_timeline_flag_writes_a_valid_trace(self, session, trace_file,
                                                tmp_path):
        timeline = tmp_path / "t.json"
        result = session.run(WatchConfig(source=trace_file,
                                         analyses="race-prediction",
                                         flush_every=30,
                                         timeline=str(timeline)))
        assert result.exit_code == 0
        document = json.loads(timeline.read_text())
        assert validate_chrome_trace(document) == []
        names = {event["name"] for event in document["traceEvents"]
                 if event["ph"] == "X"}
        assert {"watch", "stream_flush", "flush_analysis"} <= names

    def test_timeline_command_reproduces_the_flag_output(self, session,
                                                         trace_file,
                                                         tmp_path):
        # Acceptance: ``repro timeline run.jsonl`` renders byte-for-byte
        # the file ``--timeline`` wrote from the live registry.
        metrics = tmp_path / "m.jsonl"
        live = tmp_path / "live.json"
        session.run(WatchConfig(source=trace_file,
                                analyses="race-prediction",
                                metrics=str(metrics), timeline=str(live)))
        replayed = tmp_path / "replayed.json"
        result = session.run(TimelineConfig(source=str(metrics),
                                            out=str(replayed)))
        assert result.exit_code == 0
        assert replayed.read_bytes() == live.read_bytes()
        assert result.out_path == str(replayed)
        assert "lanes" in result.to_table()
        # to_json is the file's text (sans trailing newline), verbatim.
        assert result.to_json() + "\n" == live.read_text()

    def test_timeline_to_stdout_renders_inline(self, session, trace_file,
                                               tmp_path):
        metrics = tmp_path / "m.jsonl"
        session.run(AnalyzeConfig(analysis="race-prediction",
                                  trace=trace_file, metrics=str(metrics)))
        result = session.run(TimelineConfig(source=str(metrics)))
        assert result.out_path is None
        document = json.loads(result.to_table())
        assert validate_chrome_trace(document) == []

    def test_timeline_bad_index_is_a_clean_error(self, session, trace_file,
                                                 tmp_path):
        metrics = tmp_path / "m.jsonl"
        session.run(AnalyzeConfig(analysis="race-prediction",
                                  trace=trace_file, metrics=str(metrics)))
        with pytest.raises(ReproError, match="out of range"):
            session.run(TimelineConfig(source=str(metrics), index=7))

    def test_stats_chrome_format_matches_timeline_rendering(self, session,
                                                            trace_file,
                                                            tmp_path):
        metrics = tmp_path / "m.jsonl"
        session.run(AnalyzeConfig(analysis="race-prediction",
                                  trace=trace_file, metrics=str(metrics)))
        stats = session.run(StatsConfig(source=str(metrics),
                                        format="chrome"))
        timeline = session.run(TimelineConfig(source=str(metrics)))
        assert stats.to_chrome() == timeline.to_json()
        assert validate_chrome_trace(json.loads(stats.to_chrome())) == []
