"""Thread-safety: concurrent updates never lose counts, and get-or-create
races resolve to one instrument."""

import threading

from repro.obs import MetricsRegistry

THREADS = 8
ITERATIONS = 5_000


def _run_threads(work):
    threads = [threading.Thread(target=work, args=(index,))
               for index in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestConcurrentUpdates:
    def test_counter_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")

        def work(index):
            for _ in range(ITERATIONS):
                counter.inc()

        _run_threads(work)
        assert counter.value == THREADS * ITERATIONS

    def test_histogram_observations_are_not_lost(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(0.5, 1.5))

        def work(index):
            for _ in range(ITERATIONS):
                histogram.observe(index % 2 + 0.25)  # 0.25 or 1.25

        _run_threads(work)
        assert histogram.count == THREADS * ITERATIONS
        counts = histogram.describe()["counts"]
        assert sum(counts) == THREADS * ITERATIONS
        assert counts[2] == 0  # nothing above the last bound

    def test_gauge_last_write_wins_without_corruption(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")

        def work(index):
            for _ in range(ITERATIONS):
                gauge.set(index)

        _run_threads(work)
        assert gauge.value in range(THREADS)


class TestConcurrentCreation:
    def test_get_or_create_race_yields_one_instrument(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(THREADS)
        seen = []
        lock = threading.Lock()

        def work(index):
            barrier.wait()
            counter = registry.counter("raced", worker=index % 2)
            counter.inc()
            with lock:
                seen.append(counter)

        _run_threads(work)
        assert len({id(counter) for counter in seen}) == 2  # one per label
        total = sum(instrument.value
                    for instrument in registry.instruments())
        assert total == THREADS

    def test_concurrent_spans_and_snapshots_do_not_crash(self):
        registry = MetricsRegistry()
        errors = []

        def work(index):
            try:
                for _ in range(200):
                    with registry.span("load", worker=index):
                        registry.counter("c").inc()
                    registry.snapshot()
            except Exception as error:  # pragma: no cover
                errors.append(error)

        _run_threads(work)
        assert not errors
        assert registry.counter("c").value == THREADS * 200
