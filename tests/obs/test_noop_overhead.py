"""Disabled-mode cost: telemetry off must not allocate on hot paths.

The claims under test (see docs/observability.md):

* the no-op instruments are shared singletons whose methods allocate
  nothing, and
* a StreamEngine run with telemetry disabled performs **zero**
  allocations attributable to :mod:`repro.obs` -- the entire disabled
  cost is one ``is None`` check per event.

Both are proven with ``tracemalloc`` filtered to the ``repro/obs``
source files, so the assertions are about *where* allocations happen,
not about noisy absolute byte counts.
"""

import os
import tracemalloc

import repro.obs.metrics as obs_metrics
from repro.obs import (
    NULL_CONTEXT,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
)

#: Filter matching every allocation made inside the obs package.
OBS_FILTER = tracemalloc.Filter(
    True, os.path.join(os.path.dirname(obs_metrics.__file__), "*"))


def _obs_allocations(callable_):
    """Bytes allocated inside repro/obs by ``callable_()``."""
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        callable_()
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    stats = after.filter_traces([OBS_FILTER]).compare_to(
        before.filter_traces([OBS_FILTER]), "filename")
    return sum(stat.size_diff for stat in stats)


class TestNullInstruments:
    def test_null_operations_allocate_nothing(self):
        def hammer():
            for _ in range(10_000):
                NULL_COUNTER.inc()
                NULL_GAUGE.set(1.0)
                NULL_HISTOGRAM.observe(0.5)
                with NULL_HISTOGRAM.time():
                    pass
                with NULL_REGISTRY.span("s"):
                    pass

        assert _obs_allocations(hammer) == 0

    def test_null_registry_lookups_return_singletons(self):
        # Instrument lookup through the null registry hands back the
        # shared objects -- nothing per-call to collect.
        for _ in range(3):
            assert NULL_REGISTRY.counter("c", analysis="a") is NULL_COUNTER
            assert NULL_REGISTRY.histogram("h") is NULL_HISTOGRAM
            assert NULL_REGISTRY.span("s", x=1) is NULL_CONTEXT


class TestDisabledEngine:
    def test_100k_event_run_never_touches_obs(self):
        from repro.stream.engine import StreamEngine
        from repro.trace.event import Event, EventKind

        assert obs_metrics.ACTIVE is None  # telemetry off

        variables = [f"v{i}" for i in range(64)]
        events = [Event(thread=i % 4, index=i // 4, kind=EventKind.READ,
                        variable=variables[i % 64])
                  for i in range(100_000)]
        engine = StreamEngine(["c11-races"])
        assert engine.metrics is None  # bound once, at construction

        def run():
            for event in events:
                engine.feed(event)
            engine.flush()

        assert _obs_allocations(run) == 0
        assert engine.stats.events == 100_000

    def test_disabled_engine_binds_no_instruments(self):
        from repro.stream.engine import StreamEngine

        engine = StreamEngine(["race-prediction"])
        assert engine.metrics is None
        for attachment in engine._attachments:
            assert attachment.m_feed is None
            assert attachment.m_flush is None
            assert attachment.m_findings is None


class TestDisabledSweep:
    def test_pooled_sweep_with_telemetry_off_is_free(self):
        """A pooled sweep with no active registry must neither allocate
        from repro.obs on the collector side nor attach per-job telemetry
        payloads to the records it ships back."""
        from repro.runner.corpus import Suite, TraceSpec, grid
        from repro.runner.executor import plan_jobs, run_jobs

        assert obs_metrics.ACTIVE is None  # telemetry off

        suite = Suite(name="tiny", description="overhead probe",
                      specs=grid(["racy"], [2], [16]))
        jobs = plan_jobs(suite, backends=["vc", "st"])
        holder = {}

        def run():
            holder["result"] = run_jobs(jobs, workers=2, suite_name="tiny")

        assert _obs_allocations(run) == 0
        result = holder["result"]
        assert len(result.records) == len(jobs) and not result.failures()
        # No trace context was minted, and no snapshot rode along: the
        # record on the wire is exactly the enabled-mode record minus
        # telemetry (``to_dict`` never carries the field either way).
        for record in result.records:
            assert record.telemetry is None
            assert "telemetry" not in record.to_dict()
        for job in jobs:
            assert job.trace_id is None and job.span_id is None
