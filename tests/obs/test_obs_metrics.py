"""MetricsRegistry and instruments: identity, thread-safety contracts,
conflicts, snapshots, and the active-registry switch."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    DEFAULT_TIME_BUCKETS,
    METRIC_CATALOG,
    NULL_CONTEXT,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    SNAPSHOT_VERSION,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)


class TestCounter:
    def test_inc_accumulates(self):
        counter = MetricsRegistry().counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_inc_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ObservabilityError, match="cannot decrease"):
            counter.inc(-1)

    def test_label_sets_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("c", analysis="a").inc()
        registry.counter("c", analysis="b").inc(2)
        assert registry.counter("c", analysis="a").value == 1
        assert registry.counter("c", analysis="b").value == 2

    def test_get_or_create_returns_the_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("c", x=1) is registry.counter("c", x=1)
        # Label order must not matter.
        assert registry.counter("c", a=1, b=2) is \
            registry.counter("c", b=2, a=1)


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7


class TestHistogram:
    def test_observations_land_in_the_right_bucket(self):
        histogram = MetricsRegistry().histogram(
            "h", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.describe()["counts"] == [1, 2, 1, 1]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(56.05)

    def test_boundary_value_falls_in_its_le_bucket(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        histogram.observe(1.0)  # le="1.0" means <= 1.0
        assert histogram.describe()["counts"] == [1, 0, 0]

    def test_default_buckets(self):
        histogram = MetricsRegistry().histogram("h")
        assert histogram.bounds == DEFAULT_TIME_BUCKETS

    def test_timer_observes_elapsed_seconds(self):
        histogram = MetricsRegistry().histogram("h")
        with histogram.time():
            pass
        assert histogram.count == 1
        assert 0 < histogram.sum < 1.0

    def test_timer_observes_on_exception_too(self):
        histogram = MetricsRegistry().histogram("h")
        with pytest.raises(RuntimeError):
            with histogram.time():
                raise RuntimeError("boom")
        assert histogram.count == 1

    def test_unsorted_bounds_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError, match="strictly increasing"):
            registry.histogram("h", buckets=(1.0, 0.5))
        with pytest.raises(ObservabilityError, match="strictly increasing"):
            registry.histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ObservabilityError, match="strictly increasing"):
            registry.histogram("h", buckets=())


class TestConflicts:
    def test_type_morphing_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ObservabilityError, match="already registered"):
            registry.gauge("m")
        with pytest.raises(ObservabilityError, match="already registered"):
            registry.histogram("m")

    def test_histogram_bounds_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ObservabilityError, match="bounds"):
            registry.histogram("h", buckets=(1.0, 3.0))
        # Same bounds: fine, same object.
        assert registry.histogram("h", buckets=(1.0, 2.0)) is \
            registry.histogram("h", buckets=(1.0, 2.0))


class TestSnapshot:
    def test_document_shape_and_jsonability(self):
        registry = MetricsRegistry()
        registry.counter("c", k="v").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        with registry.span("work"):
            pass
        snapshot = registry.snapshot()
        assert snapshot["version"] == SNAPSHOT_VERSION
        assert snapshot["ts_ns"] > 0
        json.dumps(snapshot)
        [counter] = snapshot["counters"]
        assert counter == {"name": "c", "labels": {"k": "v"}, "value": 3}
        [gauge] = snapshot["gauges"]
        assert gauge["value"] == 1.5
        # The span fed the span_seconds histogram plus the span log.
        names = {entry["name"] for entry in snapshot["histograms"]}
        assert names == {"h", "span_seconds"}
        assert [span["name"] for span in snapshot["spans"]] == ["work"]

    def test_instruments_sorted_by_name_then_labels(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a", z=2).inc()
        registry.counter("a", z=1).inc()
        described = [instrument.describe()
                     for instrument in registry.instruments()]
        assert [(d["name"], d["labels"].get("z")) for d in described] == \
            [("a", "1"), ("a", "2"), ("b", None)]


class TestActiveRegistry:
    def test_disabled_by_default(self):
        from repro.obs import metrics

        assert metrics.ACTIVE is None
        assert get_registry() is NULL_REGISTRY

    def test_use_registry_installs_and_restores(self):
        from repro.obs import metrics

        registry = MetricsRegistry()
        with use_registry(registry) as active:
            assert active is registry
            assert metrics.ACTIVE is registry
            assert get_registry() is registry
        assert metrics.ACTIVE is None

    def test_use_registry_nests(self):
        outer, inner = MetricsRegistry(), MetricsRegistry()
        with use_registry(outer):
            with use_registry(inner):
                assert get_registry() is inner
            assert get_registry() is outer

    def test_set_registry_returns_previous(self):
        registry = MetricsRegistry()
        assert set_registry(registry) is None
        try:
            assert get_registry() is registry
        finally:
            assert set_registry(None) is registry

    def test_installing_null_registry_means_disabled(self):
        from repro.obs import metrics

        with use_registry(NULL_REGISTRY):
            assert metrics.ACTIVE is None  # hot paths stay on the fast path
            assert get_registry() is NULL_REGISTRY


class TestNullRegistry:
    def test_hands_out_shared_singletons(self):
        assert NULL_REGISTRY.counter("c", a=1) is NULL_COUNTER
        assert NULL_REGISTRY.gauge("g") is NULL_GAUGE
        assert NULL_REGISTRY.histogram("h", buckets=(1.0,)) is NULL_HISTOGRAM
        assert NULL_REGISTRY.span("s", k="v") is NULL_CONTEXT
        assert NULL_HISTOGRAM.time() is NULL_CONTEXT

    def test_noop_operations_record_nothing(self):
        NULL_COUNTER.inc(5)
        NULL_GAUGE.set(3)
        NULL_HISTOGRAM.observe(1.0)
        with NULL_REGISTRY.span("s"):
            pass
        assert NULL_COUNTER.value == 0
        assert NULL_REGISTRY.current_span() is None
        snapshot = NULL_REGISTRY.snapshot()
        assert snapshot["counters"] == []
        assert snapshot["spans"] == []
        assert not NULL_REGISTRY.enabled
        assert MetricsRegistry().enabled


class TestCatalog:
    def test_catalog_entries_are_well_formed(self):
        for name, info in METRIC_CATALOG.items():
            assert info["type"] in ("counter", "gauge", "histogram"), name
            assert info["help"], name

    def test_span_seconds_is_catalogued(self):
        assert METRIC_CATALOG["span_seconds"]["type"] == "histogram"
