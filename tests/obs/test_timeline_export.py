"""Chrome trace-event export: schema, determinism, clock domains.

The exporter is pure (snapshot dict in, document out), so these tests
feed hand-built snapshots with known anchors and assert exact event
placement -- no live registries or timing slop involved.  Live
end-to-end coverage (sweep --timeline files validating) lives in
tests/runner/test_tracing.py and the CI timeline-smoke job.
"""

import json

import pytest

from repro.obs import (
    CHROME_REQUIRED_KEYS,
    METRICS_LANE_PID,
    MetricsRegistry,
    render_chrome_json,
    render_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)

#: Microsecond origin large enough that perf offsets never go negative.
WALL = 1_700_000_000_000_000_000  # ns


def snapshot(spans=(), counters=(), ts_ns=WALL + 10_000_000):
    return {"ts_ns": ts_ns, "counters": list(counters), "gauges": [],
            "histograms": [], "spans": list(spans)}


def span(name, start_ns, duration_ns, *, wall_start_ns=None, pid=None,
         tid=None, children=(), status=None, error_type=None, labels=None):
    node = {"name": name, "labels": labels or {}, "start_ns": start_ns,
            "duration_ns": duration_ns, "children": list(children)}
    if wall_start_ns is not None:
        node["wall_start_ns"] = wall_start_ns
    if pid is not None:
        node["pid"] = pid
    if tid is not None:
        node["tid"] = tid
    if status is not None:
        node["status"] = status
    if error_type is not None:
        node["error_type"] = error_type
    return node


def x_events(document):
    return [event for event in document["traceEvents"]
            if event["ph"] == "X"]


class TestSpanPlacement:
    def test_root_anchor_maps_perf_offsets_onto_wall_clock(self):
        child = span("child", start_ns=5_000_000, duration_ns=2_000_000)
        root = span("root", start_ns=1_000_000, duration_ns=9_000_000,
                    wall_start_ns=WALL, pid=41, tid=7, children=[child])
        document = render_chrome_trace(snapshot(spans=[root]))
        by_name = {event["name"]: event for event in x_events(document)}
        assert by_name["root"]["ts"] == WALL // 1000
        assert by_name["root"]["dur"] == 9_000
        # The child started 4ms after the root's perf reading, so it lands
        # 4ms after the root's wall anchor -- on the same pid/tid lane.
        assert by_name["child"]["ts"] == WALL // 1000 + 4_000
        assert (by_name["child"]["pid"], by_name["child"]["tid"]) == (41, 7)

    def test_grafted_child_with_anchor_opens_its_own_lane(self):
        # A worker tree merged under the collector's sweep span: its
        # start_ns is from a *different* perf clock, so only its own
        # wall anchor may place it.
        worker = span("sweep_job", start_ns=999_000_000_000,
                      duration_ns=3_000_000, wall_start_ns=WALL + 2_000_000,
                      pid=77, tid=1)
        root = span("sweep", start_ns=0, duration_ns=8_000_000,
                    wall_start_ns=WALL, pid=41, tid=7, children=[worker])
        document = render_chrome_trace(snapshot(spans=[root]))
        by_name = {event["name"]: event for event in x_events(document)}
        assert by_name["sweep_job"]["pid"] == 77
        assert by_name["sweep_job"]["ts"] == (WALL + 2_000_000) // 1000
        # Both processes get named lanes.
        lanes = {event["pid"]: event["args"]["name"]
                 for event in document["traceEvents"] if event["ph"] == "M"}
        assert lanes == {41: "process 41", 77: "process 77"}

    def test_unanchored_root_falls_back_to_snapshot_time(self):
        root = span("legacy", start_ns=4_000_000, duration_ns=3_000_000)
        document = render_chrome_trace(
            snapshot(spans=[root], ts_ns=WALL + 10_000_000))
        event, = x_events(document)
        # Ended at snapshot time: ts = (ts_ns - duration) in microseconds.
        assert event["ts"] == (WALL + 7_000_000) // 1000
        assert validate_chrome_trace(document) == []

    def test_error_spans_are_flagged_and_colored(self):
        root = span("sweep_job", start_ns=0, duration_ns=1_000_000,
                    wall_start_ns=WALL, pid=3, tid=3, status="error",
                    error_type="timeout", labels={"backend": "vc"})
        event, = x_events(render_chrome_trace(snapshot(spans=[root])))
        assert event["cname"] == "terrible"
        assert event["args"]["status"] == "error"
        assert event["args"]["error_type"] == "timeout"
        assert event["args"]["backend"] == "vc"

    def test_ok_spans_carry_no_status_noise(self):
        root = span("ok", start_ns=0, duration_ns=1_000,
                    wall_start_ns=WALL, pid=3, tid=3)
        event, = x_events(render_chrome_trace(snapshot(spans=[root])))
        assert "cname" not in event and "args" not in event


class TestCounterLane:
    def test_counters_land_on_the_metrics_pseudo_process(self):
        counters = [
            {"name": "events_total", "labels": {}, "value": 42},
            {"name": "findings_total", "labels": {"analysis": "races",
                                                  "backend": "vc"},
             "value": 2},
        ]
        document = render_chrome_trace(snapshot(counters=counters))
        counter_events = [event for event in document["traceEvents"]
                          if event["ph"] == "C"]
        assert {event["pid"] for event in counter_events} == \
            {METRICS_LANE_PID}
        names = {event["name"]: event["args"]["value"]
                 for event in counter_events}
        assert names == {
            "events_total": 42,
            "findings_total{analysis=races,backend=vc}": 2,
        }
        lane_names = [event["args"]["name"]
                      for event in document["traceEvents"]
                      if event["ph"] == "M"]
        assert lane_names == ["metrics"]


class TestDeterminism:
    def _rich_snapshot(self):
        worker = span("sweep_job", start_ns=5, duration_ns=2_000_000,
                      wall_start_ns=WALL + 1_000_000, pid=88, tid=2,
                      status="error", error_type="ValueError")
        root = span("sweep", start_ns=0, duration_ns=9_000_000,
                    wall_start_ns=WALL, pid=41, tid=7, children=[worker],
                    labels={"suite": "smoke"})
        return snapshot(spans=[root],
                        counters=[{"name": "jobs_total", "labels": {},
                                   "value": 3}])

    def test_render_is_byte_identical_across_json_round_trip(self):
        original = self._rich_snapshot()
        revived = json.loads(json.dumps(original))
        assert render_chrome_json(original) == render_chrome_json(revived)

    def test_canonical_text_parses_back_to_the_document(self):
        document = render_chrome_trace(self._rich_snapshot())
        text = render_chrome_json(self._rich_snapshot())
        assert json.loads(text) == document
        assert validate_chrome_trace(document) == []

    def test_write_chrome_trace_emits_canonical_text(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self._rich_snapshot(), path)
        text = path.read_text(encoding="utf-8")
        assert text == render_chrome_json(self._rich_snapshot()) + "\n"

    def test_live_registry_snapshot_renders_valid(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total").inc(2)
        with registry.span("sweep", suite="smoke"):
            with registry.span("sweep_job", backend="vc"):
                pass
        document = render_chrome_trace(registry.snapshot())
        assert validate_chrome_trace(document) == []
        assert {event["name"] for event in x_events(document)} == \
            {"sweep", "sweep_job"}


class TestValidator:
    def test_rejects_non_document_shapes(self):
        assert validate_chrome_trace([1, 2]) == \
            ["document is not a JSON object"]
        assert validate_chrome_trace({"events": []}) == \
            ["document has no traceEvents array"]

    @pytest.mark.parametrize("key", CHROME_REQUIRED_KEYS)
    def test_flags_missing_required_keys(self, key):
        event = {"ph": "X", "ts": 1, "pid": 1, "tid": 1, "name": "s",
                 "dur": 1}
        del event[key]
        problems = validate_chrome_trace({"traceEvents": [event]})
        assert problems and key in problems[0]

    def test_flags_backwards_timestamps_within_a_lane(self):
        events = [
            {"ph": "X", "ts": 10, "dur": 1, "pid": 1, "tid": 1, "name": "a"},
            {"ph": "X", "ts": 5, "dur": 1, "pid": 1, "tid": 1, "name": "b"},
        ]
        problems = validate_chrome_trace({"traceEvents": events})
        assert problems == ["event 1: ts 5 goes backwards in lane "
                            "pid=1 tid=1 (previous 10)"]
        # The same timestamps on different lanes are fine.
        events[1]["tid"] = 2
        assert validate_chrome_trace({"traceEvents": events}) == []

    def test_flags_negative_and_non_numeric_ts(self):
        base = {"ph": "X", "dur": 1, "pid": 1, "tid": 1, "name": "s"}
        assert validate_chrome_trace(
            {"traceEvents": [dict(base, ts=-4)]})
        assert validate_chrome_trace(
            {"traceEvents": [dict(base, ts="noon")]})

    def test_flags_complete_event_without_dur(self):
        event = {"ph": "X", "ts": 1, "pid": 1, "tid": 1, "name": "s"}
        assert validate_chrome_trace({"traceEvents": [event]}) == \
            ["event 0: complete event without dur"]

    def test_flags_non_object_events(self):
        assert validate_chrome_trace({"traceEvents": ["oops"]}) == \
            ["event 0: not an object"]
