"""Span trees: nesting, the bounded root log, per-thread independence."""

import threading

from repro.obs import MAX_RECORDED_SPANS, MetricsRegistry


class TestNesting:
    def test_children_nest_under_the_open_span(self):
        registry = MetricsRegistry()
        with registry.span("root") as root:
            with registry.span("load", format="stc"):
                pass
            with registry.span("run"):
                with registry.span("flush"):
                    pass
        assert [child.name for child in root.children] == ["load", "run"]
        assert [child.name for child in root.children[1].children] == \
            ["flush"]
        assert root.duration_ns >= sum(child.duration_ns
                                       for child in root.children)

    def test_current_span_tracks_the_stack(self):
        registry = MetricsRegistry()
        assert registry.current_span() is None
        with registry.span("outer") as outer:
            assert registry.current_span() is outer
            with registry.span("inner") as inner:
                assert registry.current_span() is inner
            assert registry.current_span() is outer
        assert registry.current_span() is None

    def test_labels_are_stringified(self):
        registry = MetricsRegistry()
        with registry.span("s", jobs=4) as span:
            pass
        assert span.labels == {"jobs": "4"}

    def test_to_dict_carries_the_tree(self):
        registry = MetricsRegistry()
        with registry.span("root") as root:
            with registry.span("child"):
                pass
        document = root.to_dict()
        assert document["name"] == "root"
        assert document["duration_ns"] > 0
        assert [c["name"] for c in document["children"]] == ["child"]
        # Leaves omit the children key entirely (compact snapshots).
        assert "children" not in document["children"][0]


class TestRecording:
    def test_only_roots_land_on_the_span_log(self):
        registry = MetricsRegistry()
        with registry.span("root"):
            with registry.span("child"):
                pass
        assert [span["name"] for span in registry.spans] == ["root"]

    def test_every_finished_span_feeds_span_seconds(self):
        registry = MetricsRegistry()
        with registry.span("root"):
            with registry.span("child"):
                pass
            with registry.span("child"):
                pass
        names = {}
        for instrument in registry.instruments():
            if instrument.name == "span_seconds":
                names[dict(instrument.labels)["name"]] = instrument.count
        assert names == {"root": 1, "child": 2}

    def test_root_log_is_bounded(self):
        registry = MetricsRegistry()
        for index in range(MAX_RECORDED_SPANS + 10):
            with registry.span(f"s{index}"):
                pass
        spans = registry.spans
        assert len(spans) == MAX_RECORDED_SPANS
        assert spans[0]["name"] == "s10"  # oldest were dropped
        assert spans[-1]["name"] == f"s{MAX_RECORDED_SPANS + 9}"

    def test_out_of_order_exit_unwinds_instead_of_corrupting(self):
        registry = MetricsRegistry()
        outer = registry.span("outer")
        inner = registry.span("inner")
        outer.__enter__()
        inner.__enter__()
        # Close the outer span while the inner is still open (a leak across
        # a generator boundary); the stack unwinds to it.
        outer.__exit__(None, None, None)
        assert registry.current_span() is None
        assert [span["name"] for span in registry.spans] == ["outer"]
        # The unwound inner span was *finished*, not dropped: it has a
        # stamped duration, hangs off the outer tree, and fed the
        # ``span_seconds`` histogram like any cleanly closed span.
        assert inner.duration_ns >= 0
        assert [child["name"]
                for child in registry.spans[0]["children"]] == ["inner"]
        observed = {entry["labels"]["name"]: entry["count"]
                    for entry in registry.snapshot()["histograms"]
                    if entry["name"] == "span_seconds"}
        assert observed == {"outer": 1, "inner": 1}
        # The thread's stack still works afterwards.
        with registry.span("next"):
            pass
        assert [span["name"] for span in registry.spans] == ["outer", "next"]


class TestThreads:
    def test_threads_build_independent_trees(self):
        registry = MetricsRegistry()
        errors = []

        def work(index):
            try:
                with registry.span(f"thread-{index}") as root:
                    with registry.span("step"):
                        pass
                assert registry.current_span() is None
                assert [c.name for c in root.children] == ["step"]
            except AssertionError as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        roots = sorted(span["name"] for span in registry.spans)
        assert roots == sorted(f"thread-{i}" for i in range(8))
