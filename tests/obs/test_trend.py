"""Perf trend reports: run collection, delta math, markdown rendering,
and deterministic regeneration."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import build_trend, collect_runs, render_markdown, write_trend
from repro.obs.trend import BASELINE_LABEL


def _perf_document(mode, seconds, speedups=None, repeats=3):
    return {
        "version": 1,
        "mode": mode,
        "python": "3.12.0",
        "repeats": repeats,
        "results": {name: {"seconds": value, "runs": [value]}
                    for name, value in seconds.items()},
        "speedups": speedups or {},
    }


@pytest.fixture
def bench_dir(tmp_path):
    baseline = {
        "modes": {
            "quick": _perf_document("quick", {"fig11/csst": 0.10,
                                              "sst-ops/flat": 0.02},
                                    speedups={"fig11 flat-over-object": 2.0}),
            "full": _perf_document("full", {"fig11/csst": 1.0}),
        },
    }
    (tmp_path / "BENCH_baseline.json").write_text(json.dumps(baseline))
    (tmp_path / "BENCH_2026-08-01.json").write_text(json.dumps(
        _perf_document("quick", {"fig11/csst": 0.12, "sst-ops/flat": 0.02},
                       speedups={"fig11 flat-over-object": 2.1})))
    (tmp_path / "BENCH_2026-08-01-1.json").write_text(json.dumps(
        _perf_document("quick", {"fig11/csst": 0.30})))
    (tmp_path / "BENCH_2026-08-02.json").write_text(json.dumps(
        _perf_document("full", {"fig11/csst": 0.4, "new-case": 9.0})))
    return tmp_path


class TestCollectRuns:
    def test_baseline_first_then_dated_by_filename(self, bench_dir):
        runs = collect_runs(bench_dir)
        assert set(runs) == {"quick", "full"}
        assert [run["label"] for run in runs["quick"]] == \
            [BASELINE_LABEL, "2026-08-01", "2026-08-01-1"]
        assert [run["label"] for run in runs["full"]] == \
            [BASELINE_LABEL, "2026-08-02"]

    def test_dated_runs_without_baseline(self, bench_dir):
        (bench_dir / "BENCH_baseline.json").unlink()
        runs = collect_runs(bench_dir)
        assert [run["label"] for run in runs["quick"]] == \
            ["2026-08-01", "2026-08-01-1"]

    def test_empty_directory_is_an_error(self, tmp_path):
        with pytest.raises(ObservabilityError, match="no BENCH_"):
            collect_runs(tmp_path)

    def test_non_perf_document_is_an_error(self, bench_dir):
        (bench_dir / "BENCH_2026-08-03.json").write_text('{"mode": "full"}')
        with pytest.raises(ObservabilityError, match="no 'results'"):
            collect_runs(bench_dir)

    def test_invalid_json_is_an_error(self, bench_dir):
        (bench_dir / "BENCH_2026-08-03.json").write_text("{")
        with pytest.raises(ObservabilityError, match="not valid JSON"):
            collect_runs(bench_dir)


class TestBuildTrend:
    def test_seconds_series_and_deltas(self, bench_dir):
        trend = build_trend(collect_runs(bench_dir))
        quick = trend["modes"]["quick"]["cases"]["fig11/csst"]
        assert quick["seconds"] == [0.10, 0.12, 0.30]
        assert quick["baseline_seconds"] == 0.10
        assert quick["latest_seconds"] == 0.30
        assert quick["delta_vs_baseline"] == pytest.approx(3.0)

    def test_missing_case_in_a_run_is_none_not_dropped(self, bench_dir):
        trend = build_trend(collect_runs(bench_dir))
        flat = trend["modes"]["quick"]["cases"]["sst-ops/flat"]
        assert flat["seconds"] == [0.02, 0.02, None]
        # Latest skips the None back to the last recorded value.
        assert flat["latest_seconds"] == 0.02

    def test_case_absent_from_baseline_has_no_delta(self, bench_dir):
        case = build_trend(collect_runs(bench_dir)) \
            ["modes"]["full"]["cases"]["new-case"]
        assert case["baseline_seconds"] is None
        assert case["delta_vs_baseline"] is None

    def test_speedup_series(self, bench_dir):
        speedups = build_trend(collect_runs(bench_dir)) \
            ["modes"]["quick"]["speedups"]
        assert speedups["fig11 flat-over-object"] == [2.0, 2.1, None]

    def test_document_is_jsonable(self, bench_dir):
        json.dumps(build_trend(collect_runs(bench_dir)))


class TestMarkdown:
    def test_every_case_and_mode_appears(self, bench_dir):
        text = render_markdown(build_trend(collect_runs(bench_dir)))
        assert "## mode: quick" in text and "## mode: full" in text
        for case in ("fig11/csst", "sst-ops/flat", "new-case"):
            assert case in text
        assert "`BENCH_baseline.json`" in text

    def test_regression_and_speedup_markers(self, bench_dir):
        text = render_markdown(build_trend(collect_runs(bench_dir)))
        assert "3.00x (regression)" in text   # quick fig11/csst 0.30/0.10
        assert "0.40x (speedup)" in text      # full fig11/csst 0.4/1.0
        assert "2.10x" in text                # speedup-ratio table


class TestWriteTrend:
    def test_writes_markdown_and_json_twin(self, bench_dir, tmp_path):
        out = tmp_path / "tables"
        document, md_path, json_path = write_trend(bench_dir, out)
        assert md_path.endswith("perf_trend.md")
        assert json.loads((out / "perf_trend.json").read_text()) == document
        assert (out / "perf_trend.md").read_text() == \
            render_markdown(document)

    def test_regeneration_is_byte_identical(self, bench_dir, tmp_path):
        out = tmp_path / "tables"
        write_trend(bench_dir, out)
        first_md = (out / "perf_trend.md").read_bytes()
        first_json = (out / "perf_trend.json").read_bytes()
        write_trend(bench_dir, out)
        assert (out / "perf_trend.md").read_bytes() == first_md
        assert (out / "perf_trend.json").read_bytes() == first_json

    def test_basename_is_respected(self, bench_dir, tmp_path):
        _, md_path, json_path = write_trend(bench_dir, tmp_path / "t",
                                            basename="history")
        assert md_path.endswith("history.md")
        assert json_path.endswith("history.json")


class TestAgainstCommittedBaseline:
    def test_repo_baseline_renders_every_case(self, tmp_path):
        # The committed two-mode baseline must always produce a complete
        # report (the CI obs-smoke job regenerates it as an artifact).
        import shutil
        from pathlib import Path

        repo_baseline = Path(__file__).resolve().parents[2] \
            / "BENCH_baseline.json"
        shutil.copy(repo_baseline, tmp_path / "BENCH_baseline.json")
        document, _, _ = write_trend(tmp_path, tmp_path / "out")
        baseline = json.loads(repo_baseline.read_text())
        for mode, section in baseline["modes"].items():
            cases = document["modes"][mode]["cases"]
            assert set(cases) == set(section["results"])
            for case in cases.values():
                assert case["delta_vs_baseline"] == pytest.approx(1.0)
