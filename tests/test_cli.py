"""Tests for the command-line interface."""

import pytest

from repro.cli import ANALYSES, GENERATORS, build_parser, main
from repro.trace import load_trace


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "trace.txt"
    exit_code = main(["generate", "racy", "--threads", "3", "--events", "60",
                      "--seed", "5", "--out", str(path)])
    assert exit_code == 0
    return path


class TestGenerate:
    def test_generate_writes_loadable_trace(self, trace_file):
        trace = load_trace(trace_file)
        assert trace.num_threads == 3
        assert len(trace) == 180

    def test_generate_to_stdout(self, capsys):
        assert main(["generate", "tso", "--threads", "2", "--events", "10"]) == 0
        output = capsys.readouterr().out
        assert "atomic_write" in output or "atomic_read" in output

    def test_generate_history_uses_operations(self, tmp_path):
        path = tmp_path / "history.txt"
        main(["generate", "history", "--threads", "2", "--events", "8",
              "--out", str(path)])
        trace = load_trace(path)
        begins = sum(1 for event in trace if event.kind.value == "begin")
        assert begins == 16

    def test_every_registered_generator_is_callable(self):
        assert set(GENERATORS) == {"racy", "deadlock", "memory", "tso", "c11", "history"}

    def test_unknown_generator_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "quantum"])


class TestAnalyze:
    def test_analyze_prints_summary_and_findings(self, trace_file, capsys):
        assert main(["analyze", "race-prediction", str(trace_file)]) == 0
        output = capsys.readouterr().out
        assert "race-prediction[incremental-csst]" in output
        assert "candidates" in output

    def test_analyze_with_explicit_backend(self, trace_file, capsys):
        assert main(["analyze", "c11-races", str(trace_file), "--backend", "vc"]) == 0
        assert "c11-races[vc]" in capsys.readouterr().out

    def test_linearizability_defaults_to_dynamic_backend(self, tmp_path, capsys):
        path = tmp_path / "history.txt"
        main(["generate", "history", "--threads", "2", "--events", "6",
              "--seed", "2", "--out", str(path)])
        assert main(["analyze", "linearizability", str(path)]) == 0
        assert "linearizability[csst]" in capsys.readouterr().out

    def test_all_registered_analyses_have_classes(self):
        assert len(ANALYSES) == 7

    def test_unknown_analysis_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "fuzzing", "trace.txt"])


class TestCompare:
    def test_compare_lists_every_backend(self, trace_file, capsys):
        assert main(["compare", "memory-bugs", str(trace_file)]) == 0
        output = capsys.readouterr().out
        for backend in ("vc", "st", "incremental-csst"):
            assert backend in output

    def test_compare_linearizability_uses_dynamic_backends(self, tmp_path, capsys):
        path = tmp_path / "history.txt"
        main(["generate", "history", "--threads", "2", "--events", "6",
              "--seed", "3", "--out", str(path)])
        assert main(["compare", "linearizability", str(path)]) == 0
        output = capsys.readouterr().out
        assert "graph" in output and "csst" in output
