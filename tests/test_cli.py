"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import ANALYSES, GENERATORS, build_parser, main
from repro.trace import load_trace


@pytest.fixture
def trace_file(tmp_path):
    path = tmp_path / "trace.txt"
    exit_code = main(["generate", "racy", "--threads", "3", "--events", "60",
                      "--seed", "5", "--out", str(path)])
    assert exit_code == 0
    return path


class TestGenerate:
    def test_generate_writes_loadable_trace(self, trace_file):
        trace = load_trace(trace_file)
        assert trace.num_threads == 3
        assert len(trace) == 180

    def test_generate_to_stdout(self, capsys):
        assert main(["generate", "tso", "--threads", "2", "--events", "10"]) == 0
        output = capsys.readouterr().out
        assert "atomic_write" in output or "atomic_read" in output

    def test_generate_history_uses_operations(self, tmp_path):
        path = tmp_path / "history.txt"
        main(["generate", "history", "--threads", "2", "--events", "8",
              "--out", str(path)])
        trace = load_trace(path)
        begins = sum(1 for event in trace if event.kind.value == "begin")
        assert begins == 16

    def test_every_registered_generator_is_callable(self):
        assert set(GENERATORS) == {
            "racy", "deadlock", "memory", "tso", "c11", "history",
            "locked-mix", "producer-consumer", "mpmc-queue",
            "barrier-phases", "fork-join", "heap-churn"}

    def test_unknown_generator_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "quantum"])


class TestAnalyze:
    def test_analyze_prints_summary_and_findings(self, trace_file, capsys):
        assert main(["analyze", "race-prediction", str(trace_file)]) == 0
        output = capsys.readouterr().out
        assert "race-prediction[incremental-csst]" in output
        assert "candidates" in output

    def test_analyze_with_explicit_backend(self, trace_file, capsys):
        assert main(["analyze", "c11-races", str(trace_file), "--backend", "vc"]) == 0
        assert "c11-races[vc]" in capsys.readouterr().out

    def test_linearizability_defaults_to_dynamic_backend(self, tmp_path, capsys):
        path = tmp_path / "history.txt"
        main(["generate", "history", "--threads", "2", "--events", "6",
              "--seed", "2", "--out", str(path)])
        assert main(["analyze", "linearizability", str(path)]) == 0
        assert "linearizability[csst]" in capsys.readouterr().out

    def test_all_registered_analyses_have_classes(self):
        assert len(ANALYSES) == 7

    def test_unknown_analysis_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "fuzzing", "trace.txt"])


class TestMaxFindings:
    """Regression tests for ``--max-findings`` edge cases (issue #1)."""

    @pytest.fixture
    def finding_count(self, trace_file):
        trace = load_trace(trace_file)
        from repro.analyses.race_prediction import RacePredictionAnalysis

        count = RacePredictionAnalysis("incremental-csst").run(trace).finding_count
        assert count >= 2, "fixture trace must produce several findings"
        return count

    def test_zero_prints_no_findings_but_counts_all(self, trace_file,
                                                    finding_count, capsys):
        assert main(["analyze", "race-prediction", str(trace_file),
                     "--max-findings", "0"]) == 0
        output = capsys.readouterr().out
        assert "finding:" not in output
        assert f"... and {finding_count} more" in output

    def test_negative_is_treated_as_zero(self, trace_file, finding_count, capsys):
        assert main(["analyze", "race-prediction", str(trace_file),
                     "--max-findings", "-3"]) == 0
        output = capsys.readouterr().out
        assert "finding:" not in output
        assert f"... and {finding_count} more" in output

    def test_partial_slice_counts_the_remainder(self, trace_file,
                                                finding_count, capsys):
        assert main(["analyze", "race-prediction", str(trace_file),
                     "--max-findings", "1"]) == 0
        output = capsys.readouterr().out
        assert output.count("finding:") == 1
        assert f"... and {finding_count - 1} more" in output

    def test_no_trailer_when_everything_is_shown(self, trace_file, capsys):
        assert main(["analyze", "race-prediction", str(trace_file),
                     "--max-findings", "9999"]) == 0
        assert "more" not in capsys.readouterr().out


class TestCompare:
    def test_compare_lists_every_backend(self, trace_file, capsys):
        assert main(["compare", "memory-bugs", str(trace_file)]) == 0
        output = capsys.readouterr().out
        for backend in ("vc", "st", "incremental-csst"):
            assert backend in output

    def test_compare_linearizability_uses_dynamic_backends(self, tmp_path, capsys):
        path = tmp_path / "history.txt"
        main(["generate", "history", "--threads", "2", "--events", "6",
              "--seed", "3", "--out", str(path)])
        assert main(["compare", "linearizability", str(path)]) == 0
        output = capsys.readouterr().out
        assert "graph" in output and "csst" in output


class TestSweep:
    def test_sweep_repeat_reports_min_and_median(self, capsys):
        assert main(["sweep", "--suite", "smoke", "--analyses",
                     "race-prediction", "--backends", "vc", "--repeat", "3",
                     "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        for record in document["records"]:
            assert record["repeats"] == 3
            assert record["elapsed_seconds"] <= \
                record["elapsed_median_seconds"]

    def test_sweep_repeat_must_be_positive(self, capsys):
        assert main(["sweep", "--suite", "smoke", "--repeat", "0"]) == 2
        assert "repeat must be >= 1" in capsys.readouterr().err

    def test_sweep_table_output(self, capsys):
        assert main(["sweep", "--suite", "smoke", "--analyses",
                     "race-prediction", "--backends", "vc,st"]) == 0
        output = capsys.readouterr().out
        assert "sweep[smoke]: 2 jobs" in output
        assert "racy-t3-n40-s0" in output

    def test_sweep_json_records_are_structured(self, capsys):
        assert main(["sweep", "--suite", "smoke", "--jobs", "2",
                     "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["jobs"] == 33 and document["failures"] == 0
        first = document["records"][0]
        for key in ("backend", "analysis", "trace_id", "kind", "threads",
                    "events", "seed", "elapsed_seconds", "finding_count",
                    "insert_count", "delete_count", "query_count"):
            assert key in first, key
        assert document["speedups"]

    def test_sweep_parallel_matches_serial(self, capsys):
        argv = ["sweep", "--suite", "smoke", "--format", "json"]
        assert main(argv + ["--jobs", "1"]) == 0
        serial = json.loads(capsys.readouterr().out)["records"]
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)["records"]
        for left, right in zip(serial, parallel):
            for timing_field in ("elapsed_seconds", "elapsed_median_seconds"):
                left.pop(timing_field), right.pop(timing_field)
        assert serial == parallel

    def test_sweep_csv_to_file(self, tmp_path, capsys):
        path = tmp_path / "sweep.csv"
        assert main(["sweep", "--suite", "smoke", "--analyses", "c11-races",
                     "--format", "csv", "--out", str(path)]) == 0
        assert "wrote 5 records" in capsys.readouterr().out
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("suite,trace_id,kind")
        assert len(lines) == 6

    def test_sweep_unknown_suite_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--suite", "galaxy"])

    def test_sweep_typoed_backend_is_a_clean_error(self, capsys):
        assert main(["sweep", "--suite", "smoke", "--backends", "vcc"]) == 2
        captured = capsys.readouterr()
        assert "unknown backends" in captured.err
        assert captured.out == ""

    def test_sweep_typoed_baseline_is_a_clean_error(self, capsys):
        assert main(["sweep", "--suite", "smoke", "--baseline", "vcc"]) == 2
        assert "unknown baseline backend" in capsys.readouterr().err

    def test_sweep_absent_baseline_warns(self, capsys):
        assert main(["sweep", "--suite", "smoke", "--analyses",
                     "race-prediction", "--backends", "vc,st",
                     "--baseline", "graph"]) == 0
        assert "ran no job in this sweep" in capsys.readouterr().err

    def test_sweep_dropped_flags_warn(self, capsys):
        assert main(["sweep", "--suite", "smoke", "--analyses", "c11-races",
                     "--backends", "vc", "--timeout", "5", "--format", "csv",
                     "--baseline", "vc"]) == 0
        captured = capsys.readouterr().err
        assert "timeout only applies to parallel runs" in captured
        assert "baseline has no effect with the csv format" in captured

    def test_sweep_empty_plan_is_a_clean_error(self, capsys):
        assert main(["sweep", "--suite", "smoke", "--analyses",
                     "linearizability", "--backends", "vc"]) == 2
        assert "sweep plan is empty" in capsys.readouterr().err

    def test_library_errors_exit_2_without_traceback(self, trace_file, capsys):
        assert main(["analyze", "race-prediction", str(trace_file),
                     "--backend", "vcc"]) == 2
        assert "unknown partial-order backend" in capsys.readouterr().err


class TestSweepSeedOverride:
    def test_seed_override_is_recorded_in_records(self, capsys):
        assert main(["sweep", "--suite", "smoke", "--analyses",
                     "race-prediction", "--backends", "vc", "--seed", "42",
                     "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["records"], "expected at least one record"
        for record in document["records"]:
            assert record["seed"] == 42
            assert "-s42" in record["trace_id"]

    def test_seed_override_lands_in_csv_export(self, capsys):
        assert main(["sweep", "--suite", "smoke", "--analyses",
                     "race-prediction", "--backends", "vc", "--seed", "7",
                     "--format", "csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        header = lines[0].split(",")
        seed_column = header.index("seed")
        for line in lines[1:]:
            assert line.split(",")[seed_column] == "7"

    def test_seed_override_changes_the_workload(self, capsys):
        argv = ["sweep", "--suite", "smoke", "--analyses",
                "race-prediction", "--backends", "vc", "--format", "json"]
        assert main(argv) == 0
        base = json.loads(capsys.readouterr().out)["records"]
        assert main(argv + ["--seed", "3"]) == 0
        reseeded = json.loads(capsys.readouterr().out)["records"]
        assert [r["seed"] for r in base] != [r["seed"] for r in reseeded]


class TestGenCommand:
    def test_gen_list_renders_the_unified_table(self, capsys):
        assert main(["gen", "--list"]) == 0
        output = capsys.readouterr().out
        # One table over one registry: classic and scenario kinds together.
        for kind in ("racy", "history", "locked-mix", "heap-churn"):
            assert kind in output
        assert "classic" in output and "scenario" in output

    def test_gen_without_mode_or_list_is_a_clean_error(self, capsys):
        assert main(["gen"]) == 2
        assert "nothing to do" in capsys.readouterr().err

    def test_gen_corpus_requires_out(self, capsys):
        assert main(["gen", "corpus"]) == 2
        assert "--out" in capsys.readouterr().err

    def test_gen_corpus_end_to_end(self, tmp_path, capsys):
        from repro.runner.corpus import SUITES

        out = tmp_path / "corpus"
        try:
            assert main(["gen", "corpus", "--out", str(out), "--name", "clitest",
                         "--kinds", "locked-mix,racy", "--count", "1",
                         "--seed", "2"]) == 0
            printed = capsys.readouterr().out
            assert "wrote 2 traces" in printed
            assert "corpus:clitest" in printed
            assert (out / "manifest.json").exists()
            # The registered suite sweeps immediately.
            assert main(["sweep", "--corpus", str(out / "manifest.json"),
                         "--analyses", "race-prediction", "--backends",
                         "vc", "--format", "json"]) == 0
            document = json.loads(capsys.readouterr().out)
            assert document["jobs"] == 2 and document["failures"] == 0
            # Each member doubles as a watch source via the manifest.
            assert main(["watch", "--source", str(out / "manifest.json"),
                         "--analyses", "race-prediction"]) == 0
            assert "final[race-prediction]" in capsys.readouterr().out
        finally:
            SUITES.pop("corpus:clitest", None)

    def test_gen_corpus_config_file_with_flag_overrides(self, tmp_path,
                                                        capsys):
        from repro.runner.corpus import SUITES

        config = tmp_path / "config.json"
        config.write_text(json.dumps({"name": "fromfile", "count": 3,
                                      "kinds": ["racy"]}))
        try:
            assert main(["gen", "corpus", "--out", str(tmp_path / "c"),
                         "--config", str(config), "--count", "1"]) == 0
            assert "wrote 1 traces" in capsys.readouterr().out
        finally:
            SUITES.pop("corpus:fromfile", None)

    def test_gen_corpus_malformed_config_json_is_a_clean_error(self, tmp_path,
                                                               capsys):
        config = tmp_path / "bad.json"
        config.write_text("{not json")
        assert main(["gen", "corpus", "--out", str(tmp_path / "c"),
                     "--config", str(config)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_gen_corpus_config_file_rejects_run_scoped_keys(self, tmp_path,
                                                            capsys):
        # 'out' belongs to the invocation (--out); a file smuggling it in
        # would silently lose to the flag, so it is rejected up front.
        config = tmp_path / "config.json"
        config.write_text(json.dumps({"name": "x", "out": "/elsewhere"}))
        assert main(["gen", "corpus", "--out", str(tmp_path / "c"),
                     "--config", str(config)]) == 2
        assert "unknown corpus config keys" in capsys.readouterr().err


class TestConvert:
    def test_convert_round_trip(self, trace_file, tmp_path, capsys):
        stc = tmp_path / "t.stc"
        assert main(["convert", str(trace_file), str(stc)]) == 0
        assert "(std) -> " in capsys.readouterr().out
        assert stc.read_bytes()[:4] == b"\x89STC"
        back = tmp_path / "back.std"
        assert main(["convert", str(stc), str(back)]) == 0
        assert list(load_trace(back)) == list(load_trace(trace_file))

    def test_convert_json_document(self, trace_file, tmp_path, capsys):
        stc = tmp_path / "t.stc"
        assert main(["convert", str(trace_file), str(stc),
                     "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["out_format"] == "stc"
        assert document["event_count"] > 0

    def test_convert_to_overrides_suffix(self, trace_file, tmp_path,
                                         capsys):
        out = tmp_path / "anything.dat"
        assert main(["convert", str(trace_file), str(out),
                     "--to", "stc"]) == 0
        assert out.read_bytes()[:4] == b"\x89STC"

    def test_generate_writes_stc_by_suffix(self, tmp_path, capsys):
        path = tmp_path / "t.stc"
        assert main(["generate", "racy", "--threads", "2", "--events",
                     "20", "--out", str(path)]) == 0
        assert path.read_bytes()[:4] == b"\x89STC"
        # analyze sniffs and accepts the binary trace directly.
        assert main(["analyze", "race-prediction", str(path)]) == 0

    def test_gen_corpus_trace_format_stc(self, tmp_path, capsys):
        out = tmp_path / "corpus"
        assert main(["gen", "corpus", "--out", str(out), "--kinds", "racy",
                     "--count", "1", "--trace-format", "stc"]) == 0
        members = list(out.glob("*.stc"))
        assert members, "no .stc members written"
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["format"] == "stc"
        from repro.runner.corpus import SUITES
        SUITES.pop("corpus:corpus", None)


class TestFuzzCommand:
    def test_fuzz_quick_run_is_clean(self, capsys):
        assert main(["fuzz", "--seeds", "6", "--quick",
                     "--kinds", "racy,locked-mix"]) == 0
        output = capsys.readouterr().out
        assert "6 cases" in output and "0 divergence" in output

    def test_fuzz_verbose_prints_cases(self, capsys):
        assert main(["fuzz", "--seeds", "2", "--quick", "--kinds", "racy",
                     "--verbose"]) == 0
        assert "case fuzz0000-racy" in capsys.readouterr().out

    def test_fuzz_invalid_seeds_rejected(self, capsys):
        assert main(["fuzz", "--seeds", "0"]) == 2
        assert "seeds must be >= 1" in capsys.readouterr().err

    def test_fuzz_unknown_kind_is_a_clean_error(self, capsys):
        assert main(["fuzz", "--seeds", "1", "--kinds", "quantum"]) == 2
        assert "unknown kinds" in capsys.readouterr().err


class TestSweepDiscovery:
    def test_list_suites(self, capsys):
        assert main(["sweep", "--list-suites"]) == 0
        output = capsys.readouterr().out
        for suite in ("smoke", "quick", "seeds", "scaling", "full"):
            assert suite in output
        assert "description" in output

    def test_list_analyses(self, capsys):
        assert main(["sweep", "--list-analyses"]) == 0
        output = capsys.readouterr().out
        for name in ANALYSES:
            assert name in output
        assert "incremental-csst" in output
        assert "racy" in output  # the feeding workload kinds are shown

    def test_both_flags_run_nothing_else(self, capsys):
        assert main(["sweep", "--list-suites", "--list-analyses"]) == 0
        output = capsys.readouterr().out
        assert "smoke" in output and "race-prediction" in output
        assert "sweep[" not in output  # no sweep actually ran


class TestAnalysisNameResolution:
    def test_exact_underscore_and_prefix_spellings(self):
        from repro.cli import resolve_analysis_name

        assert resolve_analysis_name("race-prediction") == "race-prediction"
        assert resolve_analysis_name("race_prediction") == "race-prediction"
        assert resolve_analysis_name("deadlock") == "deadlock-prediction"
        assert resolve_analysis_name("lin") == "linearizability"

    def test_unknown_name_rejected(self):
        from repro.cli import resolve_analysis_name
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="unknown analysis"):
            resolve_analysis_name("quantum")


class TestWatch:
    def test_watch_file_source_emits_and_summarises(self, trace_file, capsys):
        assert main(["watch", "--source", str(trace_file), "--analyses",
                     "race_prediction,deadlock", "--flush-every", "60"]) == 0
        output = capsys.readouterr().out
        assert "race-prediction:" in output  # at least one emitted finding
        assert "stream[" in output
        assert "final[race-prediction]" in output
        assert "final[deadlock-prediction]" in output

    def test_watch_final_set_matches_batch(self, trace_file, capsys):
        from repro.analyses.common.base import Analysis

        trace = load_trace(trace_file)
        batch = Analysis.by_name("race-prediction")(
            "incremental-csst").run(trace)
        assert main(["watch", "--source", str(trace_file), "--analyses",
                     "race-prediction", "--format", "jsonl"]) == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines()]
        summary = [line for line in lines if line["type"] == "summary"][0]
        assert summary["final"]["race-prediction"] == \
            [str(finding) for finding in batch.findings]

    def test_watch_generator_source_defaults_analyses(self, capsys):
        assert main(["watch", "--source",
                     "deadlock:threads=3,events=24,seed=5"]) == 0
        assert "final[deadlock-prediction]" in capsys.readouterr().out

    def test_watch_gzip_source(self, tmp_path, capsys):
        path = tmp_path / "t.std.gz"
        main(["generate", "racy", "--threads", "2", "--events", "20",
              "--out", str(path)])
        assert main(["watch", "--source", str(path), "--analyses",
                     "race-prediction"]) == 0
        assert "final[race-prediction]" in capsys.readouterr().out

    def test_watch_windowed_run(self, trace_file, capsys):
        assert main(["watch", "--source", str(trace_file), "--analyses",
                     "race-prediction", "--window", "50"]) == 0
        assert "stream[" in capsys.readouterr().out

    def test_watch_checkpoint_resume_round_trip(self, trace_file, tmp_path,
                                                capsys):
        from repro.analyses.common.base import Analysis

        trace = load_trace(trace_file)
        batch = Analysis.by_name("race-prediction")(
            "incremental-csst").run(trace)
        checkpoint = tmp_path / "ck.json"
        assert main(["watch", "--source", str(trace_file), "--analyses",
                     "race-prediction", "--max-events", "90",
                     "--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        assert checkpoint.exists()
        assert main(["watch", "--source", str(trace_file), "--analyses",
                     "race-prediction", "--format", "jsonl",
                     "--checkpoint", str(checkpoint)]) == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines()]
        summary = [line for line in lines if line["type"] == "summary"][0]
        assert summary["events"] == len(trace)
        assert summary["final"]["race-prediction"] == \
            [str(finding) for finding in batch.findings]

    def test_watch_typoed_backend_is_a_clean_error(self, trace_file, capsys):
        assert main(["watch", "--source", str(trace_file), "--analyses",
                     "race-prediction", "--backend", "vcc"]) == 2
        assert "unknown partial-order backend" in capsys.readouterr().err

    def test_watch_window_with_flush_every_rejected(self, trace_file, capsys):
        assert main(["watch", "--source", str(trace_file), "--analyses",
                     "race-prediction", "--window", "50",
                     "--flush-every", "10"]) == 2
        assert "flush_every only applies" in capsys.readouterr().err

    def test_watch_plain_resume_does_not_warn(self, trace_file, tmp_path,
                                              capsys):
        checkpoint = tmp_path / "ck.json"
        assert main(["watch", "--source", str(trace_file), "--analyses",
                     "race-prediction", "--flush-every", "30",
                     "--max-events", "60", "--checkpoint",
                     str(checkpoint)]) == 0
        capsys.readouterr()
        # Resuming with the flags simply omitted is the documented flow
        # and must not warn about configuration mismatches.
        assert main(["watch", "--source", str(trace_file), "--analyses",
                     "race-prediction", "--checkpoint",
                     str(checkpoint)]) == 0
        assert "warning" not in capsys.readouterr().err

    def test_watch_conflicting_resume_flags_warn(self, trace_file, tmp_path,
                                                 capsys):
        checkpoint = tmp_path / "ck.json"
        assert main(["watch", "--source", str(trace_file), "--analyses",
                     "race-prediction", "--max-events", "60",
                     "--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        assert main(["watch", "--source", str(trace_file), "--analyses",
                     "race-prediction", "--window", "50",
                     "--checkpoint", str(checkpoint)]) == 0
        err = capsys.readouterr().err
        assert "window is fixed at checkpoint creation" in err

    def test_watch_file_source_requires_analyses(self, trace_file, capsys):
        assert main(["watch", "--source", str(trace_file)]) == 2
        assert "need analyses" in capsys.readouterr().err

    def test_watch_generator_resume_without_analyses_does_not_warn(
            self, tmp_path, capsys):
        """Resuming a generator-source watch with --analyses omitted must
        not manufacture a mismatch warning from the kind's defaults."""
        checkpoint = tmp_path / "ck.json"
        spec = "memory:threads=3,events=24,seed=2"
        assert main(["watch", "--source", spec, "--analyses",
                     "use_after_free", "--max-events", "30",
                     "--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        assert main(["watch", "--source", spec,
                     "--checkpoint", str(checkpoint)]) == 0
        captured = capsys.readouterr()
        assert "warning" not in captured.err
        assert "final[use-after-free]" in captured.out
        assert "final[memory-bugs]" not in captured.out

    def test_watch_resume_equivalent_window_spellings_do_not_warn(
            self, trace_file, tmp_path, capsys):
        checkpoint = tmp_path / "ck.json"
        assert main(["watch", "--source", str(trace_file), "--analyses",
                     "race-prediction", "--max-events", "60",
                     "--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        # '0' and 'none' both mean unbounded; no warning for a spelling.
        assert main(["watch", "--source", str(trace_file), "--analyses",
                     "race-prediction", "--window", "0",
                     "--checkpoint", str(checkpoint)]) == 0
        assert "warning" not in capsys.readouterr().err

    def test_watch_resume_without_analyses_uses_checkpoint(self, trace_file,
                                                           tmp_path, capsys):
        checkpoint = tmp_path / "ck.json"
        assert main(["watch", "--source", str(trace_file), "--analyses",
                     "race-prediction", "--max-events", "60",
                     "--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        # The checkpoint records the analyses; resuming needs no flag.
        assert main(["watch", "--source", str(trace_file),
                     "--checkpoint", str(checkpoint)]) == 0
        captured = capsys.readouterr()
        assert "final[race-prediction]" in captured.out
        assert "warning" not in captured.err

    def test_watch_unknown_source_is_clean_error(self, capsys):
        assert main(["watch", "--source", "/no/such/trace.std",
                     "--analyses", "race-prediction"]) == 2
        assert "neither an existing trace file" in capsys.readouterr().err

    def test_watch_bad_generator_parameters_are_clean_errors(self, capsys):
        assert main(["watch", "--source", "racy:threads=abc"]) == 2
        assert "invalid generator parameters" in capsys.readouterr().err
        assert main(["watch", "--source", "racy:bogus=1"]) == 2
        assert "invalid generator parameters" in capsys.readouterr().err

    def test_watch_final_flush_failure_exits_1(self, tmp_path, capsys):
        """A stream truncated mid-operation leaves the analysis without a
        final result; like sweep, that is not a clean exit."""
        path = tmp_path / "h.std"
        main(["generate", "history", "--threads", "2", "--events", "8",
              "--out", str(path)])
        assert main(["watch", "--source", str(path), "--analyses",
                     "linearizability", "--max-events", "3"]) == 1
        assert "last flush failed" in capsys.readouterr().err

    def test_watch_multiple_sources_serve_tenants(self, trace_file, capsys):
        """Several --source flags route through the serving layer: one
        tenant each, tenant-prefixed findings, one summary per tenant."""
        assert main(["watch", "--source", str(trace_file),
                     "--source", "racy:threads=2,events=20,seed=9",
                     "--analyses", "race-prediction",
                     "--format", "jsonl"]) == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines()]
        document = [line for line in lines if line["type"] == "serve"][0]
        assert len(document["tenants"]) == 2
        assert sorted(document["summaries"]) == document["tenants"]
        assert all("tenant" in line for line in lines
                   if line["type"] == "finding")

    def test_watch_multiple_sources_reject_single_feed_flags(self, trace_file,
                                                             capsys):
        assert main(["watch", "--source", str(trace_file),
                     "--source", "racy:threads=2,events=20,seed=9",
                     "--analyses", "race-prediction", "--follow"]) == 2
        assert "follow" in capsys.readouterr().err


class TestServe:
    SOURCES = ["racy:threads=2,events=30,seed=1",
               "racy:threads=2,events=20,seed=2"]

    def serve(self, *extra):
        command = ["serve", "--analyses", "race-prediction"]
        for source in self.SOURCES:
            command += ["--source", source]
        return main(command + list(extra))

    def test_replay_inline_jsonl(self, capsys):
        assert self.serve("--workers", "0", "--format", "jsonl") == 0
        lines = [json.loads(line)
                 for line in capsys.readouterr().out.splitlines()]
        document = [line for line in lines if line["type"] == "serve"][0]
        assert document["workers"] == 0
        assert document["events"] == 60 + 40  # events are per thread
        assert len(document["tenants"]) == 2
        for summary in document["summaries"].values():
            assert summary["type"] == "summary"
            assert "final" in summary

    def test_replay_sharded_text_summary(self, capsys):
        assert self.serve("--workers", "2") == 0
        output = capsys.readouterr().out
        assert "served 2 tenants" in output
        assert "2 workers" in output

    def test_mode_validation_is_clean_error(self, capsys):
        assert main(["serve", "--analyses", "race-prediction"]) == 2
        assert "exactly one" in capsys.readouterr().err

    def test_bad_listen_address_is_clean_error(self, capsys):
        assert main(["serve", "--analyses", "race-prediction",
                     "--listen", "7341"]) == 2
        assert "malformed --listen" in capsys.readouterr().err


class TestMetricsFlag:
    def test_analyze_metrics_writes_parseable_jsonl(self, trace_file,
                                                    tmp_path, capsys):
        path = tmp_path / "m.jsonl"
        assert main(["analyze", "race-prediction", str(trace_file),
                     "--metrics", str(path)]) == 0
        capsys.readouterr()
        [line] = path.read_text().splitlines()
        snapshot = json.loads(line)
        names = {entry["name"] for entry in snapshot["counters"]}
        assert "trace_loads_total" in names
        assert [span["name"] for span in snapshot["spans"]] == ["analyze"]

    def test_watch_metrics_counts_streamed_events(self, trace_file,
                                                  tmp_path, capsys):
        path = tmp_path / "m.jsonl"
        assert main(["watch", "--source", str(trace_file), "--analyses",
                     "race-prediction", "--flush-every", "30",
                     "--metrics", str(path)]) == 0
        capsys.readouterr()
        snapshot = json.loads(path.read_text().splitlines()[-1])
        events = [entry for entry in snapshot["counters"]
                  if entry["name"] == "stream_events_total"]
        assert events and events[0]["value"] == 180
        latencies = [entry for entry in snapshot["histograms"]
                     if entry["name"] == "stream_flush_seconds"]
        assert latencies and latencies[0]["count"] > 0

    def test_sweep_metrics_appends_across_runs(self, tmp_path, capsys):
        path = tmp_path / "m.jsonl"
        for _ in range(2):
            assert main(["sweep", "--suite", "smoke", "--analyses",
                         "race-prediction", "--backends", "vc",
                         "--metrics", str(path)]) == 0
        capsys.readouterr()
        assert len(path.read_text().splitlines()) == 2

    def test_disabled_runs_write_nothing(self, trace_file, tmp_path,
                                         capsys):
        assert main(["analyze", "race-prediction", str(trace_file)]) == 0
        capsys.readouterr()
        assert not list(tmp_path.glob("*.jsonl"))


class TestStatsCommand:
    @pytest.fixture
    def metrics_file(self, trace_file, tmp_path, capsys):
        path = tmp_path / "m.jsonl"
        assert main(["analyze", "race-prediction", str(trace_file),
                     "--metrics", str(path)]) == 0
        capsys.readouterr()
        return path

    def test_table_output(self, metrics_file, capsys):
        assert main(["stats", str(metrics_file)]) == 0
        output = capsys.readouterr().out
        assert "trace_loads_total{format=std}" in output
        assert "spans:" in output

    def test_json_output_is_the_snapshot(self, metrics_file, capsys):
        assert main(["stats", str(metrics_file), "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document == json.loads(metrics_file.read_text())

    def test_prom_output_is_valid_exposition(self, metrics_file, capsys):
        assert main(["stats", str(metrics_file), "--format", "prom"]) == 0
        output = capsys.readouterr().out
        assert "# TYPE trace_loads_total counter" in output
        assert 'trace_loads_total{format="std"} 1' in output
        assert 'le="+Inf"' in output
        # Every non-comment line is "name{labels} value".
        for line in output.strip().splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            assert name and float(value) >= 0

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_index_is_a_clean_error(self, metrics_file, capsys):
        assert main(["stats", str(metrics_file), "--index", "5"]) == 2
        assert "out of range" in capsys.readouterr().err


class TestReportCommand:
    def test_trend_report_from_bench_documents(self, tmp_path, capsys):
        baseline = {"modes": {"quick": {
            "python": "3", "repeats": 1,
            "results": {"fig11/csst": {"seconds": 0.1}},
        }}}
        (tmp_path / "BENCH_baseline.json").write_text(json.dumps(baseline))
        out = tmp_path / "tables"
        assert main(["report", "trend", "--dir", str(tmp_path),
                     "--out", str(out)]) == 0
        output = capsys.readouterr().out
        assert "perf_trend.md" in output
        assert "fig11/csst" in (out / "perf_trend.md").read_text()
        assert json.loads((out / "perf_trend.json").read_text())["modes"]

    def test_empty_directory_is_a_clean_error(self, tmp_path, capsys):
        assert main(["report", "trend", "--dir", str(tmp_path),
                     "--out", str(tmp_path / "t")]) == 2
        assert "no BENCH_" in capsys.readouterr().err
