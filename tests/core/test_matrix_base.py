"""Tests for the shared chain-pair array matrix used by the CSST variants."""

import pytest

from repro.core import CSST, IncrementalCSST, SegmentTree, SegmentTreeOrder
from repro.core.suffix_minima import NaiveSuffixMinima


class TestLazyArrayCreation:
    def test_no_arrays_before_any_edge(self):
        order = IncrementalCSST(4, 16)
        assert order.total_entries == 0
        assert order.max_array_density == 0
        assert list(order._iter_arrays()) == []

    def test_arrays_created_only_for_touched_pairs(self):
        order = IncrementalCSST(4, 16)
        order.insert_edge((0, 1), (1, 2))
        touched_pairs = {pair for pair, _array in order._iter_arrays()}
        # Only pairs involving chains that actually interact are created;
        # with one edge that is at most the pairs reachable from chain 0/1.
        assert (0, 1) in touched_pairs
        assert all(source != target for source, target in touched_pairs)

    def test_existing_array_returns_none_for_untouched_pair(self):
        order = IncrementalCSST(4, 16)
        order.insert_edge((0, 1), (1, 2))
        assert order._existing_array(2, 3) is None
        assert order._existing_array(0, 1) is not None

    def test_custom_array_factory_is_used(self):
        order = IncrementalCSST(3, 16,
                                array_factory=lambda capacity: NaiveSuffixMinima(capacity))
        order.insert_edge((0, 1), (1, 2))
        arrays = [array for _pair, array in order._iter_arrays()]
        assert arrays and all(isinstance(a, NaiveSuffixMinima) for a in arrays)
        assert order.reachable((0, 0), (1, 5))

    def test_segment_tree_order_uses_dense_arrays(self):
        order = SegmentTreeOrder(3, 16)
        order.insert_edge((0, 1), (1, 2))
        arrays = [array for _pair, array in order._iter_arrays()]
        assert arrays and all(isinstance(a, SegmentTree) for a in arrays)


class TestIntrospection:
    def test_total_entries_counts_across_arrays(self):
        order = CSST(3, 16)
        order.insert_edge((0, 1), (1, 2))
        order.insert_edge((0, 3), (2, 4))
        order.insert_edge((1, 5), (2, 6))
        assert order.total_entries == 3
        assert order.max_array_density == 1

    def test_density_reflects_distinct_source_indices(self):
        order = CSST(3, 32)
        for index in range(5):
            order.insert_edge((0, index), (1, index))
        # Five sources in chain 0 towards chain 1.
        assert order.max_array_density == 5

    def test_multiple_edges_from_same_source_count_once(self):
        order = CSST(3, 32)
        order.insert_edge((0, 1), (1, 5))
        order.insert_edge((0, 1), (1, 9))
        assert order.max_array_density == 1
        assert order.edge_count == 2
