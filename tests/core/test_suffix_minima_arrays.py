"""Tests for the three suffix-minima array implementations.

The naive reference, the dense segment tree and the sparse segment tree must
all implement the same semantics (Section 3.1 of the paper); most tests run
against all three via the parametrised fixture.
"""

import pytest

from repro.core import NaiveSuffixMinima, SegmentTree, SparseSegmentTree
from repro.core.interface import INF
from repro.errors import InvalidNodeError

IMPLEMENTATIONS = {
    "naive": NaiveSuffixMinima,
    "segment-tree": SegmentTree,
    "sparse-segment-tree": SparseSegmentTree,
}


@pytest.fixture(params=sorted(IMPLEMENTATIONS))
def array(request):
    return IMPLEMENTATIONS[request.param](16)


class TestEmptyArray:
    def test_suffix_min_of_empty_array_is_infinite(self, array):
        assert array.suffix_min(0) == INF

    def test_argleq_of_empty_array_is_none(self, array):
        assert array.argleq(100) is None

    def test_get_of_empty_entry_is_infinite(self, array):
        assert array.get(5) == INF

    def test_density_of_empty_array_is_zero(self, array):
        assert array.density == 0

    def test_items_of_empty_array_is_empty(self, array):
        assert array.items() == []


class TestUpdates:
    def test_update_then_get(self, array):
        array.update(3, 42)
        assert array.get(3) == 42

    def test_update_overwrites(self, array):
        array.update(3, 42)
        array.update(3, 7)
        assert array.get(3) == 7

    def test_update_with_infinity_clears(self, array):
        array.update(3, 42)
        array.update(3, INF)
        assert array.get(3) == INF
        assert array.density == 0

    def test_clear_helper(self, array):
        array.update(4, 9)
        array.clear(4)
        assert array.get(4) == INF

    def test_density_counts_non_empty_entries(self, array):
        array.update(0, 5)
        array.update(7, 6)
        array.update(7, 3)      # overwrite, not a new entry
        assert array.density == 2

    def test_items_returns_sorted_pairs(self, array):
        array.update(9, 1)
        array.update(2, 8)
        assert array.items() == [(2, 8), (9, 1)]

    def test_to_list_materialises_array(self, array):
        array.update(1, 4)
        values = array.to_list()
        assert values[1] == 4
        assert values[0] == INF

    def test_negative_index_rejected(self, array):
        with pytest.raises(InvalidNodeError):
            array.update(-1, 3)

    def test_negative_query_index_rejected(self, array):
        with pytest.raises(InvalidNodeError):
            array.suffix_min(-2)

    def test_capacity_grows_on_demand(self, array):
        array.update(100, 3)
        assert array.capacity >= 101
        assert array.get(100) == 3

    def test_growth_preserves_existing_entries(self, array):
        array.update(2, 9)
        array.update(500, 1)
        assert array.get(2) == 9
        assert array.suffix_min(0) == 1


class TestSuffixMin:
    def test_suffix_min_sees_later_entries_only(self, array):
        array.update(2, 10)
        array.update(8, 4)
        assert array.suffix_min(0) == 4
        assert array.suffix_min(3) == 4
        assert array.suffix_min(9) == INF

    def test_suffix_min_at_exact_index(self, array):
        array.update(5, 7)
        assert array.suffix_min(5) == 7
        assert array.suffix_min(6) == INF

    def test_suffix_min_with_duplicate_values(self, array):
        array.update(1, 3)
        array.update(6, 3)
        assert array.suffix_min(0) == 3
        assert array.suffix_min(2) == 3

    def test_suffix_min_beyond_capacity_is_infinite(self, array):
        array.update(1, 3)
        assert array.suffix_min(array.capacity + 10) == INF

    def test_example_1_from_paper(self, array):
        """Example 1 of the paper: A = [6, 9, 8, 10]."""
        for index, value in enumerate([6, 9, 8, 10]):
            array.update(index, value)
        assert array.suffix_min(0) == 6
        assert array.suffix_min(1) == 8
        assert array.suffix_min(2) == 8
        assert array.suffix_min(3) == 10


class TestArgleq:
    def test_argleq_returns_largest_qualifying_index(self, array):
        array.update(1, 5)
        array.update(6, 9)
        assert array.argleq(9) == 6
        assert array.argleq(5) == 1

    def test_argleq_below_all_values_is_none(self, array):
        array.update(4, 10)
        assert array.argleq(9) is None

    def test_argleq_ignores_cleared_entries(self, array):
        array.update(9, 2)
        array.update(9, INF)
        array.update(1, 2)
        assert array.argleq(2) == 1

    def test_example_1_argleq_from_paper(self, array):
        """Example 1 of the paper: argleq over A = [6, 9, 8, 10]."""
        for index, value in enumerate([6, 9, 8, 10]):
            array.update(index, value)
        assert array.argleq(7) == 0
        assert array.argleq(9) == 2
        assert array.argleq(11) == 3

    def test_example_1_after_update(self, array):
        """Example 1 continues: update(A, 3, 7) sets A[3] = 7."""
        for index, value in enumerate([6, 9, 8, 10]):
            array.update(index, value)
        array.update(3, 7)
        assert array.suffix_min(2) == 7
        assert array.argleq(7) == 3


class TestConstruction:
    def test_zero_capacity_rejected(self, array):
        with pytest.raises(InvalidNodeError):
            type(array)(0)

    def test_capacity_reported(self):
        assert SegmentTree(10).capacity >= 10
        assert SparseSegmentTree(10).capacity >= 10
        assert NaiveSuffixMinima(10).capacity == 10
