"""Tests specific to the dense Segment Tree baseline."""

import random

import pytest

from repro.core import NaiveSuffixMinima, SegmentTree
from repro.core.interface import INF


class TestCapacity:
    def test_capacity_rounds_to_power_of_two(self):
        assert SegmentTree(5).capacity == 8
        assert SegmentTree(8).capacity == 8
        assert SegmentTree(9).capacity == 16

    def test_growth_doubles_until_fitting(self):
        tree = SegmentTree(4)
        tree.update(21, 3)
        assert tree.capacity == 32

    def test_growth_keeps_all_entries(self):
        tree = SegmentTree(4)
        for index in range(4):
            tree.update(index, 10 + index)
        tree.update(63, 1)
        for index in range(4):
            assert tree.get(index) == 10 + index
        assert tree.suffix_min(0) == 1
        assert tree.density == 5

    def test_memory_is_dense(self):
        """The dense tree allocates ~2 * capacity slots regardless of density
        -- the weakness Sparse Segment Trees address."""
        tree = SegmentTree(1024)
        tree.update(5, 1)
        assert len(tree._tree) == 2 * tree.capacity


class TestOperations:
    def test_update_propagates_to_root(self):
        tree = SegmentTree(8)
        tree.update(6, 3)
        assert tree.suffix_min(0) == 3

    def test_suffix_min_on_various_suffixes(self):
        tree = SegmentTree(8)
        values = [9, 4, 7, 1, 8, 2, 6, 5]
        for index, value in enumerate(values):
            tree.update(index, value)
        for start in range(8):
            assert tree.suffix_min(start) == min(values[start:])

    def test_argleq_descends_to_rightmost(self):
        tree = SegmentTree(8)
        for index, value in enumerate([5, 3, 9, 3, 7, 10, 3, 8]):
            tree.update(index, value)
        assert tree.argleq(3) == 6
        assert tree.argleq(2) is None
        assert tree.argleq(100) == 7

    def test_clearing_restores_infinity(self):
        tree = SegmentTree(8)
        tree.update(2, 4)
        tree.update(2, INF)
        assert tree.suffix_min(0) == INF
        assert tree.density == 0

    def test_items_lists_non_empty_entries(self):
        tree = SegmentTree(8)
        tree.update(1, 9)
        tree.update(6, 2)
        assert tree.items() == [(1, 9), (6, 2)]

    @pytest.mark.parametrize("seed", range(3))
    def test_randomised_against_naive(self, seed):
        rng = random.Random(seed)
        tree = SegmentTree(32)
        reference = NaiveSuffixMinima(32)
        for _ in range(400):
            index = rng.randrange(32)
            value = rng.choice([INF, rng.randrange(100)])
            tree.update(index, value)
            reference.update(index, value)
            query = rng.randrange(32)
            assert tree.suffix_min(query) == reference.suffix_min(query)
            threshold = rng.randrange(110)
            assert tree.argleq(threshold) == reference.argleq(threshold)
