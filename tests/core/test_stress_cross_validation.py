"""Randomised stress tests cross-validating every backend on larger DAGs.

These complement the hypothesis properties with longer operation sequences
(hundreds of edges and queries per run) at a handful of fixed seeds, so
regressions in any backend's bookkeeping show up even if they only manifest
after many operations.
"""

import random

import pytest

from repro.core import (
    CSST,
    GraphOrder,
    IncrementalCSST,
    SegmentTreeOrder,
    VectorClockOrder,
)


def _random_node(rng, num_chains, per_chain):
    return (rng.randrange(num_chains), rng.randrange(per_chain))


def _random_cross_pair(rng, num_chains, per_chain):
    source = _random_node(rng, num_chains, per_chain)
    target_chain = (source[0] + rng.randrange(1, num_chains)) % num_chains
    return source, (target_chain, rng.randrange(per_chain))


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("num_chains, per_chain", [(3, 40), (6, 25), (10, 12)])
def test_incremental_backends_agree_on_long_runs(seed, num_chains, per_chain):
    rng = random.Random(seed * 1000 + num_chains)
    reference = GraphOrder(num_chains)
    backends = [
        IncrementalCSST(num_chains, 8),
        SegmentTreeOrder(num_chains, 8),
        VectorClockOrder(num_chains, 8),
        CSST(num_chains, 8),
    ]
    inserted = set()
    for _ in range(200):
        source, target = _random_cross_pair(rng, num_chains, per_chain)
        if (source, target) not in inserted and not reference.reachable(target, source):
            inserted.add((source, target))
            reference.insert_edge(source, target)
            for backend in backends:
                backend.insert_edge(source, target)
        query_source = _random_node(rng, num_chains, per_chain)
        query_target = _random_node(rng, num_chains, per_chain)
        expected = reference.reachable(query_source, query_target)
        expected_successor = reference.successor(query_source, query_target[0])
        expected_predecessor = reference.predecessor(query_source, query_target[0])
        for backend in backends:
            name = type(backend).__name__
            assert backend.reachable(query_source, query_target) == expected, name
            assert backend.successor(query_source, query_target[0]) == expected_successor, name
            assert backend.predecessor(query_source, query_target[0]) == expected_predecessor, name


@pytest.mark.parametrize("seed", [11, 12, 13])
def test_fully_dynamic_backends_agree_under_churn(seed):
    num_chains, per_chain = 5, 20
    rng = random.Random(seed)
    reference = GraphOrder(num_chains)
    csst = CSST(num_chains, 8)
    live = []
    live_set = set()
    for step in range(400):
        action = rng.random()
        if action < 0.35 and live:
            source, target = live.pop(rng.randrange(len(live)))
            live_set.discard((source, target))
            reference.delete_edge(source, target)
            csst.delete_edge(source, target)
        else:
            source, target = _random_cross_pair(rng, num_chains, per_chain)
            if (source, target) not in live_set and not reference.reachable(target, source):
                live.append((source, target))
                live_set.add((source, target))
                reference.insert_edge(source, target)
                csst.insert_edge(source, target)
        for _ in range(3):
            a = _random_node(rng, num_chains, per_chain)
            b = _random_node(rng, num_chains, per_chain)
            assert csst.reachable(a, b) == reference.reachable(a, b), step
            assert csst.successor(a, b[0]) == reference.successor(a, b[0]), step
            assert csst.predecessor(a, b[0]) == reference.predecessor(a, b[0]), step
    assert csst.edge_count == len(live)


@pytest.mark.parametrize("block_size", [0, 2, 32])
def test_csst_block_size_variants_agree(block_size):
    rng = random.Random(99)
    num_chains, per_chain = 4, 30
    reference = IncrementalCSST(num_chains, per_chain)
    variant = IncrementalCSST(num_chains, per_chain, block_size=block_size)
    for _ in range(150):
        source, target = _random_cross_pair(rng, num_chains, per_chain)
        if not reference.reachable(target, source):
            if not reference.reachable(source, target):
                reference.insert_edge(source, target)
                variant.insert_edge(source, target)
        a = _random_node(rng, num_chains, per_chain)
        b = _random_node(rng, num_chains, per_chain)
        assert variant.reachable(a, b) == reference.reachable(a, b)
