"""Tests for the deletable min-heap backing fully dynamic CSSTs."""

import pytest

from repro.core import DeletableMinHeap
from repro.core.interface import INF
from repro.errors import ReproError


class TestBasicOperations:
    def test_empty_heap_has_infinite_min(self):
        assert DeletableMinHeap().min() == INF

    def test_empty_heap_is_falsy(self):
        assert not DeletableMinHeap()

    def test_empty_heap_has_length_zero(self):
        assert len(DeletableMinHeap()) == 0

    def test_insert_updates_min(self):
        heap = DeletableMinHeap()
        heap.insert(7)
        assert heap.min() == 7

    def test_min_is_smallest_of_many(self):
        heap = DeletableMinHeap([9, 3, 5, 8])
        assert heap.min() == 3

    def test_constructor_accepts_iterable(self):
        heap = DeletableMinHeap(range(10, 0, -1))
        assert len(heap) == 10
        assert heap.min() == 1

    def test_length_tracks_inserts(self):
        heap = DeletableMinHeap()
        for value in (4, 2, 9):
            heap.insert(value)
        assert len(heap) == 3

    def test_contains_live_value(self):
        heap = DeletableMinHeap([1, 2, 3])
        assert 2 in heap
        assert 5 not in heap


class TestDeletion:
    def test_delete_non_minimum_keeps_min(self):
        heap = DeletableMinHeap([1, 5, 9])
        heap.delete(5)
        assert heap.min() == 1
        assert len(heap) == 2

    def test_delete_minimum_exposes_next(self):
        heap = DeletableMinHeap([1, 5, 9])
        heap.delete(1)
        assert heap.min() == 5

    def test_delete_all_values_empties_heap(self):
        heap = DeletableMinHeap([4, 2])
        heap.delete(2)
        heap.delete(4)
        assert heap.min() == INF
        assert len(heap) == 0

    def test_delete_missing_value_raises(self):
        heap = DeletableMinHeap([1])
        with pytest.raises(ReproError):
            heap.delete(2)

    def test_delete_same_value_twice_raises(self):
        heap = DeletableMinHeap([3])
        heap.delete(3)
        with pytest.raises(ReproError):
            heap.delete(3)

    def test_duplicate_values_delete_one_copy(self):
        heap = DeletableMinHeap([2, 2, 7])
        heap.delete(2)
        assert heap.min() == 2
        assert len(heap) == 2
        heap.delete(2)
        assert heap.min() == 7

    def test_reinsert_after_lazy_delete(self):
        heap = DeletableMinHeap([5, 10])
        heap.delete(10)          # lazy: 10 stays buried in the list
        heap.insert(10)          # cancels the pending deletion
        assert 10 in heap
        heap.delete(5)
        assert heap.min() == 10

    def test_contains_respects_lazy_deletion(self):
        heap = DeletableMinHeap([4, 6])
        heap.delete(6)
        assert 6 not in heap
        assert 4 in heap


class TestPopAndIteration:
    def test_pop_min_returns_values_in_order(self):
        heap = DeletableMinHeap([5, 1, 4, 2, 3])
        assert [heap.pop_min() for _ in range(5)] == [1, 2, 3, 4, 5]

    def test_pop_min_on_empty_raises(self):
        with pytest.raises(ReproError):
            DeletableMinHeap().pop_min()

    def test_pop_min_skips_deleted(self):
        heap = DeletableMinHeap([1, 2, 3])
        heap.delete(1)
        assert heap.pop_min() == 2

    def test_iteration_yields_live_values(self):
        heap = DeletableMinHeap([1, 2, 2, 3])
        heap.delete(2)
        assert sorted(heap) == [1, 2, 3]

    def test_mixed_insert_delete_sequence(self):
        heap = DeletableMinHeap()
        heap.insert(10)
        heap.insert(4)
        heap.delete(4)
        heap.insert(6)
        heap.insert(2)
        heap.delete(10)
        assert heap.min() == 2
        assert sorted(heap) == [2, 6]
