"""GrowableOrder: chain growth by rebuild-and-replay."""

import pytest

from repro.core import GrowableOrder, make_partial_order
from repro.errors import UnsupportedOperationError


class TestGrowth:
    def test_starts_small_and_grows_on_demand(self):
        order = GrowableOrder("incremental-csst", num_chains=1)
        assert order.num_chains == 1
        order.insert_edge((0, 3), (5, 1))
        assert order.num_chains >= 6
        assert order.rebuild_count == 1

    def test_growth_preserves_reachability(self):
        order = GrowableOrder("incremental-csst", num_chains=2)
        reference = make_partial_order("incremental-csst", num_chains=16,
                                       capacity_hint=64)
        edges = [((0, 1), (1, 2)), ((1, 3), (2, 0)), ((2, 1), (7, 4)),
                 ((7, 5), (3, 2)), ((3, 0), (12, 1))]
        for source, target in edges:
            order.insert_edge(source, target)
            reference.insert_edge(source, target)
        nodes = [(0, 0), (0, 1), (1, 2), (2, 1), (7, 4), (7, 5), (3, 2),
                 (12, 1), (12, 0)]
        for source in nodes:
            for target in nodes:
                assert order.reachable(source, target) == \
                    reference.reachable(source, target), (source, target)

    def test_queries_grow_chains_too(self):
        order = GrowableOrder("vc", num_chains=1)
        assert order.successor((0, 0), 9) is None
        assert order.num_chains >= 10

    def test_growth_is_amortised_doubling(self):
        order = GrowableOrder("incremental-csst", num_chains=1)
        for chain in range(1, 65):
            order.ensure_chain(chain)
        # 1 -> 2 -> 4 -> ... -> 128: seven rebuilds cover chain ids 1..64.
        assert order.rebuild_count == 7


class TestDelegation:
    def test_supports_deletion_follows_backend(self):
        assert not GrowableOrder("vc").supports_deletion
        assert GrowableOrder("csst").supports_deletion

    def test_deletion_updates_replay_log(self):
        order = GrowableOrder("csst", num_chains=4, capacity_hint=16)
        order.insert_edge((0, 1), (1, 1))
        order.insert_edge((1, 2), (2, 1))
        order.delete_edge((0, 1), (1, 1))
        assert order.edge_count == 1
        # Growth replays only the surviving edge.
        order.ensure_chain(8)
        assert not order.reachable((0, 1), (1, 1))
        assert order.reachable((1, 2), (2, 1))

    def test_deletion_unsupported_backend_raises(self):
        order = GrowableOrder("vc", num_chains=2)
        order.insert_edge((0, 1), (1, 1))
        with pytest.raises(UnsupportedOperationError):
            order.delete_edge((0, 1), (1, 1))
