"""Randomized property tests for SparseSegmentTree entry *removal*.

The original property suite exercised updates and queries but never removal
(``update(i, INF)``), which is exactly the path fully dynamic CSSTs hit when
an edge deletion empties a heap.  These properties drive randomized
insert/remove/query interleavings against the naive oracle -- including
block-node boundaries (block sizes around the capacity, 0 disables blocks)
and the pull-up cascade after removing internal entries.  The flat SST runs
through the identical machine so both implementations stay pinned.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core import (
    FlatSparseSegmentTree,
    NaiveSuffixMinima,
    SparseSegmentTree,
)
from repro.core.interface import INF

CAPACITY = 64

indexes = st.integers(min_value=0, max_value=CAPACITY - 1)
values = st.integers(min_value=0, max_value=200)
#: Block sizes straddling the block-node boundary: none, single-entry
#: blocks, sub-capacity, exactly capacity, and beyond capacity (whole tree
#: is one block).
block_sizes = st.sampled_from([0, 1, 4, CAPACITY // 2, CAPACITY, 2 * CAPACITY])

#: An operation: ("set", i, v) or ("clear", i).
operations = st.lists(
    st.one_of(
        st.tuples(st.just("set"), indexes, values),
        st.tuples(st.just("clear"), indexes),
    ),
    max_size=120,
)


def _apply(operation_list, *arrays):
    for operation in operation_list:
        if operation[0] == "set":
            _op, index, value = operation
            for array in arrays:
                array.update(index, value)
        else:
            _op, index = operation
            for array in arrays:
                array.update(index, INF)


@settings(max_examples=80, deadline=None)
@given(operations=operations, query=indexes, block_size=block_sizes)
def test_interleaved_insert_remove_matches_oracle(operations, query,
                                                  block_size):
    oracle = NaiveSuffixMinima(CAPACITY)
    sparse = SparseSegmentTree(CAPACITY, block_size=block_size)
    flat = FlatSparseSegmentTree(CAPACITY, block_size=block_size)
    _apply(operations, oracle, sparse, flat)
    assert sparse.suffix_min(query) == oracle.suffix_min(query)
    assert flat.suffix_min(query) == oracle.suffix_min(query)
    assert sparse.get(query) == oracle.get(query)
    assert flat.get(query) == oracle.get(query)
    assert sparse.density == oracle.density
    assert flat.density == oracle.density
    assert sparse.items() == oracle.items()
    assert flat.items() == oracle.items()


@settings(max_examples=60, deadline=None)
@given(operations=operations, value=values, block_size=block_sizes)
def test_argleq_after_removals_matches_oracle(operations, value, block_size):
    oracle = NaiveSuffixMinima(CAPACITY)
    sparse = SparseSegmentTree(CAPACITY, block_size=block_size)
    flat = FlatSparseSegmentTree(CAPACITY, block_size=block_size)
    _apply(operations, oracle, sparse, flat)
    assert sparse.argleq(value) == oracle.argleq(value)
    assert flat.argleq(value) == oracle.argleq(value)


@settings(max_examples=40, deadline=None)
@given(operations=operations, block_size=block_sizes)
def test_remove_everything_empties_the_tree(operations, block_size):
    sparse = SparseSegmentTree(CAPACITY, block_size=block_size)
    flat = FlatSparseSegmentTree(CAPACITY, block_size=block_size)
    touched = set()
    for operation in operations:
        if operation[0] == "set":
            _op, index, value = operation
            sparse.update(index, value)
            flat.update(index, value)
            touched.add(index)
    for index in touched:
        sparse.update(index, INF)
        flat.update(index, INF)
    assert sparse.density == 0
    assert flat.density == 0
    assert sparse.node_count == 0
    assert flat.node_count == 0
    assert sparse.suffix_min(0) == INF
    assert flat.suffix_min(0) == INF


class RemovalMachine(RuleBasedStateMachine):
    """Stateful interleaving of set/clear/query against the oracle."""

    def __init__(self):
        super().__init__()
        self.oracle = NaiveSuffixMinima(CAPACITY)
        self.sparse = SparseSegmentTree(CAPACITY, block_size=4)
        self.flat = FlatSparseSegmentTree(CAPACITY, block_size=4)

    @rule(index=indexes, value=values)
    def set_entry(self, index, value):
        for array in (self.oracle, self.sparse, self.flat):
            array.update(index, value)

    @rule(index=indexes)
    def clear_entry(self, index):
        for array in (self.oracle, self.sparse, self.flat):
            array.update(index, INF)

    @rule(index=indexes)
    def query_suffix(self, index):
        expected = self.oracle.suffix_min(index)
        assert self.sparse.suffix_min(index) == expected
        assert self.flat.suffix_min(index) == expected

    @rule(value=values)
    def query_argleq(self, value):
        expected = self.oracle.argleq(value)
        assert self.sparse.argleq(value) == expected
        assert self.flat.argleq(value) == expected

    @invariant()
    def densities_agree(self):
        assert self.sparse.density == self.oracle.density
        assert self.flat.density == self.oracle.density

    @invariant()
    def entries_agree(self):
        expected = self.oracle.items()
        assert self.sparse.items() == expected
        assert self.flat.items() == expected


TestRemovalMachine = RemovalMachine.TestCase
TestRemovalMachine.settings = settings(max_examples=30,
                                       stateful_step_count=40,
                                       deadline=None)
