"""Tests for the backend factory and the instrumentation wrapper."""

import pytest

from repro.core import (
    BACKENDS,
    CSST,
    DYNAMIC_BACKENDS,
    INCREMENTAL_BACKENDS,
    GraphOrder,
    IncrementalCSST,
    InstrumentedOrder,
    SegmentTreeOrder,
    VectorClockOrder,
    make_partial_order,
)
from repro.errors import ReproError


class TestFactory:
    @pytest.mark.parametrize("kind, expected", [
        ("csst", CSST),
        ("incremental-csst", IncrementalCSST),
        ("st", SegmentTreeOrder),
        ("vc", VectorClockOrder),
        ("graph", GraphOrder),
    ])
    def test_factory_builds_expected_class(self, kind, expected):
        order = make_partial_order(kind, num_chains=3, capacity_hint=8)
        assert isinstance(order, expected)
        assert order.num_chains == 3

    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError, match="unknown partial-order backend"):
            make_partial_order("treeclock", 2)

    def test_extra_kwargs_forwarded(self):
        order = make_partial_order("csst", 2, block_size=8)
        order.insert_edge((0, 1), (1, 1))
        assert order.reachable((0, 0), (1, 3))

    def test_backend_name_groups_are_consistent(self):
        assert set(INCREMENTAL_BACKENDS) <= set(BACKENDS)
        assert set(DYNAMIC_BACKENDS) <= set(BACKENDS)
        for name in DYNAMIC_BACKENDS:
            assert BACKENDS[name].supports_deletion
        for name in INCREMENTAL_BACKENDS:
            assert not BACKENDS[name].supports_deletion or name == "csst"


class TestInstrumentedOrder:
    def test_counts_inserts_and_queries(self):
        wrapped = InstrumentedOrder(IncrementalCSST(3, 8))
        wrapped.insert_edge((0, 1), (1, 2))
        wrapped.reachable((0, 0), (1, 5))
        wrapped.successor((0, 0), 1)
        wrapped.predecessor((1, 5), 0)
        assert wrapped.insert_count == 1
        assert wrapped.query_count == 3
        assert wrapped.operation_count == 4

    def test_counts_deletions(self):
        wrapped = InstrumentedOrder(CSST(3, 8))
        wrapped.insert_edge((0, 1), (1, 2))
        wrapped.delete_edge((0, 1), (1, 2))
        assert wrapped.delete_count == 1

    def test_delegates_results(self):
        wrapped = InstrumentedOrder(IncrementalCSST(3, 8))
        wrapped.insert_edge((0, 1), (1, 2))
        assert wrapped.reachable((0, 1), (1, 2))
        assert wrapped.successor((0, 1), 1) == 2
        assert wrapped.predecessor((1, 2), 0) == 1

    def test_exposes_deletion_support_of_delegate(self):
        assert InstrumentedOrder(CSST(2)).supports_deletion
        assert not InstrumentedOrder(VectorClockOrder(2)).supports_deletion

    def test_delegate_accessor(self):
        inner = IncrementalCSST(2, 8)
        assert InstrumentedOrder(inner).delegate is inner
