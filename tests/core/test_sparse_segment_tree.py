"""Tests specific to the Sparse Segment Tree (Section 3.2 of the paper):
sparse representation, minima indexing, block nodes, and the height bound of
Lemma 1."""

import math
import random

import pytest

from repro.core import SparseSegmentTree
from repro.core.interface import INF
from repro.errors import InvalidNodeError


class TestSparseRepresentation:
    def test_single_entry_creates_single_node(self):
        tree = SparseSegmentTree(8, block_size=0)
        tree.update(2, 65)
        assert tree.node_count == 1
        assert tree.height == 1

    def test_two_entries_create_two_nodes(self):
        """Figure 6f of the paper: the root holds the new minimum and the
        displaced entry moves into a child node."""
        tree = SparseSegmentTree(8, block_size=0)
        tree.update(2, 65)
        tree.update(3, 42)
        assert tree.node_count == 2
        assert tree.suffix_min(0) == 42
        assert tree.suffix_min(3) == 42
        assert tree.get(2) == 65

    def test_figure6_sequence(self):
        """The full update sequence of Figure 6 (values 65, 42, 59, 13)."""
        tree = SparseSegmentTree(8, block_size=0)
        tree.update(2, 65)
        tree.update(3, 42)
        tree.update(0, 59)
        tree.update(7, 13)
        assert tree.suffix_min(0) == 13
        assert tree.suffix_min(4) == 13
        assert tree.suffix_min(3) == 13
        assert tree.argleq(42) == 7
        assert tree.argleq(13) == 7
        assert tree.density == 4

    def test_node_count_tracks_density_without_blocks(self):
        tree = SparseSegmentTree(64, block_size=0)
        for index in (3, 17, 60, 33, 5):
            tree.update(index, index * 2)
        assert tree.node_count == 5

    def test_empty_entries_cost_no_nodes(self):
        dense_equivalent = 2 * 1024
        tree = SparseSegmentTree(1024, block_size=0)
        tree.update(1000, 1)
        tree.update(3, 2)
        assert tree.node_count < dense_equivalent / 100


class TestHeightBound:
    """Lemma 1: the height is bounded by min(log n, d)."""

    @pytest.mark.parametrize("seed", range(5))
    def test_height_bounded_by_density_and_log(self, seed):
        rng = random.Random(seed)
        capacity = 256
        tree = SparseSegmentTree(capacity, block_size=0)
        log_bound = int(math.log2(capacity)) + 1
        for _ in range(100):
            tree.update(rng.randrange(capacity), rng.randrange(1000))
            assert tree.height <= min(log_bound, max(tree.density, 1))

    def test_height_shrinks_when_entries_cleared(self):
        tree = SparseSegmentTree(64, block_size=0)
        for index in range(20):
            tree.update(index, 100 - index)
        for index in range(19):
            tree.update(index, INF)
        assert tree.density == 1
        assert tree.height == 1

    def test_dense_array_height_is_logarithmic(self):
        capacity = 128
        tree = SparseSegmentTree(capacity, block_size=0)
        for index in range(capacity):
            tree.update(index, index)
        assert tree.height <= int(math.log2(capacity)) + 1


class TestBlockNodes:
    def test_block_node_flattens_small_ranges(self):
        """Figure 7: a dense far-away cluster collapses into one block node."""
        tree = SparseSegmentTree(64, block_size=8)
        for index in range(32, 40):
            tree.update(index, 100 - index)
        without_blocks = SparseSegmentTree(64, block_size=0)
        for index in range(32, 40):
            without_blocks.update(index, 100 - index)
        assert tree.node_count < without_blocks.node_count

    def test_block_node_queries_match_reference(self):
        tree = SparseSegmentTree(64, block_size=8)
        values = {33: 10, 34: 15, 36: 13, 37: 22, 38: 24, 39: 29, 1: 50}
        for index, value in values.items():
            tree.update(index, value)
        assert tree.suffix_min(34) == 13
        assert tree.suffix_min(0) == 10
        assert tree.argleq(20) == 36
        assert tree.argleq(10) == 33

    def test_block_node_deletion(self):
        tree = SparseSegmentTree(32, block_size=32)
        tree.update(3, 5)
        tree.update(4, 6)
        tree.update(3, INF)
        assert tree.get(3) == INF
        assert tree.suffix_min(0) == 6

    def test_block_size_property(self):
        assert SparseSegmentTree(8, block_size=16).block_size == 16

    def test_negative_block_size_rejected(self):
        with pytest.raises(InvalidNodeError):
            SparseSegmentTree(8, block_size=-1)

    def test_block_only_tree(self):
        """With block_size >= capacity the whole tree is one block."""
        tree = SparseSegmentTree(16, block_size=32)
        for index in range(16):
            tree.update(index, 16 - index)
        assert tree.node_count == 1
        assert tree.suffix_min(10) == 1
        assert tree.argleq(3) == 15


class TestMinimaIndexingAblation:
    def test_results_identical_with_and_without_indexing(self):
        rng = random.Random(99)
        indexed = SparseSegmentTree(128, minima_indexing=True)
        unindexed = SparseSegmentTree(128, minima_indexing=False)
        for _ in range(300):
            index = rng.randrange(128)
            value = rng.choice([INF, rng.randrange(500)])
            indexed.update(index, value)
            unindexed.update(index, value)
            query = rng.randrange(128)
            assert indexed.suffix_min(query) == unindexed.suffix_min(query)
            threshold = rng.randrange(500)
            assert indexed.argleq(threshold) == unindexed.argleq(threshold)


class TestOverwriteSemantics:
    def test_decreasing_update(self):
        tree = SparseSegmentTree(16)
        tree.update(4, 10)
        tree.update(4, 2)
        assert tree.get(4) == 2
        assert tree.suffix_min(0) == 2
        assert tree.density == 1

    def test_increasing_update(self):
        tree = SparseSegmentTree(16)
        tree.update(4, 2)
        tree.update(9, 5)
        tree.update(4, 10)
        assert tree.get(4) == 10
        assert tree.suffix_min(0) == 5

    def test_same_value_update_is_noop(self):
        tree = SparseSegmentTree(16)
        tree.update(4, 2)
        tree.update(4, 2)
        assert tree.density == 1
        assert tree.get(4) == 2

    def test_clearing_missing_entry_is_noop(self):
        tree = SparseSegmentTree(16)
        tree.update(3, INF)
        assert tree.density == 0

    def test_interleaved_insert_delete_stays_consistent(self):
        rng = random.Random(5)
        tree = SparseSegmentTree(64, block_size=4)
        reference = {}
        for _ in range(500):
            index = rng.randrange(64)
            if rng.random() < 0.3:
                reference.pop(index, None)
                tree.update(index, INF)
            else:
                value = rng.randrange(200)
                reference[index] = value
                tree.update(index, value)
            query = rng.randrange(64)
            expected = min(
                (v for i, v in reference.items() if i >= query), default=INF
            )
            assert tree.suffix_min(query) == expected
            assert tree.density == len(reference)
