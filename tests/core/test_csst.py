"""Tests specific to the fully dynamic CSST (Algorithm 2)."""

import pytest

from repro.core import CSST, GraphOrder
from repro.errors import InvalidEdgeError


class TestEdgeHeaps:
    def test_edge_count_tracks_live_edges(self):
        order = CSST(3, 8)
        order.insert_edge((0, 1), (1, 2))
        order.insert_edge((0, 1), (1, 5))
        assert order.edge_count == 2
        order.delete_edge((0, 1), (1, 2))
        assert order.edge_count == 1

    def test_earliest_target_is_exposed(self):
        order = CSST(3, 8)
        order.insert_edge((0, 1), (1, 5))
        order.insert_edge((0, 1), (1, 2))
        assert order.successor((0, 1), 1) == 2

    def test_deleting_minimum_exposes_next_target(self):
        """The motivating scenario of Section 3.1: deleting the earliest
        neighbour must fall back to the next one recorded in the heap."""
        order = CSST(3, 8)
        order.insert_edge((0, 1), (1, 2))
        order.insert_edge((0, 1), (1, 5))
        order.delete_edge((0, 1), (1, 2))
        assert order.successor((0, 1), 1) == 5
        order.delete_edge((0, 1), (1, 5))
        assert order.successor((0, 1), 1) is None

    def test_deleting_non_minimum_keeps_minimum(self):
        order = CSST(3, 8)
        order.insert_edge((0, 1), (1, 2))
        order.insert_edge((0, 1), (1, 5))
        order.delete_edge((0, 1), (1, 5))
        assert order.successor((0, 1), 1) == 2

    def test_deleting_unknown_edge_raises(self):
        order = CSST(3, 8)
        order.insert_edge((0, 1), (1, 2))
        with pytest.raises(InvalidEdgeError):
            order.delete_edge((0, 1), (1, 3))

    def test_parallel_edges_from_same_source(self):
        order = CSST(4, 8)
        order.insert_edge((0, 1), (1, 3))
        order.insert_edge((0, 1), (2, 4))
        order.insert_edge((0, 1), (3, 5))
        assert order.successor((0, 1), 1) == 3
        assert order.successor((0, 1), 2) == 4
        assert order.successor((0, 1), 3) == 5


class TestMotivatingExample:
    """The consistency-analysis scenario of Figure 1: orderings are inserted,
    found to close a cycle, deleted, and replaced by an alternative."""

    def _base_order(self):
        # Chains: 0, 1, 2 with the reads-from edges of Figure 1a.
        order = CSST(3, 8)
        order.insert_edge((1, 2), (0, 1))    # e5 -> e1 (rf on y=5)
        order.insert_edge((1, 1), (2, 1))    # e4 -> en (rf on y=4), en is (2,1)
        return order

    def test_first_choice_would_close_cycle(self):
        order = self._base_order()
        # Try e3 |-> e2: insert e3 -> e2 and the saturation edges.
        order.insert_edge((1, 0), (0, 2))    # edge 2
        order.insert_edge((0, 0), (1, 0))    # edge 3 (e0 before e3)
        order.insert_edge((2, 0), (1, 0))    # edge 4 (e6 before e3)
        # The cycle of Section 1.1: e2 -> e6 ->* en -> e5 -> e1 -> e2 requires
        # e2 -> e6; with the current orderings e6 already reaches e2.
        assert order.reachable((2, 0), (0, 2))

    def test_deleting_the_speculative_orderings_restores_state(self):
        order = self._base_order()
        speculative = [((1, 0), (0, 2)), ((0, 0), (1, 0)), ((2, 0), (1, 0))]
        for source, target in speculative:
            order.insert_edge(source, target)
        for source, target in speculative:
            order.delete_edge(source, target)
        assert not order.reachable((2, 0), (0, 2))
        assert not order.reachable((0, 0), (1, 0))
        # The original reads-from orderings are untouched.
        assert order.reachable((1, 2), (0, 1))

    def test_alternative_choice_is_consistent(self):
        order = self._base_order()
        order.insert_edge((2, 0), (0, 2))    # edge 5: e6 -> e2
        order.insert_edge((1, 0), (2, 0))    # edge 6: e3 before e6
        assert order.reachable((1, 0), (0, 2))
        assert not order.reachable((0, 2), (1, 0))


class TestClosureQueries:
    def test_query_uses_fixed_point_across_chains(self):
        order = CSST(4, 8)
        # A chain of edges that must be followed iteratively (Figure 8).
        order.insert_edge((0, 0), (1, 0))
        order.insert_edge((0, 1), (3, 2))
        order.insert_edge((1, 1), (2, 1))
        order.insert_edge((2, 1), (3, 1))
        assert order.successor((0, 0), 3) == 1
        assert order.predecessor((3, 1), 0) == 0

    def test_predecessor_closure_symmetry(self):
        order = CSST(3, 8)
        order.insert_edge((0, 2), (1, 3))
        order.insert_edge((1, 4), (2, 1))
        assert order.predecessor((2, 5), 0) == 2
        assert order.predecessor((2, 0), 0) is None

    def test_deletion_invalidates_transitive_paths(self):
        order = CSST(3, 8)
        order.insert_edge((0, 2), (1, 3))
        order.insert_edge((1, 4), (2, 1))
        assert order.reachable((0, 2), (2, 6))
        order.delete_edge((1, 4), (2, 1))
        assert not order.reachable((0, 2), (2, 6))
        assert order.reachable((0, 2), (1, 7))

    def test_matches_graph_reference_on_small_scenario(self):
        reference = GraphOrder(3)
        order = CSST(3, 16)
        edges = [((0, 1), (1, 2)), ((1, 3), (2, 0)), ((2, 2), (0, 5)),
                 ((1, 5), (0, 9)), ((0, 6), (2, 9))]
        for source, target in edges:
            reference.insert_edge(source, target)
            order.insert_edge(source, target)
        for chain in range(3):
            for index in range(10):
                for other in range(3):
                    assert (
                        order.successor((chain, index), other)
                        == reference.successor((chain, index), other)
                    )


class TestIntrospection:
    def test_total_entries_bounded_by_edges(self):
        order = CSST(3, 32)
        edges = [((0, i), (1, i + 1)) for i in range(0, 10, 2)]
        for source, target in edges:
            order.insert_edge(source, target)
        assert order.total_entries <= len(edges)
        assert order.max_array_density <= len(edges)

    def test_block_size_parameter_accepted(self):
        order = CSST(3, 32, block_size=4)
        order.insert_edge((0, 1), (1, 1))
        assert order.reachable((0, 0), (1, 4))
