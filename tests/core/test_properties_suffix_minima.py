"""Property-based tests (hypothesis) for the suffix-minima structures.

The naive dictionary implementation acts as the oracle; the dense and sparse
segment trees must agree with it on every operation sequence, and the sparse
tree must additionally respect the structural invariants of Lemma 1.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core import NaiveSuffixMinima, SegmentTree, SparseSegmentTree
from repro.core.interface import INF

CAPACITY = 64

indexes = st.integers(min_value=0, max_value=CAPACITY - 1)
values = st.one_of(st.integers(min_value=0, max_value=200), st.just(INF))
operations = st.lists(st.tuples(indexes, values), max_size=80)
block_sizes = st.sampled_from([0, 1, 4, 32, 128])


def _apply(operations_list, *arrays):
    for index, value in operations_list:
        for array in arrays:
            array.update(index, value)


@settings(max_examples=60, deadline=None)
@given(operations=operations, query=indexes, block_size=block_sizes)
def test_suffix_min_agrees_with_oracle(operations, query, block_size):
    oracle = NaiveSuffixMinima(CAPACITY)
    sparse = SparseSegmentTree(CAPACITY, block_size=block_size)
    dense = SegmentTree(CAPACITY)
    _apply(operations, oracle, sparse, dense)
    expected = oracle.suffix_min(query)
    assert sparse.suffix_min(query) == expected
    assert dense.suffix_min(query) == expected


@settings(max_examples=60, deadline=None)
@given(operations=operations,
       threshold=st.integers(min_value=-1, max_value=250),
       block_size=block_sizes)
def test_argleq_agrees_with_oracle(operations, threshold, block_size):
    oracle = NaiveSuffixMinima(CAPACITY)
    sparse = SparseSegmentTree(CAPACITY, block_size=block_size)
    dense = SegmentTree(CAPACITY)
    _apply(operations, oracle, sparse, dense)
    expected = oracle.argleq(threshold)
    assert sparse.argleq(threshold) == expected
    assert dense.argleq(threshold) == expected


@settings(max_examples=60, deadline=None)
@given(operations=operations, block_size=block_sizes)
def test_density_and_items_agree_with_oracle(operations, block_size):
    oracle = NaiveSuffixMinima(CAPACITY)
    sparse = SparseSegmentTree(CAPACITY, block_size=block_size)
    _apply(operations, oracle, sparse)
    assert sparse.density == oracle.density
    assert sparse.items() == oracle.items()


@settings(max_examples=60, deadline=None)
@given(operations=operations)
def test_sparse_tree_height_respects_lemma1(operations):
    sparse = SparseSegmentTree(CAPACITY, block_size=0)
    _apply(operations, sparse)
    log_bound = int(math.log2(CAPACITY)) + 1
    if sparse.density == 0:
        assert sparse.height == 0
    else:
        assert sparse.height <= min(log_bound, sparse.density)


@settings(max_examples=40, deadline=None)
@given(operations=operations)
def test_minima_indexing_is_pure_optimisation(operations):
    indexed = SparseSegmentTree(CAPACITY, minima_indexing=True)
    unindexed = SparseSegmentTree(CAPACITY, minima_indexing=False)
    _apply(operations, indexed, unindexed)
    for query in range(0, CAPACITY, 7):
        assert indexed.suffix_min(query) == unindexed.suffix_min(query)


class SuffixMinimaMachine(RuleBasedStateMachine):
    """Stateful comparison of the sparse tree against the oracle."""

    def __init__(self):
        super().__init__()
        self.oracle = NaiveSuffixMinima(CAPACITY)
        self.tree = SparseSegmentTree(CAPACITY, block_size=4)

    @rule(index=indexes, value=values)
    def update(self, index, value):
        self.oracle.update(index, value)
        self.tree.update(index, value)

    @rule(index=indexes)
    def check_suffix_min(self, index):
        assert self.tree.suffix_min(index) == self.oracle.suffix_min(index)

    @rule(threshold=st.integers(min_value=0, max_value=220))
    def check_argleq(self, threshold):
        assert self.tree.argleq(threshold) == self.oracle.argleq(threshold)

    @rule(index=indexes)
    def check_get(self, index):
        assert self.tree.get(index) == self.oracle.get(index)

    @invariant()
    def densities_match(self):
        assert self.tree.density == self.oracle.density


TestSuffixMinimaStateMachine = SuffixMinimaMachine.TestCase
TestSuffixMinimaStateMachine.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
