"""Tests specific to incremental CSSTs (Algorithm 3) and the Segment Tree
baseline that shares their transitive-closure logic."""

import pytest

from repro.core import GraphOrder, IncrementalCSST, SegmentTreeOrder
from repro.errors import UnsupportedOperationError


@pytest.fixture(params=["incremental-csst", "segment-tree"])
def incremental_order(request):
    cls = IncrementalCSST if request.param == "incremental-csst" else SegmentTreeOrder
    return cls(4, 16)


class TestTransitiveClosure:
    def test_insert_closes_across_all_chain_pairs(self, incremental_order):
        """Example 7 / Figure 9 of the paper."""
        incremental_order.insert_edge((0, 1), (1, 0))
        incremental_order.insert_edge((2, 0), (3, 2))
        incremental_order.insert_edge((1, 1), (2, 0))
        # The transitive edge (0,1) ->* (3,2) must now be answerable with a
        # single suffix-minima query.
        assert incremental_order.reachable((0, 1), (3, 2))
        assert incremental_order.successor((0, 1), 3) == 2
        assert incremental_order.predecessor((3, 2), 0) == 1

    def test_insertion_order_does_not_matter(self):
        edges = [((0, 1), (1, 0)), ((1, 1), (2, 0)), ((2, 0), (3, 2))]
        first = IncrementalCSST(4, 8)
        second = IncrementalCSST(4, 8)
        for source, target in edges:
            first.insert_edge(source, target)
        for source, target in reversed(edges):
            second.insert_edge(source, target)
        for chain in range(4):
            for index in range(4):
                for other in range(4):
                    assert (
                        first.successor((chain, index), other)
                        == second.successor((chain, index), other)
                    )

    def test_redundant_edge_adds_no_entries(self, incremental_order):
        incremental_order.insert_edge((0, 1), (1, 5))
        before = incremental_order.total_entries
        # An edge that is already implied transitively (later source, later
        # target) must not add information.
        incremental_order.insert_edge((0, 2), (1, 9))
        assert incremental_order.reachable((0, 2), (1, 9))
        assert incremental_order.total_entries >= before

    def test_edge_count_property(self, incremental_order):
        incremental_order.insert_edge((0, 1), (1, 5))
        incremental_order.insert_edge((1, 1), (2, 5))
        assert incremental_order.edge_count == 2

    def test_deletion_unsupported(self, incremental_order):
        incremental_order.insert_edge((0, 1), (1, 5))
        with pytest.raises(UnsupportedOperationError):
            incremental_order.delete_edge((0, 1), (1, 5))


class TestAgainstReference:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_dags_match_graph_reference(self, seed, rng, incremental_order):
        import random

        local = random.Random(seed)
        reference = GraphOrder(4)
        for _ in range(40):
            source_chain = local.randrange(4)
            target_chain = (source_chain + local.randrange(1, 4)) % 4
            source = (source_chain, local.randrange(12))
            target = (target_chain, local.randrange(12))
            if reference.reachable(target, source):
                continue
            reference.insert_edge(source, target)
            incremental_order.insert_edge(source, target)
        for _ in range(60):
            a = (local.randrange(4), local.randrange(12))
            b = (local.randrange(4), local.randrange(12))
            assert incremental_order.reachable(a, b) == reference.reachable(a, b)


class TestSparsity:
    def test_transitive_entries_only_at_cross_edge_sources(self):
        """Lemma 7: entries are only ever written at indices that already
        have an outgoing cross-chain edge."""
        order = IncrementalCSST(4, 64)
        edges = [((0, 10), (1, 20)), ((1, 30), (2, 40)), ((2, 50), (3, 60))]
        for source, target in edges:
            order.insert_edge(source, target)
        source_indices = {}
        for source, _target in edges:
            source_indices.setdefault(source[0], set()).add(source[1])
        for (source_chain, _target_chain), array in order._iter_arrays():
            entry_indices = {index for index, _value in array.items()}
            assert entry_indices <= source_indices.get(source_chain, set())

    def test_max_array_density_bounded_by_sources(self):
        order = IncrementalCSST(3, 64)
        for index in range(0, 20, 2):
            order.insert_edge((0, index), (1, index + 1))
        assert order.max_array_density <= 10

    def test_capacity_hint_grows_transparently(self):
        order = IncrementalCSST(3, 4)
        order.insert_edge((0, 100), (1, 200))
        assert order.reachable((0, 50), (1, 300))
