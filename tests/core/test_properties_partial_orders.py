"""Property-based tests for the partial-order backends.

Every backend must agree with the plain-graph reference on reachability,
successor and predecessor queries for arbitrary acyclic edge insertions
(and deletions, for the fully dynamic backends), and the CSST variants must
respect the sparsity invariants of Lemmas 2 and 7.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CSST,
    GraphOrder,
    IncrementalCSST,
    SegmentTreeOrder,
    VectorClockOrder,
)

NUM_CHAINS = 4
PER_CHAIN = 12

nodes = st.tuples(
    st.integers(min_value=0, max_value=NUM_CHAINS - 1),
    st.integers(min_value=0, max_value=PER_CHAIN - 1),
)
edge_candidates = st.lists(st.tuples(nodes, nodes), max_size=40)
query_nodes = st.lists(st.tuples(nodes, nodes), min_size=1, max_size=15)


def _build(edges, *orders):
    """Insert candidate edges, skipping intra-chain, duplicate, and
    cycle-creating ones (the reference order is the first argument)."""
    reference = orders[0]
    inserted = set()
    for source, target in edges:
        if source[0] == target[0] or (source, target) in inserted:
            continue
        if reference.reachable(target, source):
            continue
        inserted.add((source, target))
        for order in orders:
            order.insert_edge(source, target)
    return inserted


@settings(max_examples=60, deadline=None)
@given(edges=edge_candidates, queries=query_nodes)
def test_incremental_backends_agree_on_reachability(edges, queries):
    reference = GraphOrder(NUM_CHAINS)
    backends = [
        IncrementalCSST(NUM_CHAINS, PER_CHAIN),
        SegmentTreeOrder(NUM_CHAINS, PER_CHAIN),
        VectorClockOrder(NUM_CHAINS, PER_CHAIN),
        CSST(NUM_CHAINS, PER_CHAIN),
    ]
    _build(edges, reference, *backends)
    for source, target in queries:
        expected = reference.reachable(source, target)
        for backend in backends:
            assert backend.reachable(source, target) == expected


@settings(max_examples=60, deadline=None)
@given(edges=edge_candidates, queries=query_nodes)
def test_incremental_backends_agree_on_successor_predecessor(edges, queries):
    reference = GraphOrder(NUM_CHAINS)
    backends = [
        IncrementalCSST(NUM_CHAINS, PER_CHAIN),
        SegmentTreeOrder(NUM_CHAINS, PER_CHAIN),
        VectorClockOrder(NUM_CHAINS, PER_CHAIN),
        CSST(NUM_CHAINS, PER_CHAIN),
    ]
    _build(edges, reference, *backends)
    for node, (chain, _ignored) in queries:
        expected_successor = reference.successor(node, chain)
        expected_predecessor = reference.predecessor(node, chain)
        for backend in backends:
            assert backend.successor(node, chain) == expected_successor
            assert backend.predecessor(node, chain) == expected_predecessor


@settings(max_examples=60, deadline=None)
@given(edges=edge_candidates,
       deletions=st.lists(st.integers(min_value=0, max_value=200), max_size=20),
       queries=query_nodes)
def test_fully_dynamic_backends_agree_after_deletions(edges, deletions, queries):
    reference = GraphOrder(NUM_CHAINS)
    csst = CSST(NUM_CHAINS, PER_CHAIN)
    inserted = sorted(_build(edges, reference, csst))
    for position in deletions:
        if not inserted:
            break
        source, target = inserted.pop(position % len(inserted))
        reference.delete_edge(source, target)
        csst.delete_edge(source, target)
    for source, target in queries:
        assert csst.reachable(source, target) == reference.reachable(source, target)
        assert csst.successor(source, target[0]) == reference.successor(source, target[0])
        assert csst.predecessor(source, target[0]) == reference.predecessor(source, target[0])


@settings(max_examples=60, deadline=None)
@given(edges=edge_candidates)
def test_csst_sparsity_lemmas(edges):
    """Lemmas 2 and 7: the density of every per-chain-pair array is bounded
    by the cross-chain density of the DAG (number of source nodes with an
    outgoing cross-chain edge, maximised over chains)."""
    reference = GraphOrder(NUM_CHAINS)
    dynamic = CSST(NUM_CHAINS, PER_CHAIN)
    incremental = IncrementalCSST(NUM_CHAINS, PER_CHAIN)
    inserted = _build(edges, reference, dynamic, incremental)
    sources_per_chain = {}
    for source, _target in inserted:
        sources_per_chain.setdefault(source[0], set()).add(source)
    cross_chain_density = max(
        (len(sources) for sources in sources_per_chain.values()), default=0
    )
    assert dynamic.max_array_density <= cross_chain_density
    assert incremental.max_array_density <= cross_chain_density


@settings(max_examples=40, deadline=None)
@given(edges=edge_candidates)
def test_reachability_is_transitive_and_reflexive(edges):
    order = IncrementalCSST(NUM_CHAINS, PER_CHAIN)
    reference = GraphOrder(NUM_CHAINS)
    inserted = _build(edges, reference, order)
    sample_nodes = sorted({node for edge in inserted for node in edge})
    for node in sample_nodes:
        assert order.reachable(node, node)
    for a in sample_nodes[:6]:
        for b in sample_nodes[:6]:
            for c in sample_nodes[:6]:
                if order.reachable(a, b) and order.reachable(b, c):
                    assert order.reachable(a, c)
