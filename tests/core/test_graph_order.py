"""Tests specific to the plain graph baseline."""

import pytest

from repro.core import GraphOrder
from repro.errors import InvalidEdgeError


class TestQueries:
    def test_dfs_follows_program_order_and_edges(self):
        order = GraphOrder(3)
        order.insert_edge((0, 2), (1, 4))
        order.insert_edge((1, 6), (2, 1))
        assert order.reachable((0, 0), (2, 8))
        assert not order.reachable((2, 0), (0, 0))

    def test_successor_scans_closure(self):
        order = GraphOrder(3)
        order.insert_edge((0, 2), (1, 4))
        order.insert_edge((1, 6), (2, 1))
        assert order.successor((0, 0), 2) == 1
        assert order.successor((0, 3), 2) is None

    def test_predecessor_scans_reverse_closure(self):
        order = GraphOrder(3)
        order.insert_edge((0, 2), (1, 4))
        order.insert_edge((1, 6), (2, 1))
        assert order.predecessor((2, 3), 0) == 2
        assert order.predecessor((1, 3), 0) is None

    def test_diamond_shape(self):
        order = GraphOrder(4)
        order.insert_edge((0, 0), (1, 1))
        order.insert_edge((0, 0), (2, 1))
        order.insert_edge((1, 2), (3, 3))
        order.insert_edge((2, 2), (3, 2))
        assert order.successor((0, 0), 3) == 2
        assert order.predecessor((3, 3), 0) == 0


class TestUpdates:
    def test_delete_edge_removes_reachability(self):
        order = GraphOrder(2)
        order.insert_edge((0, 1), (1, 2))
        order.delete_edge((0, 1), (1, 2))
        assert not order.reachable((0, 0), (1, 5))

    def test_delete_missing_edge_raises(self):
        order = GraphOrder(2)
        with pytest.raises(InvalidEdgeError):
            order.delete_edge((0, 1), (1, 2))

    def test_edge_count_and_entries(self):
        order = GraphOrder(2)
        order.insert_edge((0, 1), (1, 2))
        order.insert_edge((1, 3), (0, 5))
        assert order.edge_count == 2
        assert order.total_entries == 4
        order.delete_edge((0, 1), (1, 2))
        assert order.edge_count == 1

    def test_duplicate_insertion_is_idempotent(self):
        order = GraphOrder(2)
        order.insert_edge((0, 1), (1, 2))
        order.insert_edge((0, 1), (1, 2))
        order.delete_edge((0, 1), (1, 2))
        assert not order.reachable((0, 1), (1, 2))
