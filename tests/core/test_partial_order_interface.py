"""Tests for the shared partial-order interface: validation, the derived
query helpers, and behaviours every backend must exhibit."""

import pytest

from repro.core import CSST, GraphOrder, IncrementalCSST, VectorClockOrder
from repro.errors import InvalidEdgeError, InvalidNodeError, UnsupportedOperationError


class TestValidation:
    def test_zero_chains_rejected(self, any_backend):
        with pytest.raises(InvalidNodeError):
            type(any_backend)(0)

    def test_zero_capacity_hint_rejected(self):
        with pytest.raises(InvalidNodeError):
            IncrementalCSST(2, 0)

    def test_intra_chain_edge_rejected(self, any_backend):
        with pytest.raises(InvalidEdgeError):
            any_backend.insert_edge((1, 0), (1, 5))

    def test_out_of_range_chain_rejected(self, any_backend):
        with pytest.raises(InvalidNodeError):
            any_backend.insert_edge((7, 0), (1, 5))

    def test_negative_index_rejected(self, any_backend):
        with pytest.raises(InvalidNodeError):
            any_backend.insert_edge((0, -1), (1, 5))

    def test_query_node_validation(self, any_backend):
        with pytest.raises(InvalidNodeError):
            any_backend.reachable((0, 0), (9, 0))


class TestProgramOrder:
    def test_same_chain_later_index_is_reachable(self, any_backend):
        assert any_backend.reachable((2, 1), (2, 5))

    def test_same_chain_earlier_index_is_not_reachable(self, any_backend):
        assert not any_backend.reachable((2, 5), (2, 1))

    def test_node_reaches_itself(self, any_backend):
        assert any_backend.reachable((1, 3), (1, 3))

    def test_successor_in_own_chain_is_self(self, any_backend):
        assert any_backend.successor((1, 3), 1) == 3

    def test_predecessor_in_own_chain_is_self(self, any_backend):
        assert any_backend.predecessor((1, 3), 1) == 3

    def test_no_cross_reachability_without_edges(self, any_backend):
        assert not any_backend.reachable((0, 0), (1, 10))
        assert any_backend.successor((0, 0), 1) is None
        assert any_backend.predecessor((0, 0), 1) is None


class TestSingleEdge:
    def test_edge_orders_endpoints(self, any_backend):
        any_backend.insert_edge((0, 3), (2, 7))
        assert any_backend.reachable((0, 3), (2, 7))
        assert not any_backend.reachable((2, 7), (0, 3))

    def test_edge_composes_with_program_order(self, any_backend):
        any_backend.insert_edge((0, 3), (2, 7))
        assert any_backend.reachable((0, 1), (2, 9))
        assert not any_backend.reachable((0, 4), (2, 9))
        assert not any_backend.reachable((0, 1), (2, 6))

    def test_successor_after_edge(self, any_backend):
        any_backend.insert_edge((0, 3), (2, 7))
        assert any_backend.successor((0, 2), 2) == 7
        assert any_backend.successor((0, 4), 2) is None

    def test_predecessor_after_edge(self, any_backend):
        any_backend.insert_edge((0, 3), (2, 7))
        assert any_backend.predecessor((2, 8), 0) == 3
        assert any_backend.predecessor((2, 6), 0) is None

    def test_ordered_and_concurrent_helpers(self, any_backend):
        any_backend.insert_edge((0, 3), (2, 7))
        assert any_backend.ordered((0, 3), (2, 9))
        assert any_backend.ordered((2, 7), (0, 1))
        assert any_backend.concurrent((1, 0), (2, 7))
        assert not any_backend.concurrent((0, 0), (0, 5))

    def test_insert_edges_bulk_helper(self, any_backend):
        any_backend.insert_edges([((0, 1), (1, 1)), ((1, 2), (2, 2))])
        assert any_backend.reachable((0, 1), (2, 5))


class TestTransitivity:
    def test_two_hop_path_through_intermediate_chain(self, any_backend):
        any_backend.insert_edge((0, 1), (1, 4))
        any_backend.insert_edge((1, 5), (2, 2))
        assert any_backend.reachable((0, 0), (2, 3))
        assert any_backend.successor((0, 1), 2) == 2
        assert any_backend.predecessor((2, 2), 0) == 1

    def test_three_hop_path(self, any_backend):
        any_backend.insert_edge((0, 0), (1, 1))
        any_backend.insert_edge((1, 2), (2, 3))
        any_backend.insert_edge((2, 4), (3, 5))
        assert any_backend.reachable((0, 0), (3, 8))
        assert any_backend.successor((0, 0), 3) == 5

    def test_figure8_example(self, any_backend):
        """The successor query of Figure 8: the earliest successor in chain 3
        is found only through the transitive path via chains 1 and 2."""
        any_backend.insert_edge((0, 0), (1, 0))    # edge 1
        any_backend.insert_edge((0, 1), (3, 2))    # edge 2
        any_backend.insert_edge((1, 1), (2, 1))    # edge 3
        any_backend.insert_edge((2, 1), (3, 1))    # edge 4
        assert any_backend.successor((0, 0), 3) == 1

    def test_figure9_example(self, any_backend):
        """The insertion of Figure 9: inserting (1,1) -> (2,0) creates the
        transitive path (0,1) ->* (3,2)."""
        any_backend.insert_edge((0, 1), (1, 0))
        any_backend.insert_edge((2, 0), (3, 2))
        assert not any_backend.reachable((0, 1), (3, 2))
        any_backend.insert_edge((1, 1), (2, 0))
        assert any_backend.reachable((0, 1), (3, 2))
        assert any_backend.successor((0, 1), 3) == 2
        assert any_backend.predecessor((3, 2), 0) == 1


class TestDeletionSupport:
    def test_incremental_backends_reject_deletion(self):
        for cls in (IncrementalCSST, VectorClockOrder):
            order = cls(3, 8)
            order.insert_edge((0, 1), (1, 1))
            with pytest.raises(UnsupportedOperationError):
                order.delete_edge((0, 1), (1, 1))

    def test_supports_deletion_flags(self):
        assert CSST(2).supports_deletion
        assert GraphOrder(2).supports_deletion
        assert not IncrementalCSST(2).supports_deletion
        assert not VectorClockOrder(2).supports_deletion

    def test_deleting_missing_edge_raises(self, dynamic_backend):
        with pytest.raises(InvalidEdgeError):
            dynamic_backend.delete_edge((0, 1), (1, 1))

    def test_delete_restores_unreachability(self, dynamic_backend):
        dynamic_backend.insert_edge((0, 3), (2, 7))
        dynamic_backend.delete_edge((0, 3), (2, 7))
        assert not dynamic_backend.reachable((0, 3), (2, 7))

    def test_delete_keeps_parallel_edges(self, dynamic_backend):
        dynamic_backend.insert_edge((0, 3), (2, 7))
        dynamic_backend.insert_edge((0, 3), (2, 9))
        dynamic_backend.delete_edge((0, 3), (2, 7))
        assert dynamic_backend.reachable((0, 3), (2, 9))
        assert dynamic_backend.successor((0, 3), 2) == 9

    def test_delete_and_reinsert(self, dynamic_backend):
        dynamic_backend.insert_edge((1, 2), (3, 4))
        dynamic_backend.delete_edge((1, 2), (3, 4))
        dynamic_backend.insert_edge((1, 2), (3, 4))
        assert dynamic_backend.reachable((1, 0), (3, 4))
