"""Tests specific to the Vector Clock baseline."""

import pytest

from repro.core import VectorClockOrder
from repro.errors import UnsupportedOperationError


class TestClocks:
    def test_initial_clock_contains_only_own_component(self):
        order = VectorClockOrder(3)
        assert order.clock_of((1, 4)) == [-1, 4, -1]

    def test_clock_reflects_incoming_edge(self):
        order = VectorClockOrder(3)
        order.insert_edge((0, 2), (1, 5))
        assert order.clock_of((1, 5)) == [2, 5, -1]

    def test_clock_inherited_along_program_order(self):
        order = VectorClockOrder(3)
        order.insert_edge((0, 2), (1, 5))
        assert order.clock_of((1, 9))[0] == 2
        assert order.clock_of((1, 4))[0] == -1

    def test_transitive_clock_propagation(self):
        order = VectorClockOrder(3)
        order.insert_edge((0, 2), (1, 5))
        order.insert_edge((1, 6), (2, 3))
        clock = order.clock_of((2, 3))
        assert clock[0] == 2
        assert clock[1] == 6

    def test_propagation_to_already_materialised_successors(self):
        """Inserting an edge whose target precedes existing cross-edge
        endpoints must propagate forward through them (the O(n) behaviour
        the paper describes)."""
        order = VectorClockOrder(3)
        order.insert_edge((1, 8), (2, 1))      # materialises (1, 8)
        order.insert_edge((0, 4), (1, 2))      # earlier target in chain 1
        assert order.clock_of((1, 8))[0] == 4
        assert order.clock_of((2, 1))[0] == 4

    def test_clock_monotone_along_chain(self):
        order = VectorClockOrder(2)
        order.insert_edge((0, 3), (1, 2))
        order.insert_edge((0, 7), (1, 6))
        previous = -1
        for index in range(10):
            value = order.clock_of((1, index))[0]
            assert value >= previous
            previous = value


class TestQueries:
    def test_reachability_is_clock_lookup(self):
        order = VectorClockOrder(3)
        order.insert_edge((0, 2), (1, 5))
        assert order.reachable((0, 2), (1, 5))
        assert order.reachable((0, 1), (1, 8))
        assert not order.reachable((0, 3), (1, 5))

    def test_successor_binary_search(self):
        order = VectorClockOrder(3)
        order.insert_edge((0, 2), (1, 5))
        order.insert_edge((0, 4), (1, 9))
        assert order.successor((0, 2), 1) == 5
        assert order.successor((0, 3), 1) == 9
        assert order.successor((0, 5), 1) is None

    def test_predecessor_reads_clock_entry(self):
        order = VectorClockOrder(3)
        order.insert_edge((0, 2), (1, 5))
        assert order.predecessor((1, 7), 0) == 2
        assert order.predecessor((1, 3), 0) is None

    def test_queries_beyond_materialised_frontier(self):
        order = VectorClockOrder(2)
        order.insert_edge((0, 1), (1, 1))
        assert order.reachable((0, 0), (1, 50))
        assert order.predecessor((1, 50), 0) == 1


class TestResourceAccounting:
    def test_materialised_clocks_grow_with_touched_prefix(self):
        order = VectorClockOrder(2)
        order.insert_edge((0, 9), (1, 4))
        # Chains are materialised densely up to the touched indices,
        # reflecting the O(n k) footprint of the real structure.
        assert order.materialised_clocks == 10 + 5
        assert order.total_entries == order.materialised_clocks * 2

    def test_edge_count(self):
        order = VectorClockOrder(2)
        order.insert_edge((0, 1), (1, 1))
        order.insert_edge((1, 3), (0, 4))
        assert order.edge_count == 2

    def test_deletion_unsupported(self):
        order = VectorClockOrder(2)
        order.insert_edge((0, 1), (1, 1))
        with pytest.raises(UnsupportedOperationError):
            order.delete_edge((0, 1), (1, 1))
