"""Flat (structure-of-arrays) backends: unit behaviour, parity with the
object-based implementations, and the batch APIs.

The flat kernels must answer *identically* to their object counterparts on
every operation sequence -- that is what makes them drop-in fast paths.
These tests pin that against the naive suffix-minima oracle and the
GraphOrder reachability reference.
"""

import random

import pytest

from repro.core import (
    BACKENDS,
    CSST,
    FLAT_BACKENDS,
    FLAT_EQUIVALENTS,
    FlatCSST,
    FlatIncrementalCSST,
    FlatSparseSegmentTree,
    FlatVectorClockOrder,
    GraphOrder,
    IncrementalCSST,
    InstrumentedOrder,
    NaiveSuffixMinima,
    SparseSegmentTree,
    VectorClockOrder,
    INF,
    make_partial_order,
)
from repro.core.flat.sst import INT_INF
from repro.errors import InvalidEdgeError, InvalidNodeError, ReproError


def _random_cross_pair(rng, num_chains, per_chain):
    source = (rng.randrange(num_chains), rng.randrange(per_chain))
    target_chain = (source[0] + rng.randrange(1, num_chains)) % num_chains
    return source, (target_chain, rng.randrange(per_chain))


class TestFlatSparseSegmentTree:
    def test_empty_tree(self):
        tree = FlatSparseSegmentTree(8)
        assert tree.suffix_min(0) == INF
        assert tree.argleq(100) is None
        assert tree.get(3) == INF
        assert tree.density == 0
        assert tree.height == 0

    def test_update_get_roundtrip(self):
        tree = FlatSparseSegmentTree(16)
        tree.update(3, 7)
        tree.update(9, 2)
        assert tree.get(3) == 7
        assert tree.get(9) == 2
        assert tree.get(4) == INF
        assert tree.suffix_min(0) == 2
        assert tree.suffix_min(4) == 2
        assert tree.suffix_min(10) == INF
        assert tree.argleq(7) == 9
        assert tree.items() == [(3, 7), (9, 2)]

    def test_clear_via_inf(self):
        tree = FlatSparseSegmentTree(8)
        tree.update(2, 5)
        tree.update(2, INF)
        assert tree.get(2) == INF
        assert tree.density == 0
        assert tree.suffix_min(0) == INF

    def test_grows_beyond_capacity(self):
        tree = FlatSparseSegmentTree(4)
        tree.update(100, 1)
        assert tree.capacity >= 101
        assert tree.get(100) == 1
        assert tree.suffix_min(0) == 1

    def test_negative_index_rejected(self):
        tree = FlatSparseSegmentTree(4)
        with pytest.raises(InvalidNodeError):
            tree.update(-1, 3)
        with pytest.raises(InvalidNodeError):
            tree.get(-2)
        with pytest.raises(InvalidNodeError):
            tree.suffix_min(-1)

    def test_bad_construction_rejected(self):
        with pytest.raises(InvalidNodeError):
            FlatSparseSegmentTree(0)
        with pytest.raises(InvalidNodeError):
            FlatSparseSegmentTree(4, block_size=-1)

    def test_slots_are_recycled_after_removal(self):
        tree = FlatSparseSegmentTree(64, block_size=0)
        for index in range(32):
            tree.update(index, index)
        allocated = tree.allocated_slots
        for index in range(32):
            tree.update(index, INF)
        assert tree.density == 0
        for index in range(32):
            tree.update(index, 100 + index)
        # Reinsertions reuse the free-listed slots instead of growing.
        assert tree.allocated_slots == allocated

    @pytest.mark.parametrize("block_size", [0, 1, 4, 32])
    @pytest.mark.parametrize("minima_indexing", [True, False])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_ops_match_oracle_and_object(self, block_size,
                                                minima_indexing, seed):
        rng = random.Random(seed * 31 + block_size)
        oracle = NaiveSuffixMinima(8)
        flat = FlatSparseSegmentTree(8, block_size=block_size,
                                     minima_indexing=minima_indexing)
        obj = SparseSegmentTree(8, block_size=block_size,
                                minima_indexing=minima_indexing)
        live = []
        for _ in range(600):
            roll = rng.random()
            if roll < 0.5 or not live:
                index, value = rng.randrange(200), rng.randrange(60)
                for array in (oracle, flat, obj):
                    array.update(index, value)
                live.append(index)
            elif roll < 0.7:
                index = live.pop(rng.randrange(len(live)))
                for array in (oracle, flat, obj):
                    array.update(index, INF)
            query = rng.randrange(200)
            assert flat.suffix_min(query) == oracle.suffix_min(query) \
                == obj.suffix_min(query)
            value = rng.randrange(70)
            assert flat.argleq(value) == oracle.argleq(value)
            probe = rng.randrange(200)
            assert flat.get(probe) == oracle.get(probe)
            assert flat.density == oracle.density
        assert flat.items() == oracle.items()

    def test_int_api_uses_int_sentinel(self):
        tree = FlatSparseSegmentTree(8)
        assert tree.suffix_min_int(0) == INT_INF
        tree.update_int(3, 4)
        assert tree.suffix_min_int(0) == 4
        tree.update_int(3, INT_INF)
        assert tree.suffix_min_int(0) == INT_INF
        assert tree.density == 0


class TestFlatBackendsFactory:
    def test_flat_backends_registered(self):
        for name in FLAT_BACKENDS:
            assert name in BACKENDS
        assert isinstance(make_partial_order("csst-flat", 3), FlatCSST)
        assert isinstance(make_partial_order("incremental-csst-flat", 3),
                          FlatIncrementalCSST)
        assert isinstance(make_partial_order("vc-flat", 3),
                          FlatVectorClockOrder)

    def test_flat_equivalents_map_to_registered_backends(self):
        for object_name, flat_name in FLAT_EQUIVALENTS.items():
            assert object_name in BACKENDS
            assert flat_name in BACKENDS
            assert BACKENDS[object_name].supports_deletion == \
                BACKENDS[flat_name].supports_deletion

    def test_unknown_backend_still_rejected(self):
        with pytest.raises(ReproError, match="unknown partial-order backend"):
            make_partial_order("flat", 3)

    def test_block_size_forwarded(self):
        order = make_partial_order("csst-flat", 3, block_size=4)
        order.insert_edge((0, 1), (1, 2))
        assert order.reachable((0, 0), (1, 5))


class TestFlatBackendParity:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("num_chains, per_chain", [(3, 40), (6, 25)])
    def test_incremental_agreement_on_long_runs(self, seed, num_chains,
                                                per_chain):
        rng = random.Random(seed * 997 + num_chains)
        reference = GraphOrder(num_chains)
        backends = [
            IncrementalCSST(num_chains, 8),
            FlatIncrementalCSST(num_chains, 8),
            VectorClockOrder(num_chains, 8),
            FlatVectorClockOrder(num_chains, 8),
            CSST(num_chains, 8),
            FlatCSST(num_chains, 8),
        ]
        for _ in range(200):
            source, target = _random_cross_pair(rng, num_chains, per_chain)
            if not reference.reachable(target, source) and \
                    not reference.reachable(source, target):
                reference.insert_edge(source, target)
                for backend in backends:
                    backend.insert_edge(source, target)
            query_source = _random_cross_pair(rng, num_chains, per_chain)[0]
            query_target = _random_cross_pair(rng, num_chains, per_chain)[0]
            expected = reference.reachable(query_source, query_target)
            expected_successor = reference.successor(query_source,
                                                     query_target[0])
            expected_predecessor = reference.predecessor(query_source,
                                                         query_target[0])
            for backend in backends:
                name = type(backend).__name__
                assert backend.reachable(query_source, query_target) \
                    == expected, name
                assert backend.successor(query_source, query_target[0]) \
                    == expected_successor, name
                assert backend.predecessor(query_source, query_target[0]) \
                    == expected_predecessor, name

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_fully_dynamic_agreement_under_churn(self, seed):
        num_chains, per_chain = 5, 20
        rng = random.Random(seed)
        reference = GraphOrder(num_chains)
        object_csst = CSST(num_chains, 8)
        flat_csst = FlatCSST(num_chains, 8)
        live, live_set = [], set()
        for _ in range(400):
            if rng.random() < 0.35 and live:
                edge = live.pop(rng.randrange(len(live)))
                live_set.discard(edge)
                reference.delete_edge(*edge)
                object_csst.delete_edge(*edge)
                flat_csst.delete_edge(*edge)
            else:
                source, target = _random_cross_pair(rng, num_chains, per_chain)
                if (source, target) not in live_set and \
                        not reference.reachable(target, source):
                    live.append((source, target))
                    live_set.add((source, target))
                    reference.insert_edge(source, target)
                    object_csst.insert_edge(source, target)
                    flat_csst.insert_edge(source, target)
            query_source = _random_cross_pair(rng, num_chains, per_chain)[0]
            query_target = _random_cross_pair(rng, num_chains, per_chain)[0]
            assert flat_csst.reachable(query_source, query_target) \
                == reference.reachable(query_source, query_target)
            assert flat_csst.successor(query_source, query_target[0]) \
                == object_csst.successor(query_source, query_target[0])
            assert flat_csst.predecessor(query_source, query_target[0]) \
                == object_csst.predecessor(query_source, query_target[0])
        assert flat_csst.edge_count == object_csst.edge_count

    def test_vc_flat_clock_of_matches_object(self):
        rng = random.Random(7)
        num_chains, per_chain = 4, 25
        obj = VectorClockOrder(num_chains, 8)
        flat = FlatVectorClockOrder(num_chains, 8)
        reference = GraphOrder(num_chains)
        for _ in range(150):
            source, target = _random_cross_pair(rng, num_chains, per_chain)
            if not reference.reachable(target, source):
                reference.insert_edge(source, target)
                obj.insert_edge(source, target)
                flat.insert_edge(source, target)
        for _ in range(100):
            node = (rng.randrange(num_chains), rng.randrange(per_chain))
            assert flat.clock_of(node) == obj.clock_of(node)
        assert flat.materialised_clocks == obj.materialised_clocks
        assert flat.total_entries == obj.total_entries


class TestFlatValidationAndErrors:
    @pytest.mark.parametrize("name", FLAT_BACKENDS)
    def test_same_chain_edge_rejected(self, name):
        order = make_partial_order(name, 3)
        with pytest.raises(InvalidEdgeError):
            order.insert_edge((1, 0), (1, 5))

    @pytest.mark.parametrize("name", FLAT_BACKENDS)
    def test_bad_node_rejected(self, name):
        order = make_partial_order(name, 3)
        with pytest.raises(InvalidNodeError):
            order.reachable((5, 0), (1, 2))
        with pytest.raises(InvalidNodeError):
            order.reachable((0, -1), (1, 2))

    def test_flat_csst_delete_missing_edge_rejected(self):
        order = FlatCSST(3)
        order.insert_edge((0, 1), (1, 2))
        with pytest.raises(InvalidEdgeError):
            order.delete_edge((0, 1), (1, 3))

    def test_flat_incremental_deletion_unsupported(self):
        from repro.errors import UnsupportedOperationError

        for order in (FlatIncrementalCSST(3), FlatVectorClockOrder(3)):
            with pytest.raises(UnsupportedOperationError):
                order.delete_edge((0, 1), (1, 2))


class TestBatchAPIs:
    @pytest.mark.parametrize("name", sorted(BACKENDS))
    def test_insert_many_matches_individual_inserts(self, name):
        rng = random.Random(5)
        edges = []
        reference = GraphOrder(4)
        for _ in range(40):
            source, target = _random_cross_pair(rng, 4, 20)
            if not reference.reachable(target, source):
                reference.insert_edge(source, target)
                edges.append((source, target))
        batch = make_partial_order(name, 4, 8)
        single = make_partial_order(name, 4, 8)
        batch.insert_many(edges)
        for source, target in edges:
            single.insert_edge(source, target)
        pairs = [_random_cross_pair(rng, 4, 20) for _ in range(60)]
        assert batch.query_many(pairs) == single.query_many(pairs) \
            == [reference.reachable(s, t) for s, t in pairs]

    def test_query_many_validates_nodes(self):
        for name in FLAT_BACKENDS:
            order = make_partial_order(name, 3)
            with pytest.raises(InvalidNodeError):
                order.query_many([((9, 0), (1, 1))])

    def test_insert_edges_alias_still_works(self):
        order = FlatIncrementalCSST(3)
        order.insert_edges([((0, 1), (1, 2)), ((1, 3), (2, 4))])
        assert order.reachable((0, 0), (2, 5))

    def test_instrumented_order_counts_batch_operations(self):
        order = InstrumentedOrder(FlatIncrementalCSST(3))
        order.insert_many([((0, 1), (1, 2)), ((1, 3), (2, 4))])
        assert order.insert_count == 2
        answers = order.query_many([((0, 0), (1, 5)), ((2, 0), (0, 0))])
        assert order.query_count == 2
        assert answers == [True, False]
