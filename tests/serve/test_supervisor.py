"""Supervisor: sharded execution, quotas, and crash recovery parity.

The recovery tests are the heart of the serving contract: killing a
worker mid-stream (by injected ``os._exit`` or a real SIGKILL) must not
change the merged findings feed or any tenant's summary relative to the
uninterrupted run.
"""

import json
import os

import pytest

from repro.errors import ProtocolError, ServeError
from repro.serve.frontdoor import replay_sources
from repro.serve.service import run_serve
from repro.serve.shard import ShardOptions
from repro.serve.supervisor import Supervisor, TenantFinding

ANALYSES = ("race-prediction", "deadlock-prediction")
SOURCES = ["racy:threads=3,events=60,seed=1",
           "racy:threads=2,events=40,seed=7",
           "deadlock:threads=4,events=50,seed=3"]


def findings_by_tenant(outcome):
    """Tenant-stable ordering: the parity comparison key."""
    return {tenant: sorted((f.analysis, f.position, f.finding)
                           for f in outcome.findings_for(tenant))
            for tenant in outcome.tenants}


def final_documents(outcome):
    return {tenant: json.dumps(outcome.summaries[tenant]["final"],
                               sort_keys=True)
            for tenant in outcome.tenants}


@pytest.fixture(scope="module")
def baseline():
    """The uninterrupted single-process reference run."""
    return run_serve(ANALYSES, sources=SOURCES, workers=0, backend=None)


class TestShardedParity:
    def test_two_workers_match_inline(self, baseline):
        sharded = run_serve(ANALYSES, sources=SOURCES, workers=2,
                            backend=None)
        assert sharded.respawns == 0
        assert findings_by_tenant(sharded) == findings_by_tenant(baseline)
        assert final_documents(sharded) == final_documents(baseline)
        assert sharded.events == baseline.events

    def test_merged_feed_attributes_every_tenant(self, baseline):
        assert sorted({f.tenant for f in baseline.findings}) \
            <= baseline.tenants
        assert len(baseline.tenants) == 3


class TestCrashRecovery:
    def test_injected_crash_preserves_findings_parity(self, baseline,
                                                      tmp_path):
        """ISSUE acceptance: kill a worker mid-stream; merged findings
        match the uninterrupted run after checkpoint recovery."""
        crashed = run_serve(ANALYSES, sources=SOURCES, workers=2,
                            backend=None,
                            checkpoint_dir=str(tmp_path),
                            checkpoint_every=16,
                            crash_worker="0@40")
        assert crashed.respawns >= 1, "fault injection never fired"
        assert findings_by_tenant(crashed) == findings_by_tenant(baseline)
        assert final_documents(crashed) == final_documents(baseline)

    def test_sigkill_mid_replay_preserves_findings_parity(self, baseline,
                                                          tmp_path):
        """Same contract under a real SIGKILL aimed with os.kill."""
        supervisor = Supervisor(
            ShardOptions(analyses=ANALYSES, backend=None,
                         checkpoint_dir=str(tmp_path),
                         checkpoint_every=16),
            workers=2)
        supervisor.start()
        killed = []

        def kill_once(tenant, seq):
            if not killed and seq >= 30:
                victim = supervisor._ring.route(tenant)
                os.kill(supervisor.worker_pids[victim], 9)
                killed.append(victim)

        try:
            replay_sources(supervisor, SOURCES, on_sent=kill_once)
            supervisor.drain(timeout=60.0)
        finally:
            supervisor.stop()
        assert killed, "kill hook never fired"
        assert supervisor.respawns >= 1
        got = {tenant: sorted((f.analysis, f.position, f.finding)
                              for f in supervisor.findings_for(tenant))
               for tenant in sorted(supervisor.summaries)}
        assert got == findings_by_tenant(baseline)

    def test_crash_without_checkpoints_still_recovers(self, baseline):
        """No checkpoint_dir: the journal holds each tenant's WHOLE feed,
        so replay rebuilds engines from scratch -- slower, same answer."""
        crashed = run_serve(ANALYSES, sources=SOURCES, workers=2,
                            backend=None, crash_worker="1@30")
        assert crashed.respawns >= 1
        assert findings_by_tenant(crashed) == findings_by_tenant(baseline)

    def test_respawn_counter_lands_in_telemetry(self, tmp_path):
        from repro.obs import metrics as obs_metrics

        registry = obs_metrics.MetricsRegistry()
        with obs_metrics.use_registry(registry):
            with registry.span("serve"):
                outcome = run_serve(
                    ANALYSES, sources=SOURCES, workers=2, backend=None,
                    checkpoint_dir=str(tmp_path), checkpoint_every=16,
                    crash_worker="0@40")
        assert outcome.respawns >= 1
        snapshot = registry.snapshot()
        names = {item["name"] for item in snapshot["counters"]}
        assert "serve_worker_respawn_total" in names
        assert "serve_events_total" in names


class TestQuotas:
    def test_quota_rejects_excess_events(self):
        with pytest.raises(ProtocolError, match="quota"):
            run_serve(ANALYSES, sources=SOURCES, workers=0, backend=None,
                      quota_events=50)

    def test_quota_rejection_is_counted_and_typed(self):
        supervisor = Supervisor(ShardOptions(analyses=ANALYSES,
                                             backend=None),
                                workers=1, quota_events=3)
        supervisor.start()
        try:
            for seq in range(3):
                supervisor.ingest_event("t", "0|read|variable=str:x")
            with pytest.raises(ProtocolError, match="quota"):
                supervisor.ingest_event("t", "0|read|variable=str:x")
            assert supervisor.rejected == 1
        finally:
            supervisor.stop()


class TestLifecycleValidation:
    def test_ingest_after_end_rejected(self):
        supervisor = Supervisor(ShardOptions(analyses=ANALYSES,
                                             backend=None), workers=1)
        supervisor.start()
        try:
            supervisor.ingest_event("t", "0|read|variable=str:x")
            supervisor.end_tenant("t")
            with pytest.raises(ProtocolError, match="already ended"):
                supervisor.ingest_event("t", "0|read|variable=str:x")
        finally:
            supervisor.stop()

    @pytest.mark.parametrize("spec", ["", "0", "@", "0@", "@5", "x@5",
                                      "0@0", "-1@5", "9@5"])
    def test_malformed_crash_spec_rejected(self, spec):
        with pytest.raises(ServeError):
            Supervisor(ShardOptions(analyses=ANALYSES), workers=2,
                       crash_worker=spec)

    def test_invalid_shape_rejected(self):
        options = ShardOptions(analyses=ANALYSES)
        with pytest.raises(ServeError):
            Supervisor(options, workers=0)
        with pytest.raises(ServeError):
            Supervisor(options, workers=1, queue_size=0)
        with pytest.raises(ServeError):
            Supervisor(options, workers=1, quota_events=0)


class TestTenantFinding:
    def test_watch_line_matches_cli_format(self):
        finding = TenantFinding(tenant="t", analysis="race-prediction",
                                position=42, finding="race on x")
        assert finding.watch_line() == "[    42] race-prediction: race on x"
        assert str(finding) == "t [    42] race-prediction: race on x"
