"""Tenant validation and consistent-hash routing."""

import pytest

from repro.errors import ProtocolError
from repro.serve.routing import DEFAULT_VNODES, HashRing, validate_tenant


class TestValidateTenant:
    @pytest.mark.parametrize("tenant", [
        "a", "tenant-1", "A.b:c_d", "0", "x" * 64, "s1:run.2026-08-08",
    ])
    def test_legal_ids_pass_through(self, tenant):
        assert validate_tenant(tenant) == tenant

    @pytest.mark.parametrize("tenant", [
        "", "a|b", "a b", "-leading", ".leading", "x" * 65, "a/b", "a\nb",
        None, 7, "é",
    ])
    def test_illegal_ids_rejected(self, tenant):
        with pytest.raises(ProtocolError, match="invalid tenant id"):
            validate_tenant(tenant)


class TestHashRing:
    def test_deterministic_across_instances(self):
        tenants = [f"tenant-{i}" for i in range(200)]
        first = HashRing(4).assignment(tenants)
        second = HashRing(4).assignment(tenants)
        assert first == second

    def test_routes_are_in_range(self):
        ring = HashRing(3)
        for i in range(100):
            assert 0 <= ring.route(f"t{i}") < 3

    def test_every_shard_gets_tenants(self):
        ring = HashRing(4, vnodes=DEFAULT_VNODES)
        owners = {ring.route(f"tenant-{i}") for i in range(400)}
        assert owners == {0, 1, 2, 3}

    def test_single_shard_owns_everything(self):
        ring = HashRing(1)
        assert {ring.route(f"t{i}") for i in range(50)} == {0}

    def test_resize_moves_only_a_fraction(self):
        tenants = [f"tenant-{i}" for i in range(500)]
        before = HashRing(4).assignment(tenants)
        after = HashRing(5).assignment(tenants)
        moved = sum(1 for t in tenants if before[t] != after[t])
        # Consistent hashing: ~1/5 should move, not ~4/5.  Allow slack.
        assert moved < len(tenants) * 0.45

    def test_invalid_shape_rejected(self):
        with pytest.raises(ProtocolError):
            HashRing(0)
        with pytest.raises(ProtocolError):
            HashRing(2, vnodes=0)

    def test_route_validates_tenant(self):
        with pytest.raises(ProtocolError):
            HashRing(2).route("bad|tenant")
