"""TenantShard: many engines in one process, sequence-skip recovery."""

import pytest

from repro.errors import ProtocolError, ServeError
from repro.serve.shard import ShardOptions, TenantShard
from repro.trace.formats import format_event
from repro.trace.generators import build_trace


def trace_lines(kind="racy", threads=3, events=40, seed=1):
    trace = build_trace(kind, num_threads=threads, events=events, seed=seed)
    return [format_event(event) for event in trace.events]


def feed_all(shard, tenant, lines, start=1):
    for offset, line in enumerate(lines):
        shard.feed_line(tenant, start + offset, line)


@pytest.fixture
def options():
    return ShardOptions(analyses=("race-prediction",), backend=None)


class TestTenancy:
    def test_tenants_are_isolated(self, options):
        emitted = []
        shard = TenantShard(options,
                            on_finding=lambda t, f: emitted.append((t, f)))
        a, b = trace_lines(seed=1), trace_lines(seed=2)
        # Interleave two tenants event by event.
        for index in range(max(len(a), len(b))):
            if index < len(a):
                shard.feed_line("a", index + 1, a[index])
            if index < len(b):
                shard.feed_line("b", index + 1, b[index])
        summary_a = shard.end_tenant("a")
        summary_b = shard.end_tenant("b")
        # Per-tenant summaries match dedicated single-tenant runs.
        solo = TenantShard(options)
        feed_all(solo, "a", a)
        assert solo.end_tenant("a")["final"] == summary_a["final"]
        solo2 = TenantShard(options)
        feed_all(solo2, "b", b)
        assert solo2.end_tenant("b")["final"] == summary_b["final"]
        assert summary_a["events"] == len(a)
        assert summary_b["events"] == len(b)

    def test_summary_matches_watch_summary_document(self, options, tmp_path):
        """The parity contract: a shard's summary is the watch jsonl
        summary for the same feed, field for field."""
        import json

        from repro.api import Session, WatchConfig

        lines = trace_lines(seed=5)
        trace_path = tmp_path / "t.std"
        trace_path.write_text("\n".join(lines) + "\n", encoding="utf-8")

        shard = TenantShard(options)
        feed_all(shard, "t", lines)
        served = shard.end_tenant("t")

        watched = Session().run(
            WatchConfig(source=str(trace_path),
                        analyses=("race-prediction",))).to_dict()
        served["name"] = watched["name"]  # tenant id vs file stem
        assert json.dumps(served, sort_keys=True) \
            == json.dumps(watched, sort_keys=True)

    def test_end_without_events_yields_trivial_summary(self, options):
        shard = TenantShard(options)
        summary = shard.end_tenant("idle")
        assert summary["events"] == 0
        assert summary["emitted"] == 0

    def test_close_ends_every_tenant(self, options):
        shard = TenantShard(options)
        feed_all(shard, "a", trace_lines(seed=1)[:10])
        feed_all(shard, "b", trace_lines(seed=2)[:10])
        summaries = shard.close()
        assert sorted(summaries) == ["a", "b"]
        assert shard.tenants == []

    def test_invalid_tenant_rejected(self, options):
        with pytest.raises(ProtocolError):
            TenantShard(options).feed_line("bad tenant", 1, "0|read|variable=str:x")

    def test_needs_analyses(self):
        with pytest.raises(ServeError, match="at least one analysis"):
            TenantShard(ShardOptions(analyses=()))


class TestSequenceNumbers:
    def test_gap_is_rejected(self, options):
        shard = TenantShard(options)
        lines = trace_lines()
        shard.feed_line("t", 1, lines[0])
        with pytest.raises(ServeError, match="sequence gap"):
            shard.feed_line("t", 3, lines[1])

    def test_replayed_sequences_are_skipped_without_duplicates(self,
                                                              options):
        emitted = []
        shard = TenantShard(options,
                            on_finding=lambda t, f: emitted.append(f))
        lines = trace_lines()
        feed_all(shard, "t", lines)
        count = len(emitted)
        # A journal replay re-delivers everything; consumed sequence
        # numbers are dropped unparsed.
        for offset, line in enumerate(lines):
            assert shard.feed_line("t", offset + 1, line) is False
        assert len(emitted) == count
        assert shard.end_tenant("t")["events"] == len(lines)

    def test_non_event_payload_rejected(self, options):
        shard = TenantShard(options)
        with pytest.raises(ProtocolError, match="not an event line"):
            shard.feed_line("t", 1, "# a comment is not an event")


class TestCheckpointRecovery:
    def test_restore_resumes_mid_stream(self, options, tmp_path):
        lines = trace_lines(events=60, seed=3)
        cut = len(lines) // 2
        opts = ShardOptions(analyses=("race-prediction",), backend=None,
                            checkpoint_dir=str(tmp_path),
                            checkpoint_every=10)
        acked = []
        first = TenantShard(opts, on_checkpoint=lambda t, c:
                            acked.append((t, c)))
        feed_all(first, "t", lines[:cut])
        assert acked, "periodic checkpoints never acked"
        # A fresh shard (a respawned worker) restores from the checkpoint
        # and receives the FULL feed replayed from seq 1.
        emitted = []
        second = TenantShard(opts,
                             on_finding=lambda t, f: emitted.append(f))
        consumed = [second.feed_line("t", offset + 1, line)
                    for offset, line in enumerate(lines)]
        assert not all(consumed), "no replayed line was skip-deduplicated"
        assert consumed[-1] is True
        recovered = second.end_tenant("t")

        solo = TenantShard(ShardOptions(analyses=("race-prediction",),
                                        backend=None))
        feed_all(solo, "t", lines)
        uninterrupted = solo.end_tenant("t")
        assert recovered["final"] == uninterrupted["final"]
        assert recovered["events"] == uninterrupted["events"]

    def test_end_writes_final_checkpoint(self, tmp_path):
        opts = ShardOptions(analyses=("race-prediction",), backend=None,
                            checkpoint_dir=str(tmp_path))
        shard = TenantShard(opts)
        feed_all(shard, "t", trace_lines()[:10])
        shard.end_tenant("t")
        assert (tmp_path / "t.json").exists()
