"""The serve ingest line protocol."""

import pytest

from repro.errors import ProtocolError
from repro.serve.protocol import (
    BYE_LINE,
    format_end,
    format_event_line,
    parse_line,
)


class TestFormat:
    def test_event_line_round_trips(self):
        line = format_event_line("t1", "0|read|var=x")
        assert parse_line(line) == ("event", "t1", "0|read|var=x")

    def test_end_line_round_trips(self):
        assert parse_line(format_end("t1")) == ("end", "t1", None)

    def test_format_validates_tenant(self):
        with pytest.raises(ProtocolError):
            format_event_line("bad tenant", "0|read")
        with pytest.raises(ProtocolError):
            format_end("")


class TestParse:
    def test_bye(self):
        assert parse_line(BYE_LINE) == ("bye", None, None)
        assert parse_line("  #bye \n") == ("bye", None, None)

    def test_blank_and_whitespace_ignored(self):
        assert parse_line("")[0] == "blank"
        assert parse_line("   \r\n")[0] == "blank"

    def test_payload_survives_verbatim(self):
        # The payload may itself contain '|' (STD field separators); only
        # the FIRST one splits tenant from payload.
        kind, tenant, payload = parse_line("t1|0|write|var=x|val=3")
        assert (kind, tenant) == ("event", "t1")
        assert payload == "0|write|var=x|val=3"

    def test_unknown_control_rejected(self):
        with pytest.raises(ProtocolError, match="unknown control line"):
            parse_line("#shutdown")

    def test_missing_separator_rejected(self):
        with pytest.raises(ProtocolError, match="malformed ingest line"):
            parse_line("just-a-tenant")

    def test_empty_payload_rejected(self):
        with pytest.raises(ProtocolError, match="malformed ingest line"):
            parse_line("t1|   ")

    def test_bad_tenant_rejected(self):
        with pytest.raises(ProtocolError, match="invalid tenant id"):
            parse_line("bad tenant|0|read")
        with pytest.raises(ProtocolError, match="invalid tenant id"):
            parse_line("#end|bad tenant")
