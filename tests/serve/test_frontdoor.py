"""Front door: tenant naming, replay interleave, and the real socket."""

import threading
import time

import pytest

from repro.serve.frontdoor import (
    ERROR_PREFIX,
    open_replay,
    replay_lines,
    send_lines,
    tenant_for_source,
)
from repro.serve.protocol import BYE_LINE, parse_line
from repro.serve.service import run_serve

SOURCES = ["racy:threads=3,events=60,seed=1",
           "racy:threads=2,events=40,seed=7"]
ANALYSES = ("race-prediction",)


class TestTenantForSource:
    def test_clean_names_pass_through(self):
        assert tenant_for_source("trace-1") == "trace-1"

    def test_illegal_characters_mapped(self):
        assert tenant_for_source("my trace (v2)") == "my-trace--v2"

    def test_collisions_get_suffixes(self):
        first = tenant_for_source("t")
        second = tenant_for_source("t", taken=[first])
        third = tenant_for_source("t", taken=[first, second])
        assert (first, second, third) == ("t", "t-2", "t-3")

    def test_degenerate_names_fall_back(self):
        assert tenant_for_source("///") == "tenant"


class TestReplayShape:
    def test_open_replay_names_one_tenant_per_source(self):
        feeds = open_replay(SOURCES)
        assert [tenant for tenant, _ in feeds] \
            == ["racy-t3-n60-s1", "racy-t2-n40-s7"]

    def test_replay_lines_interleave_and_terminate(self):
        lines = list(replay_lines(SOURCES))
        assert lines[-1] == BYE_LINE
        kinds = [parse_line(line)[0] for line in lines]
        assert kinds.count("end") == 2
        # Round-robin: the first two events belong to different tenants.
        tenants = [parse_line(line)[1] for line in lines[:2]]
        assert len(set(tenants)) == 2
        # The shorter source drains (and ends) first, mid-stream.
        first_end = kinds.index("end")
        assert parse_line(lines[first_end])[1] == "racy-t2-n40-s7"
        assert "event" in kinds[first_end:]


class TestSocket:
    def run_server(self, **kwargs):
        """Run socket-mode serve in a thread; return (thread, state)."""
        state = {}

        def notice(kind, message):
            if "listening on" in message:
                state["port"] = int(message.rsplit(":", 1)[1])

        def body():
            state["outcome"] = run_serve(
                ANALYSES, host="127.0.0.1", port=0, backend=None,
                stop_after_seconds=kwargs.pop("stop_after", 2.0),
                on_notice=notice, **kwargs)

        thread = threading.Thread(target=body, daemon=True)
        thread.start()
        deadline = time.monotonic() + 10.0
        while "port" not in state:
            assert time.monotonic() < deadline, "server never bound"
            time.sleep(0.02)
        return thread, state

    def test_socket_replay_matches_inline(self):
        thread, state = self.run_server(workers=1)
        responses = send_lines("127.0.0.1", state["port"],
                               replay_lines(SOURCES))
        thread.join(timeout=30.0)
        assert responses == []
        outcome = state["outcome"]
        baseline = run_serve(ANALYSES, sources=SOURCES, workers=0,
                             backend=None)
        assert outcome.tenants == baseline.tenants
        key = lambda o: {t: sorted((f.analysis, f.position, f.finding)
                                   for f in o.findings_for(t))
                         for t in o.tenants}
        assert key(outcome) == key(baseline)

    def test_protocol_errors_reported_not_fatal(self):
        thread, state = self.run_server(workers=1, stop_after=2.0)
        lines = ["not-an-ingest-line",
                 "t1|0|read|variable=str:x",
                 "#frobnicate",
                 "t1|0|read|variable=str:x",  # still accepted after two rejects
                 "#end|t1",
                 BYE_LINE]
        responses = send_lines("127.0.0.1", state["port"], lines)
        thread.join(timeout=30.0)
        assert len(responses) == 2
        assert all(r.startswith(ERROR_PREFIX) for r in responses)
        outcome = state["outcome"]
        assert outcome.summaries["t1"]["events"] == 2

    def test_quota_rejections_reach_the_client(self):
        thread, state = self.run_server(workers=1, stop_after=2.0,
                                        quota_events=2)
        lines = ["t1|0|read|variable=str:x"] * 4 + ["#end|t1", BYE_LINE]
        responses = send_lines("127.0.0.1", state["port"], lines)
        thread.join(timeout=30.0)
        assert len(responses) == 2
        assert all("quota" in r for r in responses)
        assert state["outcome"].rejected == 2


class TestModeValidation:
    def test_needs_exactly_one_mode(self):
        from repro.errors import ServeError

        with pytest.raises(ServeError, match="exactly one"):
            run_serve(ANALYSES, workers=0)
        with pytest.raises(ServeError, match="exactly one"):
            run_serve(ANALYSES, sources=SOURCES, host="127.0.0.1",
                      port=0, workers=0)

    def test_crash_injection_needs_workers(self):
        from repro.errors import ServeError

        with pytest.raises(ServeError, match="crash_worker"):
            run_serve(ANALYSES, sources=SOURCES, workers=0,
                      crash_worker="0@5")
