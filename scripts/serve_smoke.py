#!/usr/bin/env python
"""CI smoke test for ``repro serve`` socket mode with crash recovery.

Starts a real ``python -m repro serve`` subprocess listening on a local
socket, replays a multi-tenant corpus through it (one tenant per
source), SIGKILLs one worker process mid-replay using the ``--pid-file``
the server wrote, and asserts that the merged findings and per-tenant
summaries still match a sequential per-tenant ``repro watch`` baseline.
Also sanity-checks the exported timeline (one lane per worker plus the
supervisor's own).

Usage (from the repository root, with ``PYTHONPATH=src``)::

    python scripts/serve_smoke.py --workers 2 --kill-at 30 \
        --timeline serve-trace.json
"""

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import time

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)
if SRC not in os.environ.get("PYTHONPATH", "").split(os.pathsep):
    os.environ["PYTHONPATH"] = os.pathsep.join(
        part for part in (SRC, os.environ.get("PYTHONPATH")) if part)

SOURCES = [
    "racy:threads=3,events=60,seed=1",
    "racy:threads=2,events=40,seed=7",
    "deadlock:threads=4,events=50,seed=3",
]
ANALYSES = "race-prediction,deadlock-prediction"


def free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def wait_for_pids(path: str, expected: int, timeout: float = 20.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as stream:
                pids = [int(line) for line in stream if line.strip()]
            if len(pids) == expected:
                return pids
        time.sleep(0.05)
    raise SystemExit(f"pid file {path!r} never listed {expected} workers")


def replay_and_kill(port: int, lines, kill_pid: int, kill_at: int) -> int:
    """Send protocol lines, killing ``kill_pid`` after ``kill_at`` events.
    Returns the number of event lines sent."""
    events = 0
    killed = False
    with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
        stream = sock.makefile("rw", encoding="utf-8", newline="\n")
        for line in lines:
            stream.write(line + "\n")
            stream.flush()
            if not line.startswith("#"):
                events += 1
                if not killed and events >= kill_at:
                    os.kill(kill_pid, signal.SIGKILL)
                    killed = True
                    print(f"killed worker pid {kill_pid} after "
                          f"{events} events", flush=True)
        sock.shutdown(socket.SHUT_WR)
        responses = [line.rstrip("\n") for line in stream if line.strip()]
    if responses:
        raise SystemExit(f"server rejected lines: {responses}")
    return events


def watch_baseline(source: str):
    """Sequential single-tenant ``repro watch`` over one source."""
    out = subprocess.run(
        [sys.executable, "-m", "repro", "watch", "--source", source,
         "--analyses", ANALYSES, "--format", "jsonl"],
        check=True, capture_output=True, text=True).stdout
    lines = [json.loads(line) for line in out.splitlines() if line.strip()]
    summary = [line for line in lines if line["type"] == "summary"][0]
    findings = sorted((line["analysis"], line["position"], line["finding"])
                      for line in lines if line["type"] == "finding")
    return summary, findings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--kill-at", type=int, default=30,
                        help="SIGKILL one worker after this many events")
    parser.add_argument("--timeline", default="serve-trace.json")
    parser.add_argument("--checkpoint-dir", default="serve-ckpt")
    parser.add_argument("--stop-after", type=float, default=8.0)
    args = parser.parse_args()

    from repro.serve.frontdoor import open_replay, replay_lines

    tenants = [tenant for tenant, _ in open_replay(SOURCES)]
    port = free_port()
    pid_file = "serve-pids.txt"
    if os.path.exists(pid_file):
        os.remove(pid_file)

    command = [
        sys.executable, "-m", "repro", "serve",
        "--analyses", ANALYSES,
        "--listen", f"127.0.0.1:{port}",
        "--workers", str(args.workers),
        "--checkpoint-dir", args.checkpoint_dir,
        "--checkpoint-every", "16",
        "--pid-file", pid_file,
        "--timeline", args.timeline,
        "--stop-after", str(args.stop_after),
        "--format", "jsonl",
    ]
    server = subprocess.Popen(command, stdout=subprocess.PIPE, text=True)
    try:
        pids = wait_for_pids(pid_file, args.workers)
        events = replay_and_kill(port, replay_lines(SOURCES),
                                 kill_pid=pids[0], kill_at=args.kill_at)
        out, _ = server.communicate(timeout=args.stop_after + 120)
    finally:
        if server.poll() is None:
            server.kill()
    if server.returncode != 0:
        raise SystemExit(f"serve exited {server.returncode}")

    lines = [json.loads(line) for line in out.splitlines() if line.strip()]
    document = [line for line in lines if line["type"] == "serve"][0]
    served_findings = {tenant: sorted(
        (f["analysis"], f["position"], f["finding"])
        for f in document["findings"] if f["tenant"] == tenant)
        for tenant in tenants}

    assert document["respawns"] >= 1, "worker kill never triggered a respawn"
    assert sorted(document["tenants"]) == sorted(tenants), document["tenants"]
    assert document["events"] == events, (document["events"], events)

    for source, tenant in zip(SOURCES, tenants):
        summary, findings = watch_baseline(source)
        served = document["summaries"][tenant]
        assert served["final"] == summary["final"], \
            f"{tenant}: final analysis results diverge from sequential watch"
        assert served["events"] == summary["events"], \
            (tenant, served["events"], summary["events"])
        assert served_findings[tenant] == findings, \
            f"{tenant}: merged findings feed diverges from sequential watch"

    with open(args.timeline, "r", encoding="utf-8") as stream:
        timeline = json.load(stream)
    spans = [e for e in timeline["traceEvents"] if e.get("ph") == "X"]
    lanes = {e["pid"] for e in spans}
    assert len(lanes) >= args.workers + 1, \
        f"expected supervisor + {args.workers} worker lanes, got {lanes}"
    assert any(e["name"] == "serve_worker" for e in spans), \
        "no serve_worker span in the timeline"

    print(f"serve smoke OK: {len(tenants)} tenants, {events} events, "
          f"{document['respawns']} respawn(s), findings parity with "
          f"sequential watch, {len(lanes)} timeline lanes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
