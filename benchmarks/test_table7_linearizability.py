"""Table 7: root-causing linearizability violations, per backend.

The only fully dynamic analysis of the evaluation: its commit-order search
inserts *and deletes* orderings, so the baselines are plain graphs and fully
dynamic CSSTs.
"""

import pytest

from conftest import run_analysis_once, workload_ids
from repro.analyses.linearizability import LinearizabilityAnalysis
from repro.bench.workloads import TABLE7_LINEARIZABILITY
from repro.core import DYNAMIC_BACKENDS


@pytest.mark.parametrize("backend", DYNAMIC_BACKENDS)
@pytest.mark.parametrize("workload", TABLE7_LINEARIZABILITY,
                         ids=workload_ids(TABLE7_LINEARIZABILITY))
def test_table7_linearizability(benchmark, workload, backend):
    runner = run_analysis_once(LinearizabilityAnalysis, workload, backend)
    result = benchmark.pedantic(runner, rounds=1, iterations=1)
    benchmark.extra_info["verdict"] = result.details.get("verdict")
    benchmark.extra_info["deletions"] = result.delete_count
    assert result.operation_count > 0
