"""Table 2: predictive deadlock detection, per backend."""

import pytest

from conftest import run_analysis_once, workload_ids
from repro.analyses.deadlock import DeadlockPredictionAnalysis
from repro.bench.workloads import TABLE2_DEADLOCK
from repro.core import INCREMENTAL_BACKENDS


@pytest.mark.parametrize("backend", INCREMENTAL_BACKENDS)
@pytest.mark.parametrize("workload", TABLE2_DEADLOCK, ids=workload_ids(TABLE2_DEADLOCK))
def test_table2_deadlock(benchmark, workload, backend):
    runner = run_analysis_once(DeadlockPredictionAnalysis, workload, backend)
    result = benchmark.pedantic(runner, rounds=1, iterations=1)
    benchmark.extra_info["findings"] = result.finding_count
    benchmark.extra_info["po_operations"] = result.operation_count
    assert result.operation_count > 0
