"""Streaming-vs-batch: overhead of the online engine, with parity checks.

Two questions, per analysis family:

* what does feeding events one at a time through :class:`StreamEngine`
  (final flush only) cost relative to a plain batch ``Analysis.run()``?
* what does incremental emission (periodic micro-batch flushes) cost on
  top?

Every benchmark asserts streaming/batch parity on the final findings, so
the numbers are only reported for runs whose answers agree.
"""

import pytest

from conftest import build_trace, workload_ids
from repro.analyses.common.base import Analysis
from repro.bench.workloads import TABLE1_RACE_PREDICTION, TABLE6_C11
from repro.stream.engine import StreamEngine
from repro.stream.source import TraceSource
from repro.stream.window import UnboundedWindow

#: One small workload per family keeps this suite seconds-scale.
RACE_WORKLOADS = TABLE1_RACE_PREDICTION[:2]
C11_WORKLOADS = TABLE6_C11[:2]


def _batch_findings(analysis_name, workload):
    trace = build_trace(workload)
    analysis = Analysis.by_name(analysis_name)(**workload.analysis_kwargs)
    return trace, analysis.run(trace).findings


@pytest.mark.parametrize("workload", RACE_WORKLOADS,
                         ids=workload_ids(RACE_WORKLOADS))
def test_streaming_race_prediction_final_flush(benchmark, workload):
    """Batch-fallback analysis driven through the stream, one final flush."""
    trace, batch_findings = _batch_findings("race-prediction", workload)

    def run():
        engine = StreamEngine([Analysis.by_name("race-prediction")(
            "incremental-csst", **workload.analysis_kwargs)])
        return engine.run(TraceSource(trace))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.results["race-prediction"].findings == batch_findings
    benchmark.extra_info["findings"] = result.finding_count
    benchmark.extra_info["events"] = result.stats.events


@pytest.mark.parametrize("workload", RACE_WORKLOADS,
                         ids=workload_ids(RACE_WORKLOADS))
def test_streaming_race_prediction_incremental(benchmark, workload):
    """Micro-batch flush every 200 events: the cost of early findings."""
    trace, batch_findings = _batch_findings("race-prediction", workload)

    def run():
        engine = StreamEngine(
            [Analysis.by_name("race-prediction")(
                "incremental-csst", **workload.analysis_kwargs)],
            window=UnboundedWindow(flush_every=200))
        return engine.run(TraceSource(trace))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.results["race-prediction"].findings == batch_findings
    benchmark.extra_info["flushes"] = result.stats.flushes


@pytest.mark.parametrize("workload", C11_WORKLOADS,
                         ids=workload_ids(C11_WORKLOADS))
def test_streaming_c11_native(benchmark, workload):
    """Streaming-native detector: per-event feed, no re-computation."""
    trace, batch_findings = _batch_findings("c11-races", workload)

    def run():
        engine = StreamEngine([Analysis.by_name("c11-races")(
            "vc", **workload.analysis_kwargs)])
        return engine.run(TraceSource(trace))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.findings_for("c11-races") == batch_findings
    benchmark.extra_info["findings"] = result.finding_count


@pytest.mark.parametrize("workload", C11_WORKLOADS,
                         ids=workload_ids(C11_WORKLOADS))
def test_batch_c11_reference(benchmark, workload):
    """The batch baseline the native streaming run is compared against."""
    trace = build_trace(workload)
    analysis = Analysis.by_name("c11-races")("vc", **workload.analysis_kwargs)
    result = benchmark.pedantic(lambda: analysis.run(trace),
                                rounds=1, iterations=1)
    benchmark.extra_info["findings"] = result.finding_count
