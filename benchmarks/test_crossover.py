"""Crossover experiment: analysis time versus trace length.

The paper's advantage for CSSTs over Vector Clocks appears when traces are
long relative to the thread count (insertions deep in the order then cost
Vector Clocks O(n) each).  This benchmark measures the TSO consistency
analysis over traces of growing length so the regime change is visible even
in the scaled-down Python reproduction; EXPERIMENTS.md discusses the result.
"""

import pytest

from repro.analyses.tso import TSOConsistencyAnalysis
from repro.core import INCREMENTAL_BACKENDS
from repro.trace.generators import tso_trace

EVENTS_PER_THREAD = (400, 800, 1600)


@pytest.mark.parametrize("backend", INCREMENTAL_BACKENDS)
@pytest.mark.parametrize("events", EVENTS_PER_THREAD)
def test_crossover_tso(benchmark, backend, events):
    trace = tso_trace(
        num_threads=3,
        events_per_thread=events,
        num_variables=max(8, events // 25),
        stale_read_fraction=0.15,
        seed=9,
    )
    analysis = TSOConsistencyAnalysis(backend)
    result = benchmark.pedantic(lambda: analysis.run(trace), rounds=1, iterations=1)
    benchmark.extra_info["events_per_thread"] = events
    benchmark.extra_info["inserts"] = result.insert_count
    benchmark.extra_info["consistent"] = result.details["consistent"]
    assert isinstance(result.details["consistent"], bool)
