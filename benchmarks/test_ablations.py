"""Ablation benchmarks for the design choices called out in DESIGN.md.

* Block-size threshold ``b`` of the Sparse Segment Tree (the paper picks
  b = 32 via a randomised stress test; we sweep it).
* Minima indexing on/off (Section 3.2's first optimization).
* Fully dynamic CSSTs versus incremental CSSTs on an insert-only workload
  (the price of generality).
"""

import random

import pytest

from repro.core import CSST, IncrementalCSST, SparseSegmentTree
from repro.trace.generators import random_cross_edges

ARRAY_SIZE = 4_096
ARRAY_OPERATIONS = 4_000
BLOCK_SIZES = (0, 4, 32, 256)


def _array_workload(seed: int = 13):
    rng = random.Random(seed)
    operations = []
    for _ in range(ARRAY_OPERATIONS):
        kind = rng.random()
        if kind < 0.45:
            operations.append(("update", rng.randrange(ARRAY_SIZE), rng.randrange(ARRAY_SIZE)))
        elif kind < 0.75:
            operations.append(("suffix_min", rng.randrange(ARRAY_SIZE), None))
        else:
            operations.append(("argleq", rng.randrange(ARRAY_SIZE), None))
    return operations


def _run_array_workload(tree: SparseSegmentTree, operations) -> int:
    checksum = 0
    for kind, first, second in operations:
        if kind == "update":
            tree.update(first, second)
        elif kind == "suffix_min":
            value = tree.suffix_min(first)
            checksum += 0 if value == float("inf") else int(value)
        else:
            result = tree.argleq(first)
            checksum += 0 if result is None else result
    return checksum


@pytest.mark.parametrize("block_size", BLOCK_SIZES)
def test_ablation_block_size(benchmark, block_size):
    operations = _array_workload()

    def run():
        tree = SparseSegmentTree(ARRAY_SIZE, block_size=block_size)
        return _run_array_workload(tree, operations)

    checksum = benchmark.pedantic(run, rounds=1, iterations=3)
    benchmark.extra_info["block_size"] = block_size
    assert checksum >= 0


@pytest.mark.parametrize("minima_indexing", (True, False),
                         ids=("indexed", "unindexed"))
def test_ablation_minima_indexing(benchmark, minima_indexing):
    operations = _array_workload(seed=17)

    def run():
        tree = SparseSegmentTree(ARRAY_SIZE, minima_indexing=minima_indexing)
        return _run_array_workload(tree, operations)

    checksum = benchmark.pedantic(run, rounds=1, iterations=3)
    assert checksum >= 0


@pytest.mark.parametrize("variant", ("incremental", "fully-dynamic"))
def test_ablation_dynamic_vs_incremental(benchmark, variant):
    """The fully dynamic CSST pays a k^3 closure per query; on insert-only
    workloads the incremental variant should therefore answer queries faster."""
    num_chains, chain_length = 8, 800
    candidates = random_cross_edges(num_chains, chain_length, chain_length,
                                    window=100, seed=23)
    rng = random.Random(29)
    queries = [
        (
            (rng.randrange(num_chains), rng.randrange(chain_length)),
            (rng.randrange(num_chains), rng.randrange(chain_length)),
        )
        for _ in range(2_000)
    ]

    def run():
        if variant == "incremental":
            order = IncrementalCSST(num_chains, chain_length)
        else:
            order = CSST(num_chains, chain_length)
        for source, target in candidates:
            if not order.reachable(source, target) and not order.reachable(target, source):
                order.insert_edge(source, target)
        hits = sum(1 for source, target in queries if order.reachable(source, target))
        return hits

    hits = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["positive_queries"] = hits
    assert hits >= 0
