"""Figure 10: geometric-mean resource ratios of the baselines over CSSTs.

The full figure aggregates every table; re-running all of them inside a
benchmark would dominate the suite, so this benchmark measures the summary
over one representative workload per analysis and reports the resulting
time ratios as ``extra_info`` (the ``python -m repro.bench`` CLI produces
the full figure).
"""

import pytest

from conftest import BENCH_SCALE
from repro.analyses.c11 import C11RaceAnalysis
from repro.analyses.deadlock import DeadlockPredictionAnalysis
from repro.analyses.linearizability import LinearizabilityAnalysis
from repro.analyses.membug import MemoryBugAnalysis
from repro.analyses.race_prediction import RacePredictionAnalysis
from repro.analyses.tso import TSOConsistencyAnalysis
from repro.analyses.uaf import UseAfterFreeAnalysis
from repro.bench.harness import TableResult
from repro.bench.tables import run_analysis_table
from repro.bench.workloads import (
    TABLE1_RACE_PREDICTION,
    TABLE2_DEADLOCK,
    TABLE3_MEMORY_BUGS,
    TABLE4_TSO,
    TABLE5_UAF,
    TABLE6_C11,
    TABLE7_LINEARIZABILITY,
)
from repro.core import DYNAMIC_BACKENDS, INCREMENTAL_BACKENDS

_REPRESENTATIVES = [
    ("race-prediction", RacePredictionAnalysis, TABLE1_RACE_PREDICTION[:1],
     INCREMENTAL_BACKENDS, "incremental-csst"),
    ("deadlocks", DeadlockPredictionAnalysis, TABLE2_DEADLOCK[:1],
     INCREMENTAL_BACKENDS, "incremental-csst"),
    ("memory-bugs", MemoryBugAnalysis, TABLE3_MEMORY_BUGS[:1],
     INCREMENTAL_BACKENDS, "incremental-csst"),
    ("x86-tso", TSOConsistencyAnalysis, TABLE4_TSO[:1],
     INCREMENTAL_BACKENDS, "incremental-csst"),
    ("use-after-free", UseAfterFreeAnalysis, TABLE5_UAF[:1],
     INCREMENTAL_BACKENDS, "incremental-csst"),
    ("c11-races", C11RaceAnalysis, TABLE6_C11[:1],
     INCREMENTAL_BACKENDS, "incremental-csst"),
    ("linearizability", LinearizabilityAnalysis, TABLE7_LINEARIZABILITY[:1],
     DYNAMIC_BACKENDS, "csst"),
]


@pytest.mark.parametrize(
    "label, analysis_cls, workloads, backends, reference",
    _REPRESENTATIVES,
    ids=[entry[0] for entry in _REPRESENTATIVES],
)
def test_fig10_resource_ratios(benchmark, label, analysis_cls, workloads,
                               backends, reference):
    def run() -> TableResult:
        return run_analysis_table(
            label, workloads, analysis_cls, backends,
            scale=BENCH_SCALE, track_memory=True,
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    time_ratios = table.mean_ratios(reference, "seconds")
    memory_ratios = table.mean_ratios(reference, "memory")
    benchmark.extra_info["time_ratio_over_csst"] = {
        backend: round(ratio, 3) for backend, ratio in time_ratios.items()
    }
    benchmark.extra_info["memory_ratio_over_csst"] = {
        backend: round(ratio, 3) for backend, ratio in memory_ratios.items()
    }
    assert all(ratio > 0 for ratio in time_ratios.values())
