"""Table 5: use-after-free constraint-query generation, per backend."""

import pytest

from conftest import run_analysis_once, workload_ids
from repro.analyses.uaf import UseAfterFreeAnalysis
from repro.bench.workloads import TABLE5_UAF
from repro.core import INCREMENTAL_BACKENDS


@pytest.mark.parametrize("backend", INCREMENTAL_BACKENDS)
@pytest.mark.parametrize("workload", TABLE5_UAF, ids=workload_ids(TABLE5_UAF))
def test_table5_use_after_free(benchmark, workload, backend):
    runner = run_analysis_once(UseAfterFreeAnalysis, workload, backend)
    result = benchmark.pedantic(runner, rounds=1, iterations=1)
    benchmark.extra_info["queries_generated"] = result.finding_count
    benchmark.extra_info["po_operations"] = result.operation_count
    assert result.operation_count > 0
