"""Shared fixtures and helpers for the benchmark suites.

Every suite regenerates one table or figure of the paper.  Traces are scaled
by ``REPRO_BENCH_SCALE`` (default 0.3) so that the whole ``pytest
benchmarks/ --benchmark-only`` run finishes in minutes; run
``python -m repro.bench`` for the full-size tables.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

import pytest

from repro.bench.workloads import Workload
from repro.trace.trace import Trace

#: Scale factor applied to every workload's per-thread event count.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))

_trace_cache: Dict[Tuple[str, str, tuple, float], Trace] = {}


def build_trace(workload: Workload, scale: float = BENCH_SCALE) -> Trace:
    """Build (and memoise) the trace of a workload at the benchmark scale.

    The key includes the generator and its parameters, not just the
    workload name: different tables reuse benchmark names (e.g. ``dq``
    appears in both the TSO and the C11 suites with different generators),
    and a name-only key would hand one suite the other's trace.
    """
    key = (workload.name, workload.generator.__name__,
           tuple(sorted(workload.generator_kwargs.items())), scale)
    if key not in _trace_cache:
        _trace_cache[key] = workload.build(scale)
    return _trace_cache[key]


def run_analysis_once(analysis_cls, workload: Workload, backend: str,
                      scale: float = BENCH_SCALE):
    """Construct the analysis and return a zero-argument runner callable."""
    trace = build_trace(workload, scale)
    analysis = analysis_cls(backend, **workload.analysis_kwargs)
    return lambda: analysis.run(trace)


def workload_ids(workloads) -> list:
    return [workload.name for workload in workloads]


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE
