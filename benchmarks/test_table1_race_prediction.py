"""Table 1: predictive data-race detection, per backend.

Regenerates the rows of the paper's Table 1 (analysis wall-clock time for
VCs, STs and incremental CSSTs) on the scaled race-prediction workloads.
"""

import pytest

from conftest import run_analysis_once, workload_ids
from repro.analyses.race_prediction import RacePredictionAnalysis
from repro.bench.workloads import TABLE1_RACE_PREDICTION
from repro.core import INCREMENTAL_BACKENDS


@pytest.mark.parametrize("backend", INCREMENTAL_BACKENDS)
@pytest.mark.parametrize("workload", TABLE1_RACE_PREDICTION,
                         ids=workload_ids(TABLE1_RACE_PREDICTION))
def test_table1_race_prediction(benchmark, workload, backend):
    runner = run_analysis_once(RacePredictionAnalysis, workload, backend)
    result = benchmark.pedantic(runner, rounds=1, iterations=1)
    benchmark.extra_info["findings"] = result.finding_count
    benchmark.extra_info["po_operations"] = result.operation_count
    assert result.operation_count > 0
