"""Figure 11: controlled scalability of insertions and queries.

Follows the paper's protocol: partial orders of k chains and l events per
chain, random windowed cross-chain edges between unordered endpoints, then
random reachability queries.  The paper's expectation -- linear insertion
cost for Vector Clocks versus logarithmic for STs/CSSTs, and near-constant
queries for Vector Clocks -- should be visible in the per-operation times.
"""

import random

import pytest

from repro.core import INCREMENTAL_BACKENDS, make_partial_order
from repro.trace.generators import random_cross_edges

CHAIN_COUNTS = (10, 20)
CHAIN_LENGTHS = (250, 500, 1000)
WINDOW = 200
QUERIES = 2_000


def _prepare(num_chains: int, chain_length: int):
    candidates = random_cross_edges(
        num_chains, chain_length, count=chain_length, window=WINDOW, seed=7,
    )
    rng = random.Random(7 + chain_length)
    queries = [
        (
            (rng.randrange(num_chains), rng.randrange(chain_length)),
            (rng.randrange(num_chains), rng.randrange(chain_length)),
        )
        for _ in range(QUERIES)
    ]
    return candidates, queries


def _build_order(backend: str, num_chains: int, chain_length: int, candidates):
    order = make_partial_order(backend, num_chains, chain_length)
    inserted = 0
    for source, target in candidates:
        if order.reachable(source, target) or order.reachable(target, source):
            continue
        order.insert_edge(source, target)
        inserted += 1
    return order, inserted


@pytest.mark.parametrize("backend", INCREMENTAL_BACKENDS)
@pytest.mark.parametrize("num_chains", CHAIN_COUNTS)
@pytest.mark.parametrize("chain_length", CHAIN_LENGTHS)
def test_fig11_insertions(benchmark, backend, num_chains, chain_length):
    candidates, _queries = _prepare(num_chains, chain_length)

    def insert_all():
        return _build_order(backend, num_chains, chain_length, candidates)

    _order, inserted = benchmark.pedantic(insert_all, rounds=1, iterations=1)
    benchmark.extra_info["inserted_edges"] = inserted
    assert inserted > 0


@pytest.mark.parametrize("backend", INCREMENTAL_BACKENDS)
@pytest.mark.parametrize("num_chains", CHAIN_COUNTS)
@pytest.mark.parametrize("chain_length", CHAIN_LENGTHS)
def test_fig11_queries(benchmark, backend, num_chains, chain_length):
    candidates, queries = _prepare(num_chains, chain_length)
    order, _inserted = _build_order(backend, num_chains, chain_length, candidates)

    def query_all():
        hits = 0
        for source, target in queries:
            if order.reachable(source, target):
                hits += 1
        return hits

    hits = benchmark.pedantic(query_all, rounds=1, iterations=1)
    benchmark.extra_info["positive_queries"] = hits
    assert 0 <= hits <= QUERIES
