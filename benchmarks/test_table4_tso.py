"""Table 4: x86-TSO consistency checking, per backend.

This analysis performs repeated updates between events in the middle of the
partial order (store-buffer flush orderings), the workload on which the
paper reports the largest gap between Vector Clocks and tree-based
structures.
"""

import pytest

from conftest import run_analysis_once, workload_ids
from repro.analyses.tso import TSOConsistencyAnalysis
from repro.bench.workloads import TABLE4_TSO
from repro.core import INCREMENTAL_BACKENDS


@pytest.mark.parametrize("backend", INCREMENTAL_BACKENDS)
@pytest.mark.parametrize("workload", TABLE4_TSO, ids=workload_ids(TABLE4_TSO))
def test_table4_tso_consistency(benchmark, workload, backend):
    runner = run_analysis_once(TSOConsistencyAnalysis, workload, backend)
    result = benchmark.pedantic(runner, rounds=1, iterations=1)
    benchmark.extra_info["consistent"] = result.details.get("consistent")
    benchmark.extra_info["po_operations"] = result.operation_count
    assert result.operation_count > 0
