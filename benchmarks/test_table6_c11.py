"""Table 6: C11 data-race detection, per backend.

The paper's one counter-example: this workload is streaming, updates rarely
propagate, and plain Vector Clocks are expected to be competitive with (or
ahead of) the tree-based structures.
"""

import pytest

from conftest import run_analysis_once, workload_ids
from repro.analyses.c11 import C11RaceAnalysis
from repro.bench.workloads import TABLE6_C11
from repro.core import INCREMENTAL_BACKENDS


@pytest.mark.parametrize("backend", INCREMENTAL_BACKENDS)
@pytest.mark.parametrize("workload", TABLE6_C11, ids=workload_ids(TABLE6_C11))
def test_table6_c11_races(benchmark, workload, backend):
    runner = run_analysis_once(C11RaceAnalysis, workload, backend)
    result = benchmark.pedantic(runner, rounds=1, iterations=1)
    benchmark.extra_info["findings"] = result.finding_count
    benchmark.extra_info["po_operations"] = result.operation_count
    assert result.operation_count > 0
