"""Table 3: predictive memory-bug detection, per backend."""

import pytest

from conftest import run_analysis_once, workload_ids
from repro.analyses.membug import MemoryBugAnalysis
from repro.bench.workloads import TABLE3_MEMORY_BUGS
from repro.core import INCREMENTAL_BACKENDS


@pytest.mark.parametrize("backend", INCREMENTAL_BACKENDS)
@pytest.mark.parametrize("workload", TABLE3_MEMORY_BUGS,
                         ids=workload_ids(TABLE3_MEMORY_BUGS))
def test_table3_memory_bugs(benchmark, workload, backend):
    runner = run_analysis_once(MemoryBugAnalysis, workload, backend)
    result = benchmark.pedantic(runner, rounds=1, iterations=1)
    benchmark.extra_info["findings"] = result.finding_count
    benchmark.extra_info["po_operations"] = result.operation_count
    assert result.operation_count > 0
