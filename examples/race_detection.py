#!/usr/bin/env python3
"""Predictive race detection through the ``repro.api`` facade.

Generates a shared-memory trace with both lock-protected and unprotected
accesses, runs the M2-style race prediction analysis with every incremental
partial-order backend through one :class:`repro.api.Session`, and reports
the predicted races together with the number of partial-order operations
each backend served -- the drop-in comparison at the heart of the paper's
evaluation, with zero orchestration code on the caller's side.

Run with:  python examples/race_detection.py
"""

from repro.api import AnalyzeConfig, CompareConfig, GenerateConfig, Session


def main() -> None:
    session = Session()

    generated = session.run(GenerateConfig(
        kind="racy",
        threads=4,
        events=400,
        seed=7,
        name="example-racy-workload",
        params={"num_variables": 24, "num_locks": 3,
                "protected_fraction": 0.55},
    ))
    trace = generated.trace
    print(f"trace: {len(trace)} events, {trace.num_threads} threads")

    # One config, every applicable backend; the session loads nothing from
    # disk because we hand it the live trace.  Analysis tunables travel in
    # params -- candidate_window=10 matches the pre-facade version of this
    # example.
    compared = session.compare(
        CompareConfig(analysis="race-prediction", trace=trace.name,
                      backends="vc,st,incremental-csst",
                      params={"candidate_window": 10}),
        trace=trace)
    for run in compared.runs:
        print(
            f"  {run.backend:18s} {run.elapsed_seconds:6.2f}s  "
            f"{run.finding_count:3d} races  "
            f"{run.insert_count:6d} inserts  {run.query_count:8d} queries"
        )

    # All backends must agree on the findings -- they only differ in speed.
    counts = {run.finding_count for run in compared.runs}
    assert len(counts) == 1, "backends disagree on the predicted races!"

    # The same request as data: the structured result exports itself.
    document = compared.to_dict()
    assert [row["backend"] for row in document["runs"]] == \
        ["vc", "st", "incremental-csst"]

    analyzed = session.analyze(
        AnalyzeConfig(analysis="race-prediction", trace=trace.name,
                      backend="incremental-csst",
                      params={"candidate_window": 10}),
        trace=trace)
    print("\npredicted races (first five):")
    for race in analyzed.raw.findings[:5]:
        print(f"  {race}")
    print("\nrace_detection example finished OK")


if __name__ == "__main__":
    main()
