#!/usr/bin/env python3
"""Predictive race detection over a synthetic workload.

Generates a shared-memory trace with both lock-protected and unprotected
accesses, runs the M2-style race prediction analysis with every incremental
partial-order backend, and reports the predicted races together with the
number of partial-order operations each backend served -- the drop-in
comparison at the heart of the paper's evaluation.

Run with:  python examples/race_detection.py
"""

import time

from repro.analyses.race_prediction import predict_races
from repro.trace.generators import racy_trace


def main() -> None:
    trace = racy_trace(
        num_threads=4,
        events_per_thread=400,
        num_variables=24,
        num_locks=3,
        protected_fraction=0.55,
        seed=7,
        name="example-racy-workload",
    )
    print(f"trace: {len(trace)} events, {trace.num_threads} threads")

    results = {}
    for backend in ("vc", "st", "incremental-csst"):
        start = time.perf_counter()
        result = predict_races(trace, backend=backend, candidate_window=10)
        elapsed = time.perf_counter() - start
        results[backend] = result
        print(
            f"  {backend:18s} {elapsed:6.2f}s  "
            f"{result.finding_count:3d} races  "
            f"{result.insert_count:6d} inserts  {result.query_count:8d} queries"
        )

    # All backends must agree on the findings -- they only differ in speed.
    counts = {result.finding_count for result in results.values()}
    assert len(counts) == 1, "backends disagree on the predicted races!"

    print("\npredicted races (first five):")
    for race in results["incremental-csst"].findings[:5]:
        print(f"  {race}")
    print("\nrace_detection example finished OK")


if __name__ == "__main__":
    main()
