#!/usr/bin/env python3
"""Tour of the ``repro.api`` facade: configs in, structured results out.

Walks the full surface the CLI is a shim over: capability introspection,
trace generation, analysis, a parallel sweep, a streaming watch, and a
config dict round-trip -- all in-process, no subprocesses.

Run with:  python examples/api_tour.py
"""

import tempfile
from pathlib import Path

from repro.api import (
    AnalyzeConfig,
    GenerateConfig,
    Session,
    SweepConfig,
    WatchConfig,
)
from repro.trace import dump_trace


def main() -> None:
    session = Session()

    # 1. Introspection: what can this install do?
    caps = session.capabilities()
    print(f"repro {caps['version']}: {len(caps['analyses'])} analyses, "
          f"{len(caps['backends'])} backends, {len(caps['kinds'])} workload "
          f"kinds, {len(caps['suites'])} suites")

    # 2. Generate a workload and analyze it.
    with tempfile.TemporaryDirectory(prefix="repro-api-tour-") as workdir:
        _tour(session, Path(workdir))

    print("api_tour example finished OK")


def _tour(session: Session, workdir: Path) -> None:
    trace_path = workdir / "racy.std"
    generated = session.run(GenerateConfig(kind="racy", threads=3,
                                           events=80, seed=11))
    dump_trace(generated.trace, trace_path)
    print(f"generated {generated.to_table()}")

    analyzed = session.run(AnalyzeConfig(analysis="race-prediction",
                                         trace=str(trace_path),
                                         max_findings=3))
    print(analyzed.to_table())

    # 3. Sweep a registered suite; the result aggregates like the paper.
    sweep = session.run(SweepConfig(suite="smoke",
                                    analyses="race-prediction",
                                    backends="vc,incremental-csst",
                                    baseline="vc"))
    assert sweep.exit_code == 0, "sweep reported failures"
    document = sweep.to_dict()
    print(f"sweep: {document['jobs']} jobs, {document['failures']} failures, "
          f"speedups over vc: {document['speedups']}")

    # 4. Watch the same trace as a stream, receiving findings live.
    live = []
    watched = session.run(
        WatchConfig(source=str(trace_path), analyses="race_prediction",
                    flush_every=40),
        on_finding=lambda item: live.append(item))
    print(f"watch: {len(live)} findings streamed, summary: "
          f"{watched.stream.summary()}")

    # 5. Configs are data: serialize, ship, rebuild, compare.
    config = SweepConfig(suite="smoke", jobs=2, format="json")
    rebuilt = SweepConfig.from_dict(config.to_dict())
    assert rebuilt == config, "config dict round-trip must be lossless"
    print(f"config round-trip OK: {config.to_dict()}")


if __name__ == "__main__":
    main()
