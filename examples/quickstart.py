#!/usr/bin/env python3
"""Quickstart: maintaining a partial order with CSSTs.

This example mirrors the paper's motivating scenario (Section 1.1): a
partial order over the events of a concurrent trace is updated and queried
while an analysis explores reads-from choices, including *deleting*
orderings that turned out to be inconsistent -- the operation Vector Clocks
cannot support.

Run with:  python examples/quickstart.py
"""

from repro import CSST, IncrementalCSST


def incremental_usage() -> None:
    """Insert-only usage: the common case for most dynamic analyses."""
    print("== Incremental CSSTs ==")
    order = IncrementalCSST(num_chains=3, capacity_hint=16)

    # Nodes are (chain, index) pairs; program order within a chain is implicit.
    order.insert_edge((0, 1), (1, 4))     # event 1 of thread 0 -> event 4 of thread 1
    order.insert_edge((1, 5), (2, 2))     # event 5 of thread 1 -> event 2 of thread 2

    print("(0,0) ->* (2,3)?", order.reachable((0, 0), (2, 3)))
    print("earliest successor of (0,1) in chain 2:", order.successor((0, 1), 2))
    print("latest predecessor of (2,2) in chain 0:", order.predecessor((2, 2), 0))
    print("(2,0) and (0,5) concurrent?", order.concurrent((2, 0), (0, 5)))
    print()


def fully_dynamic_usage() -> None:
    """Fully dynamic usage: speculative orderings can be withdrawn."""
    print("== Fully dynamic CSSTs ==")
    order = CSST(num_chains=3, capacity_hint=16)

    # Fixed orderings derived from the observed reads-from map.
    order.insert_edge((1, 2), (0, 1))
    order.insert_edge((1, 1), (2, 1))

    # The analysis speculates that the read (0,2) observes the write (1,0).
    speculative = [((1, 0), (0, 2)), ((0, 0), (1, 0)), ((2, 0), (1, 0))]
    for source, target in speculative:
        order.insert_edge(source, target)
    print("speculation makes (2,0) reach (0,2)?", order.reachable((2, 0), (0, 2)))

    # That choice closes a cycle elsewhere, so the analysis withdraws it --
    # an O(log n) operation per edge instead of rebuilding the whole order.
    for source, target in speculative:
        order.delete_edge(source, target)
    print("after deletion, (2,0) reaches (0,2)?", order.reachable((2, 0), (0, 2)))

    # ... and tries the alternative writer instead.
    order.insert_edge((2, 0), (0, 2))
    order.insert_edge((1, 0), (2, 0))
    print("alternative choice keeps the order acyclic:",
          not order.reachable((0, 2), (2, 0)))
    print()


def main() -> None:
    incremental_usage()
    fully_dynamic_usage()
    print("quickstart finished OK")


if __name__ == "__main__":
    main()
