#!/usr/bin/env python3
"""x86-TSO consistency checking of litmus tests and generated histories.

Demonstrates the consistency analysis of the paper's Table 4: the chain DAG
uses two chains per thread (program order + store buffer) and saturation
derives the orderings any witness must satisfy.  Classic litmus tests show
the difference between TSO and sequential consistency: store buffering (SB)
is accepted, while a coherence violation is rejected.

Run with:  python examples/consistency_checking.py
"""

from repro.analyses.tso import check_tso_consistency
from repro.trace import MemoryOrder, Trace
from repro.trace.generators import tso_trace


def store_buffering_litmus() -> Trace:
    """Both threads read the initial value after writing: allowed on TSO."""
    trace = Trace(name="SB")
    trace.atomic_write(0, "x", value=1, memory_order=MemoryOrder.SEQ_CST)
    trace.atomic_read(0, "y", value=0, memory_order=MemoryOrder.SEQ_CST)
    trace.atomic_write(1, "y", value=2, memory_order=MemoryOrder.SEQ_CST)
    trace.atomic_read(1, "x", value=0, memory_order=MemoryOrder.SEQ_CST)
    return trace


def message_passing_litmus() -> Trace:
    """The data read observes the write published before the flag."""
    trace = Trace(name="MP")
    trace.atomic_write(0, "data", value=1, memory_order=MemoryOrder.SEQ_CST)
    trace.atomic_write(0, "flag", value=2, memory_order=MemoryOrder.SEQ_CST)
    trace.atomic_read(1, "flag", value=2, memory_order=MemoryOrder.SEQ_CST)
    trace.atomic_read(1, "data", value=1, memory_order=MemoryOrder.SEQ_CST)
    return trace


def coherence_violation() -> Trace:
    """A read goes back to the initial value after observing a newer one:
    impossible under TSO."""
    trace = Trace(name="CoRR-violation")
    trace.atomic_write(0, "x", value=1, memory_order=MemoryOrder.SEQ_CST)
    trace.atomic_read(1, "x", value=1, memory_order=MemoryOrder.SEQ_CST)
    trace.atomic_read(1, "x", value=0, memory_order=MemoryOrder.SEQ_CST)
    return trace


def main() -> None:
    print("litmus tests:")
    for trace in (store_buffering_litmus(), message_passing_litmus(),
                  coherence_violation()):
        result = check_tso_consistency(trace, backend="incremental-csst")
        verdict = "consistent" if result.details["consistent"] else "INCONSISTENT"
        print(f"  {trace.name:16s} -> {verdict}"
              f" ({result.insert_count} orderings inserted)")
        for witness in result.findings:
            print(f"      witness: {witness}")

    print("\ngenerated store-buffer workload:")
    workload = tso_trace(num_threads=3, events_per_thread=300, num_variables=12,
                         stale_read_fraction=0.0, seed=3, name="generated")
    for backend in ("vc", "st", "incremental-csst"):
        result = check_tso_consistency(workload, backend=backend)
        print(
            f"  {backend:18s} consistent={result.details['consistent']} "
            f"time={result.elapsed_seconds:5.2f}s "
            f"inserts={result.insert_count} queries={result.query_count}"
        )
    print("\nconsistency_checking example finished OK")


if __name__ == "__main__":
    main()
