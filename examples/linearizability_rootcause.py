#!/usr/bin/env python3
"""Root-causing a linearizability violation with a fully dynamic order.

This is the paper's Table 7 scenario: the commit-order search inserts
orderings while it explores linearizations and *deletes* them whenever it
backtracks, so the partial order must support decremental updates.  The
example builds a concurrent-set history with an injected violation, runs the
analysis with the plain-graph baseline and with fully dynamic CSSTs, and
prints the root cause (the blocking window of operations the search could
not get past).

Run with:  python examples/linearizability_rootcause.py
"""

import time

from repro.analyses.linearizability import check_linearizability
from repro.trace.generators import history_trace


def main() -> None:
    violating = history_trace(
        num_threads=3,
        operations_per_thread=14,
        data_structure="set",
        inject_violation=True,
        seed=11,
        name="concurrent-set-history",
    )
    healthy = history_trace(
        num_threads=3,
        operations_per_thread=14,
        data_structure="set",
        inject_violation=False,
        seed=11,
        name="healthy-history",
    )

    print("violating history:")
    for backend in ("graph", "csst"):
        start = time.perf_counter()
        result = check_linearizability(violating, backend=backend, spec="set",
                                       max_steps=60_000)
        elapsed = time.perf_counter() - start
        print(
            f"  {backend:6s} verdict={result.details['verdict']:12s} "
            f"time={elapsed:5.2f}s steps={result.details['steps']:6d} "
            f"inserts={result.insert_count} deletes={result.delete_count}"
        )
        for violation in result.findings:
            print("      root cause (blocking window):")
            for operation in violation.blocking:
                print(f"        {operation}")

    print("\nhealthy history:")
    result = check_linearizability(healthy, backend="csst", spec="set")
    print(f"  csst   verdict={result.details['verdict']} "
          f"steps={result.details['steps']}")
    print("\nlinearizability_rootcause example finished OK")


if __name__ == "__main__":
    main()
