#!/usr/bin/env python3
"""Writing a custom dynamic analysis against the partial-order interface.

The point of CSSTs being a *drop-in* replacement is that an analysis only
talks to the abstract ``PartialOrder`` interface and can switch backends
with one argument.  This example builds a small happens-before race checker
from scratch (it is deliberately simpler than the library's own analyses),
runs it with three different backends, and verifies they agree.

Run with:  python examples/custom_analysis.py
"""

from repro import make_partial_order
from repro.trace import EventKind, Trace
from repro.trace.generators import racy_trace


def happens_before_races(trace: Trace, backend: str) -> list:
    """A minimal happens-before race checker.

    Builds the happens-before order (program order + lock release/acquire
    edges) through the generic interface and reports conflicting accesses
    that end up unordered.
    """
    order = make_partial_order(
        backend,
        num_chains=max(trace.num_threads, 1),
        capacity_hint=max(trace.max_thread_length, 1),
    )

    last_release = {}
    last_access = {}
    races = []
    for event in trace:
        if event.kind is EventKind.RELEASE:
            last_release[event.variable] = event
        elif event.kind is EventKind.ACQUIRE:
            previous = last_release.get(event.variable)
            if previous is not None and previous.thread != event.thread:
                if not order.reachable(previous.node, event.node):
                    order.insert_edge(previous.node, event.node)
        elif event.is_access:
            for (variable, thread), previous in list(last_access.items()):
                if variable != event.variable or thread == event.thread:
                    continue
                if not (previous.is_write or event.is_write):
                    continue
                if not order.reachable(previous.node, event.node):
                    races.append((previous, event))
            last_access[(event.variable, event.thread)] = event
    return races


def main() -> None:
    trace = racy_trace(num_threads=4, events_per_thread=200, num_variables=12,
                       num_locks=2, seed=5, name="custom-analysis-workload")
    print(f"trace: {len(trace)} events, {trace.num_threads} threads")

    counts = {}
    for backend in ("vc", "st", "incremental-csst"):
        races = happens_before_races(trace, backend)
        counts[backend] = len(races)
        print(f"  {backend:18s} {len(races):4d} racy access pairs")

    assert len(set(counts.values())) == 1, "backends disagree!"
    print("\nall backends agree; custom_analysis example finished OK")


if __name__ == "__main__":
    main()
