"""Typed, validated request configs for the :mod:`repro.api` facade.

Every entry point of the system -- trace generation, single analyses,
backend comparisons, parallel sweeps, live watching, corpus generation,
differential fuzzing, and the perf harness -- is described by one frozen
dataclass here.  A config is *pure data*: building one never touches the
filesystem or the registries, so configs can be constructed, serialized,
shipped, and diffed freely; all resolution happens when a
:class:`~repro.api.session.Session` runs them.

Shared contract (enforced by tests):

* **frozen** -- configs are immutable value objects; derive variants with
  :func:`dataclasses.replace`.
* **validated** -- out-of-range values raise
  :class:`~repro.errors.ConfigError` at construction time, not mid-run.
* **dict round-trip** -- ``Config.from_dict(config.to_dict()) == config``
  for every config, and ``from_dict`` rejects unknown keys, so JSON files
  and HTTP payloads map onto configs losslessly.

Name-list fields (``analyses``, ``backends``, ``kinds``, ``schedulers``)
accept a comma-separated string, any iterable of names, or ``None``
("use the default set"), and normalize to a tuple of strings.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigError

#: ``(key, value)`` pairs -- the hashable spelling of a keyword mapping.
Pairs = Tuple[Tuple[str, Any], ...]

#: Render formats of requests whose results export a table and a JSON
#: document (analyze, compare, gen, fuzz).  The CLI parser choices and
#: ``Session.capabilities()`` both derive from this -- one list to grow.
RESULT_FORMATS: Tuple[str, ...] = ("text", "json")

#: Render formats of a watch run (live text lines vs JSON-lines stream).
WATCH_FORMATS: Tuple[str, ...] = ("text", "jsonl")


def _name_tuple(value: Any, label: str,
                default: Optional[Tuple[str, ...]] = None
                ) -> Optional[Tuple[str, ...]]:
    """Normalize a name-list field (see module docstring).

    Only ``None`` means "use the default set"; an explicitly empty
    selection stays empty -- the layer consuming it decides what that
    means (the sweep planner rejects an empty plan, fuzz/watch fall back
    to their kind defaults exactly as the pre-facade CLI did), and a
    programmatic caller whose filtered list came up empty must not
    silently run everything.
    """
    if value is None:
        return default
    if isinstance(value, str):
        items = [item.strip() for item in value.split(",") if item.strip()]
    else:
        try:
            items = [str(item) for item in value]
        except TypeError:
            raise ConfigError(
                f"{label} must be names (list or comma-separated string), "
                f"got {value!r}") from None
    return tuple(items)


def _pairs(value: Any, label: str) -> Pairs:
    """Normalize a keyword mapping to sorted ``(key, value)`` pairs."""
    if value is None:
        return ()
    if isinstance(value, Mapping):
        items = value.items()
    else:
        try:
            items = [(key, val) for key, val in value]
        except (TypeError, ValueError):
            raise ConfigError(
                f"{label} must be a mapping or (key, value) pairs, "
                f"got {value!r}") from None
    return tuple(sorted((str(key), val) for key, val in items))


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def _coerce_numbers(config: "Config", kind: type, **names: Any) -> None:
    """Coerce numeric fields (``kind`` is ``int`` or ``float``) in place.

    JSON and query-string payloads routinely deliver numbers as strings;
    the round-trip contract promises those still land as configs (or fail
    with :class:`ConfigError`, never a raw ``TypeError``).  ``None`` is
    passed through for optional fields.
    """
    for name, value in names.items():
        if value is None:
            continue
        try:
            # int() would silently truncate 2.9 -> 2; a fractional value
            # for an integer field is a caller mistake, not a rounding.
            if kind is int and isinstance(value, float) \
                    and not value.is_integer():
                raise ValueError
            object.__setattr__(config, name, kind(value))
        except (TypeError, ValueError):
            raise ConfigError(
                f"{name} must be {'an integer' if kind is int else 'a number'}, "
                f"got {value!r}") from None


def _set(config: "Config", **values: Any) -> None:
    """Assign normalized field values on a frozen dataclass."""
    for name, value in values.items():
        object.__setattr__(config, name, value)


def _check_metrics_path(value: Optional[str], command: str) -> None:
    """Validate a ``metrics`` sink-path field (``--metrics PATH``)."""
    _require(value is None or (isinstance(value, str) and bool(value)),
             f"{command} metrics must be a sink path, got {value!r}")


def _check_timeline_path(value: Optional[str], command: str) -> None:
    """Validate a ``timeline`` output-path field (``--timeline PATH``)."""
    _require(value is None or (isinstance(value, str) and bool(value)),
             f"{command} timeline must be an output path, got {value!r}")


def _check_policy(config: "Config", command: str) -> None:
    """Validate the ``policy``/``policy_state`` pair of tuned requests."""
    from repro.tune.policy import POLICY_NAMES

    _require(config.policy is None or config.policy in POLICY_NAMES,
             f"unknown {command} policy {config.policy!r}; "
             f"known: {', '.join(POLICY_NAMES)}")
    _require(config.policy_state is None
             or (isinstance(config.policy_state, str)
                 and bool(config.policy_state)),
             f"{command} policy_state must be a file path, "
             f"got {config.policy_state!r}")


@dataclass(frozen=True)
class Config:
    """Base class: dict round-trip shared by every request config."""

    #: Subcommand spelling of this request (set per subclass); used in
    #: error messages and by :meth:`repro.api.session.Session.run`
    #: dispatch diagnostics.
    command: ClassVar[str] = ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able dict of this config (tuples become lists, ``params``
        pairs become mappings)."""
        out: Dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name == "params":
                value = _pairs_to_jsonable(value)
            elif isinstance(value, tuple):
                value = list(value)
            out[spec.name] = value
        return out

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "Config":
        """Build a config from a mapping, rejecting unknown keys."""
        if not isinstance(mapping, Mapping):
            raise ConfigError(f"{cls.command} config must be a mapping, "
                              f"got {type(mapping).__name__}")
        known = {spec.name for spec in fields(cls)}
        unknown = sorted(set(mapping) - known)
        if unknown:
            raise ConfigError(f"unknown {cls.command} config keys {unknown}; "
                              f"known: {sorted(known)}")
        return cls(**{key: mapping[key] for key in mapping})


def _pairs_to_jsonable(value: Any) -> Any:
    """``params`` pairs back to plain dicts for :meth:`Config.to_dict`."""
    if not isinstance(value, tuple):
        return value
    out: Dict[str, Any] = {}
    for key, val in value:
        out[key] = dict(val) if isinstance(val, tuple) else val
    return out


@dataclass(frozen=True)
class GenerateConfig(Config):
    """Generate one synthetic trace (CLI: ``repro generate``).

    ``params`` forwards extra generator keyword arguments verbatim
    (e.g. ``{"scheduler": "adversarial"}`` for scenario kinds).
    """

    command: ClassVar[str] = "generate"

    kind: str
    threads: int = 4
    events: int = 200
    seed: int = 0
    name: Optional[str] = None
    params: Pairs = ()

    def __post_init__(self) -> None:
        _require(bool(self.kind) and isinstance(self.kind, str),
                 "generate config needs a workload kind")
        _coerce_numbers(self, int, threads=self.threads, events=self.events,
                        seed=self.seed)
        _require(self.threads >= 1,
                 f"threads must be >= 1, got {self.threads}")
        _require(self.events >= 1, f"events must be >= 1, got {self.events}")
        _set(self, params=_pairs(self.params, "generate params"))


@dataclass(frozen=True)
class AnalyzeConfig(Config):
    """Run one analysis over one trace file (CLI: ``repro analyze``).

    ``max_findings`` only bounds how many findings the *rendered* result
    shows; the result object always carries the full list.  ``params``
    forwards extra keyword arguments to the analysis constructor --
    analysis tunables (e.g. ``candidate_window`` for race prediction) and
    backend construction knobs (e.g. ``block_size``) alike.
    """

    command: ClassVar[str] = "analyze"

    analysis: str
    trace: str
    backend: Optional[str] = None
    max_findings: int = 20
    params: Pairs = ()
    metrics: Optional[str] = None
    policy: Optional[str] = None
    policy_state: Optional[str] = None

    def __post_init__(self) -> None:
        _require(bool(self.analysis), "analyze config needs an analysis name")
        _require(bool(self.trace), "analyze config needs a trace path")
        _coerce_numbers(self, int, max_findings=self.max_findings)
        _set(self, params=_pairs(self.params, "analyze params"))
        _check_metrics_path(self.metrics, "analyze")
        _check_policy(self, "analyze")


@dataclass(frozen=True)
class CompareConfig(Config):
    """Run one analysis on every applicable backend (CLI: ``repro
    compare``).

    ``params`` forwards extra keyword arguments to every constructed
    analysis (see :class:`AnalyzeConfig`).
    """

    command: ClassVar[str] = "compare"

    analysis: str
    trace: str
    backends: Optional[Tuple[str, ...]] = None
    params: Pairs = ()

    def __post_init__(self) -> None:
        _require(bool(self.analysis), "compare config needs an analysis name")
        _require(bool(self.trace), "compare config needs a trace path")
        _set(self,
             backends=_name_tuple(self.backends, "compare backends"),
             params=_pairs(self.params, "compare params"))


@dataclass(frozen=True)
class SweepConfig(Config):
    """Sweep a suite of traces x analyses x backends (CLI: ``repro
    sweep``).

    ``corpus`` (a manifest path from ``repro gen corpus``) overrides
    ``suite``.  ``format`` is carried here -- not render-side -- because it
    interacts with other options (``baseline`` has no effect on the CSV
    export, which is one of the validation warnings the result reports).
    """

    command: ClassVar[str] = "sweep"

    FORMATS: ClassVar[Tuple[str, ...]] = ("table", "json", "csv")

    suite: str = "smoke"
    corpus: Optional[str] = None
    jobs: int = 1
    analyses: Optional[Tuple[str, ...]] = None
    backends: Optional[Tuple[str, ...]] = None
    baseline: Optional[str] = None
    timeout: Optional[float] = None
    repeat: int = 1
    seed: Optional[int] = None
    format: str = "table"
    metrics: Optional[str] = None
    timeline: Optional[str] = None
    policy: Optional[str] = None
    policy_state: Optional[str] = None
    oracle: bool = False

    def __post_init__(self) -> None:
        _coerce_numbers(self, int, jobs=self.jobs, repeat=self.repeat,
                        seed=self.seed)
        _coerce_numbers(self, float, timeout=self.timeout)
        _require(self.jobs >= 1, f"jobs must be >= 1, got {self.jobs}")
        _require(self.repeat >= 1, f"repeat must be >= 1, got {self.repeat}")
        _require(self.format in self.FORMATS,
                 f"unknown sweep format {self.format!r}; "
                 f"known: {', '.join(self.FORMATS)}")
        _require(self.timeout is None or self.timeout > 0,
                 f"timeout must be > 0, got {self.timeout}")
        _set(self,
             analyses=_name_tuple(self.analyses, "sweep analyses"),
             backends=_name_tuple(self.backends, "sweep backends"))
        _check_metrics_path(self.metrics, "sweep")
        _check_timeline_path(self.timeline, "sweep")
        _check_policy(self, "sweep")
        _require(not self.oracle
                 or (self.backends is not None and "auto" in self.backends),
                 "oracle mode validates the 'auto' pseudo-backend; "
                 "include 'auto' in the sweep backends")

    def validation_warnings(self) -> Tuple[str, ...]:
        """Option combinations that run but drop a flag's effect."""
        warnings = []
        if self.baseline is not None and self.format == "csv":
            warnings.append(
                "baseline has no effect with the csv format (the CSV "
                "carries per-job records, not speedup aggregates)")
        if self.timeout is not None and self.jobs <= 1:
            warnings.append(
                "timeout only applies to parallel runs; jobs=1 runs "
                "inline and cannot be interrupted")
        wants_auto = self.backends is not None and "auto" in self.backends
        if (self.policy is not None or self.policy_state is not None) \
                and not wants_auto:
            warnings.append(
                "policy/policy_state only apply to the 'auto' "
                "pseudo-backend; include 'auto' in the sweep backends")
        return tuple(warnings)


@dataclass(frozen=True)
class WatchConfig(Config):
    """Stream a trace source through analyses (CLI: ``repro watch``).

    ``source`` is a trace file (``.std`` / ``.std.gz``), a corpus manifest
    (``manifest.json[#TRACE_ID]``), or a generator spec
    (``kind[:key=value,...]``).  ``analyses`` may be ``None`` for generator
    sources (the kind's declared analyses) and checkpoint resumes (the
    checkpoint records them).
    """

    command: ClassVar[str] = "watch"

    source: str
    analyses: Optional[Tuple[str, ...]] = None
    backend: Optional[str] = None
    window: Optional[str] = None
    flush_every: Optional[int] = None
    checkpoint: Optional[str] = None
    checkpoint_every: Optional[int] = None
    follow: bool = False
    idle_timeout: Optional[float] = None
    max_events: Optional[int] = None
    metrics: Optional[str] = None
    timeline: Optional[str] = None
    policy: Optional[str] = None
    policy_state: Optional[str] = None
    #: Additional sources beyond ``source``.  More than one source turns
    #: the watch into a multi-tenant run through the serving code path
    #: (one tenant per source); options that only make sense for a single
    #: feed (follow, checkpoint resume, max_events) are rejected then.
    sources: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        _require(bool(self.source), "watch config needs a source")
        _set(self, sources=tuple(str(item) for item in self.sources or ()))
        if self.sources:
            _require(self.analyses is not None and bool(self.analyses),
                     "multi-source watch needs explicit analyses")
            _require(not self.follow,
                     "--follow only applies to a single source")
            _require(self.checkpoint is None,
                     "checkpoint resume only applies to a single source; "
                     "use serve's checkpoint_dir for multi-tenant state")
            _require(self.max_events is None,
                     "max_events only applies to a single source")
        _coerce_numbers(self, int, flush_every=self.flush_every,
                        checkpoint_every=self.checkpoint_every,
                        max_events=self.max_events)
        _coerce_numbers(self, float, idle_timeout=self.idle_timeout)
        _require(self.flush_every is None or self.flush_every >= 1,
                 f"flush_every must be >= 1, got {self.flush_every}")
        _require(self.checkpoint_every is None or self.checkpoint_every >= 1,
                 f"checkpoint_every must be >= 1, got {self.checkpoint_every}")
        _require(self.max_events is None or self.max_events >= 0,
                 f"max_events must be >= 0, got {self.max_events}")
        _set(self, analyses=_name_tuple(self.analyses, "watch analyses"))
        _check_metrics_path(self.metrics, "watch")
        _check_timeline_path(self.timeline, "watch")
        _check_policy(self, "watch")


@dataclass(frozen=True)
class ServeConfig(Config):
    """Multi-tenant sharded streaming service (CLI: ``repro serve``).

    Exactly one ingest mode must be configured: **replay** (``sources``,
    one tenant per source, deterministic round-robin interleave -- the
    testing/CI mode) or **socket** (``host``/``port``, the line protocol
    of :mod:`repro.serve.protocol`).  ``workers=0`` runs the degenerate
    in-process path with no worker processes (no crash recovery).
    """

    command: ClassVar[str] = "serve"

    analyses: Tuple[str, ...] = ()
    sources: Tuple[str, ...] = ()
    host: Optional[str] = None
    port: Optional[int] = None
    workers: int = 2
    backend: Optional[str] = "auto"
    window: Optional[str] = None
    flush_every: Optional[int] = None
    checkpoint_dir: Optional[str] = None
    checkpoint_every: Optional[int] = None
    policy: Optional[str] = None
    policy_state: Optional[str] = None
    queue_size: int = 256
    quota_events: Optional[int] = None
    drain_timeout: float = 60.0
    stop_after: Optional[float] = None
    crash_worker: Optional[str] = None
    #: Write one worker pid per line here once workers are up -- the hook
    #: external kill-a-worker tests (and the CI smoke job) use to aim.
    pid_file: Optional[str] = None
    metrics: Optional[str] = None
    timeline: Optional[str] = None

    def __post_init__(self) -> None:
        _set(self, analyses=_name_tuple(self.analyses, "serve analyses",
                                        default=()) or (),
             sources=tuple(str(item) for item in self.sources or ()))
        _require(bool(self.analyses), "serve config needs analyses")
        socket_mode = self.host is not None or self.port is not None
        _require(bool(self.sources) != socket_mode,
                 "serve needs exactly one of: replay sources, or a "
                 "host/port socket to listen on")
        _coerce_numbers(self, int, workers=self.workers, port=self.port,
                        flush_every=self.flush_every,
                        checkpoint_every=self.checkpoint_every,
                        queue_size=self.queue_size,
                        quota_events=self.quota_events)
        _coerce_numbers(self, float, drain_timeout=self.drain_timeout,
                        stop_after=self.stop_after)
        _require(self.workers >= 0,
                 f"workers must be >= 0, got {self.workers}")
        _require(self.queue_size >= 1,
                 f"queue_size must be >= 1, got {self.queue_size}")
        _require(self.quota_events is None or self.quota_events >= 1,
                 f"quota_events must be >= 1, got {self.quota_events}")
        _require(self.flush_every is None or self.flush_every >= 1,
                 f"flush_every must be >= 1, got {self.flush_every}")
        _require(self.checkpoint_every is None or self.checkpoint_every >= 1,
                 f"checkpoint_every must be >= 1, got "
                 f"{self.checkpoint_every}")
        _require(self.crash_worker is None or self.workers >= 1,
                 "crash_worker requires worker processes (workers >= 1)")
        _check_metrics_path(self.metrics, "serve")
        _check_timeline_path(self.timeline, "serve")
        _check_policy(self, "serve")


@dataclass(frozen=True)
class GenConfig(Config):
    """Build a trace corpus plus manifest (CLI: ``repro gen corpus``).

    Mirrors :class:`repro.gen.corpus.CorpusConfig` and adds the output
    directory; ``threads``/``events``/``schedulers`` left as ``None`` take
    the corpus module's defaults, so this config does not duplicate them.
    """

    command: ClassVar[str] = "gen"

    out: str
    name: str = "corpus"
    kinds: Tuple[str, ...] = ()
    count: int = 3
    seed: int = 0
    threads: Optional[str] = None
    events: Optional[str] = None
    params: Pairs = ()
    schedulers: Optional[Tuple[str, ...]] = None
    register: bool = True
    format: str = "std"

    def __post_init__(self) -> None:
        _require(bool(self.out), "gen config needs an output directory")
        _coerce_numbers(self, int, count=self.count, seed=self.seed)
        _require(self.count >= 1, f"count must be >= 1, got {self.count}")
        _require(self.format in ConvertConfig.TRACE_FORMATS,
                 f"unknown trace format {self.format!r}; "
                 f"known: {', '.join(ConvertConfig.TRACE_FORMATS)}")
        if isinstance(self.params, Mapping):
            entries = list(self.params.items())
        else:
            try:
                entries = [(kind, overrides)
                           for kind, overrides in (self.params or ())]
            except (TypeError, ValueError):
                raise ConfigError(
                    "gen params must map kind -> {parameter: value}, "
                    f"got {self.params!r}") from None
        _set(self,
             name=str(self.name),
             threads=None if self.threads is None else str(self.threads),
             events=None if self.events is None else str(self.events),
             kinds=_name_tuple(self.kinds, "gen kinds", default=()) or (),
             schedulers=_name_tuple(self.schedulers, "gen schedulers"),
             params=tuple(sorted(
                 (str(kind), _pairs(overrides, f"gen params[{kind}]"))
                 for kind, overrides in entries)))

    def to_corpus_config(self):
        """The :class:`repro.gen.corpus.CorpusConfig` this config wraps."""
        from repro.gen.corpus import CorpusConfig

        overrides: Dict[str, Any] = {
            "name": self.name, "kinds": self.kinds, "count": self.count,
            "seed": self.seed, "params": self.params, "format": self.format,
        }
        if self.threads is not None:
            overrides["threads"] = self.threads
        if self.events is not None:
            overrides["events"] = self.events
        if self.schedulers is not None:
            overrides["schedulers"] = self.schedulers
        return CorpusConfig(**overrides)


@dataclass(frozen=True)
class ConvertConfig(Config):
    """Translate one trace between the STD text format and the ``.stc``
    binary columnar format (CLI: ``repro convert``).

    The source format is sniffed from the file (magic bytes first, then
    extension); the output format follows the destination suffix unless
    ``to`` forces it (``"std"`` / ``"stc"``).  ``.gz`` suffixes always
    mean canonical, byte-reproducible gzip in either direction.
    """

    command: ClassVar[str] = "convert"

    #: Output formats ``to`` may force.
    TRACE_FORMATS: ClassVar[Tuple[str, ...]] = ("std", "stc")

    source: str
    out: str
    to: Optional[str] = None

    def __post_init__(self) -> None:
        _require(bool(self.source), "convert config needs a source trace")
        _require(bool(self.out), "convert config needs an output path")
        _require(self.to is None or self.to in self.TRACE_FORMATS,
                 f"unknown trace format {self.to!r}; "
                 f"known: {', '.join(self.TRACE_FORMATS)}")


@dataclass(frozen=True)
class FuzzConfig(Config):
    """Differential fuzzing run (CLI: ``repro fuzz``)."""

    command: ClassVar[str] = "fuzz"

    seeds: int = 50
    quick: bool = False
    kinds: Optional[Tuple[str, ...]] = None
    backends: Optional[Tuple[str, ...]] = None
    stream: bool = True
    seed: int = 0
    out: str = "fuzz-out"
    minimize: bool = True
    max_checks: int = 400

    def __post_init__(self) -> None:
        _coerce_numbers(self, int, seeds=self.seeds, seed=self.seed,
                        max_checks=self.max_checks)
        _require(self.seeds >= 1, f"seeds must be >= 1, got {self.seeds}")
        _require(self.max_checks >= 1,
                 f"max_checks must be >= 1, got {self.max_checks}")
        _set(self,
             kinds=_name_tuple(self.kinds, "fuzz kinds"),
             backends=_name_tuple(self.backends, "fuzz backends"))


@dataclass(frozen=True)
class BenchConfig(Config):
    """Perf-regression harness run (CLI: ``repro bench perf``).

    ``repeats``/``threshold`` left as ``None`` take the harness defaults.
    ``out`` is the report path (``"-"`` renders to the result only,
    ``None`` picks the dated default); ``update_baseline`` runs both modes
    and rewrites the baseline file instead.
    """

    command: ClassVar[str] = "bench"

    mode: str = "perf"
    quick: bool = False
    repeats: Optional[int] = None
    out: Optional[str] = None
    baseline: Optional[str] = None
    threshold: Optional[float] = None
    compare: bool = True
    update_baseline: bool = False

    def __post_init__(self) -> None:
        _require(self.mode == "perf",
                 f"unknown bench mode {self.mode!r}; known: perf")
        _coerce_numbers(self, int, repeats=self.repeats)
        _coerce_numbers(self, float, threshold=self.threshold)
        _require(self.repeats is None or self.repeats >= 1,
                 f"repeats must be >= 1, got {self.repeats}")
        _require(self.threshold is None or self.threshold > 0,
                 f"threshold must be > 0, got {self.threshold}")


@dataclass(frozen=True)
class StatsConfig(Config):
    """Render a recorded metrics snapshot (CLI: ``repro stats``).

    ``source`` is a JSON-lines metrics file written by ``--metrics PATH``
    (or any single-snapshot JSON document); ``index`` picks which snapshot
    line to render (default: the latest).
    """

    command: ClassVar[str] = "stats"

    FORMATS: ClassVar[Tuple[str, ...]] = ("table", "json", "prom", "chrome")

    source: str
    format: str = "table"
    index: int = -1

    def __post_init__(self) -> None:
        _require(bool(self.source), "stats config needs a metrics file")
        _require(self.format in self.FORMATS,
                 f"unknown stats format {self.format!r}; "
                 f"known: {', '.join(self.FORMATS)}")
        _coerce_numbers(self, int, index=self.index)


@dataclass(frozen=True)
class TimelineConfig(Config):
    """Render a recorded metrics snapshot as a Chrome trace-event /
    Perfetto timeline (CLI: ``repro timeline``).

    ``source`` is a JSON-lines metrics file written by ``--metrics PATH``
    (or any single-snapshot JSON document); ``index`` picks the snapshot
    line (default: the latest).  ``out`` is the trace-event JSON
    destination (``"-"``: stdout).  Rendering is deterministic, so
    ``repro timeline run.jsonl`` reproduces byte-for-byte the file a
    ``--timeline`` flag wrote for the same snapshot.
    """

    command: ClassVar[str] = "timeline"

    source: str
    out: str = "-"
    index: int = -1

    def __post_init__(self) -> None:
        _require(bool(self.source), "timeline config needs a metrics file")
        _require(bool(self.out), "timeline config needs an output path")
        _coerce_numbers(self, int, index=self.index)


@dataclass(frozen=True)
class ReportConfig(Config):
    """Longitudinal report generation (CLI: ``repro report trend``).

    ``mode`` selects the report (only ``"trend"`` today); ``dir`` is the
    directory holding ``BENCH_*.json`` documents, ``out`` the directory
    receiving the rendered markdown + JSON pair.
    """

    command: ClassVar[str] = "report"

    MODES: ClassVar[Tuple[str, ...]] = ("trend",)

    mode: str = "trend"
    dir: str = "."
    out: str = "docs/tables"
    basename: str = "perf_trend"

    def __post_init__(self) -> None:
        _require(self.mode in self.MODES,
                 f"unknown report mode {self.mode!r}; "
                 f"known: {', '.join(self.MODES)}")
        _require(bool(self.dir), "report config needs a source directory")
        _require(bool(self.out), "report config needs an output directory")
        _require(bool(self.basename), "report config needs a basename")


#: Every request config, in CLI-subcommand order.
ALL_CONFIGS: Tuple[type, ...] = (
    GenerateConfig, AnalyzeConfig, CompareConfig, SweepConfig, WatchConfig,
    ServeConfig, GenConfig, ConvertConfig, FuzzConfig, BenchConfig,
    StatsConfig, TimelineConfig, ReportConfig,
)
