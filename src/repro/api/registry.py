"""Unified registry: one resolution surface over the system's name tables.

Historically each layer grew its own registry -- workload kinds in
:data:`repro.trace.generators.GENERATOR_REGISTRY`, analyses in
:meth:`repro.analyses.common.base.Analysis.registered`, partial-order
backends in :data:`repro.core.factory.BACKENDS`, sweep suites in
:data:`repro.runner.corpus.SUITES` -- and every front end re-implemented
lookup, error wording, and extension hooks against whichever subset it
knew about.  :class:`Registry` is the one object that resolves and extends
all four.

The registry is a *view*: the underlying module-level tables remain the
single source of truth (the stream engine, the fuzzer, and the CLI tables
keep reading them directly), so anything registered here is immediately
visible throughout the registering process, exactly like the scenario
families that self-register at import time.  Instantiating a second
``Registry`` therefore observes the same state; the class exists to give
:class:`~repro.api.session.Session` one injection point and to host
plugin loading.

Process-local caveat: *parallel* sweeps (``jobs > 1``) rebuild analyses
and backends by name inside worker processes.  Workers started by ``fork``
inherit runtime registrations; under the ``spawn`` start method (the
default on macOS/Windows) they re-import the library fresh and only see
what registers at import time -- run plugin-backed sweeps serially
(``jobs=1``), or package the plugin as a ``repro.plugins`` entry point
and load it from the importing module.

Plugins are ordinary callables taking the registry::

    def register(registry):
        registry.register_analysis(MyAnalysis)
        registry.register_backend("my-order", MyOrder)

installed either by calling them directly, or -- entry-point style -- by
publishing them in the ``repro.plugins`` group of an installed
distribution and calling :meth:`Registry.load_plugins`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.errors import ReproError


class Registry:
    """Resolution and extension surface over kinds, analyses, backends and
    suites (see the module docstring for the view semantics)."""

    # ------------------------------------------------------------------ #
    # Analyses
    # ------------------------------------------------------------------ #
    def analyses(self) -> Dict[str, type]:
        """Snapshot of the analysis registry (name -> class)."""
        from repro.analyses.common.base import Analysis

        return Analysis.registered()

    def resolve_analysis(self, name: str) -> str:
        """Resolve a user-supplied analysis name to its registry key.

        Accepts the exact key, an underscore spelling
        (``race_prediction``), or any unique prefix (``deadlock`` ->
        ``deadlock-prediction``).
        """
        registry = self.analyses()
        candidate = name.strip().replace("_", "-")
        if candidate in registry:
            return candidate
        matches = sorted(key for key in registry if key.startswith(candidate))
        if len(matches) == 1:
            return matches[0]
        known = ", ".join(sorted(registry))
        if matches:
            raise ReproError(
                f"ambiguous analysis {name!r} (matches: "
                f"{', '.join(matches)}); known: {known}")
        raise ReproError(f"unknown analysis {name!r}; known: {known}")

    def analysis(self, name: str) -> type:
        """Look up an analysis class, accepting the spellings of
        :meth:`resolve_analysis`."""
        return self.analyses()[self.resolve_analysis(name)]

    def register_analysis(self, analysis_cls: type) -> type:
        """Register an analysis class defined outside ``repro``
        (see :meth:`repro.analyses.common.base.Analysis.register`)."""
        from repro.analyses.common.base import Analysis

        return Analysis.register(analysis_cls)

    # ------------------------------------------------------------------ #
    # Workload kinds (trace generators)
    # ------------------------------------------------------------------ #
    def generators(self) -> Dict[str, object]:
        """Snapshot of the generator registry (kind ->
        :class:`~repro.trace.generators.GeneratorEntry`)."""
        from repro.trace.generators import GENERATOR_REGISTRY

        return dict(GENERATOR_REGISTRY)

    def generator(self, kind: str):
        """Look up a workload kind (raises
        :class:`~repro.errors.TraceError` for unknown kinds)."""
        from repro.trace.generators import get_generator

        return get_generator(kind)

    def register_generator(self, kind: str, generator: Callable, *,
                           size_parameter: str = "events_per_thread",
                           analyses: Sequence[str] = (),
                           description: str = "",
                           source: str = "plugin") -> None:
        """Register a trace generator under ``kind`` (see
        :func:`repro.trace.generators.register_generator`)."""
        from repro.trace.generators import register_generator

        register_generator(kind, generator, size_parameter=size_parameter,
                           analyses=analyses, description=description,
                           source=source)

    # ------------------------------------------------------------------ #
    # Partial-order backends
    # ------------------------------------------------------------------ #
    def backends(self) -> Dict[str, type]:
        """Snapshot of the backend table (name -> class)."""
        from repro.core import BACKENDS

        return dict(BACKENDS)

    def backend(self, name: str) -> type:
        """Look up a backend class by name."""
        from repro.core import BACKENDS

        try:
            return BACKENDS[name]
        except KeyError:
            known = ", ".join(sorted(BACKENDS))
            raise ReproError(f"unknown partial-order backend {name!r}; "
                             f"known: {known}") from None

    def register_backend(self, name: str, backend_cls: type, *,
                         incremental: Optional[bool] = None,
                         dynamic: Optional[bool] = None) -> None:
        """Register a partial-order backend (see
        :func:`repro.core.factory.register_backend`)."""
        from repro.core import register_backend

        register_backend(name, backend_cls, incremental=incremental,
                         dynamic=dynamic)

    # ------------------------------------------------------------------ #
    # Sweep suites
    # ------------------------------------------------------------------ #
    def suites(self) -> Dict[str, object]:
        """Snapshot of the suite registry (name ->
        :class:`~repro.runner.corpus.Suite`)."""
        from repro.runner.corpus import SUITES

        return dict(SUITES)

    def suite(self, name: str):
        """Look up a registered sweep suite."""
        from repro.runner.corpus import get_suite

        return get_suite(name)

    def register_suite(self, suite):
        """Register a sweep suite (see
        :func:`repro.runner.corpus.register_suite`)."""
        from repro.runner.corpus import register_suite

        return register_suite(suite)

    # ------------------------------------------------------------------ #
    # Plugins
    # ------------------------------------------------------------------ #
    def install(self, plugin: Callable[["Registry"], object]) -> None:
        """Run one plugin callable against this registry."""
        plugin(self)

    def load_plugins(self, group: str = "repro.plugins"
                     ) -> List[Tuple[str, Optional[str]]]:
        """Load every installed entry point of ``group``.

        Each entry point must resolve to a callable taking the registry.
        Returns ``(entry point name, error message or None)`` per entry
        point -- a plugin that fails to load or run is reported, not
        fatal, so one broken plugin cannot take down the CLI.
        """
        try:
            from importlib.metadata import entry_points
        except ImportError:  # pragma: no cover - py3.7 fallback not shipped
            return []
        try:
            points = entry_points(group=group)
        except TypeError:  # pragma: no cover - py3.9 select-style API
            points = entry_points().get(group, [])
        loaded: List[Tuple[str, Optional[str]]] = []
        for point in points:
            try:
                self.install(point.load())
            except Exception as error:  # noqa: BLE001 - isolate plugins
                loaded.append((point.name, f"{type(error).__name__}: {error}"))
            else:
                loaded.append((point.name, None))
        return loaded


#: The process-wide default registry used by sessions constructed without
#: an explicit one.  All ``Registry`` instances share state (the class is
#: a view); this instance only pins identity for ``is``-style checks.
_DEFAULT_REGISTRY = Registry()


def default_registry() -> Registry:
    """The registry a bare ``Session()`` resolves through."""
    return _DEFAULT_REGISTRY
