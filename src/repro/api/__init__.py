"""``repro.api`` -- the library-first facade over every workflow.

Declarative, validated configs in; structured results out::

    from repro.api import Session, SweepConfig

    session = Session()
    result = session.run(SweepConfig(suite="smoke", jobs=2))
    print(result.to_table())
    records = result.records          # rich per-job objects
    document = result.to_dict()       # or the JSON document

The pieces:

* :mod:`repro.api.config` -- one frozen dataclass per workflow
  (``AnalyzeConfig``, ``SweepConfig``, ``WatchConfig``, ``GenConfig``,
  ``FuzzConfig``, ``BenchConfig``, plus ``GenerateConfig`` and
  ``CompareConfig``), each with a validated ``from_dict``/``to_dict``
  round trip;
* :mod:`repro.api.registry` -- :class:`Registry`, the unified resolution
  and plugin-registration surface over workload kinds, analyses,
  partial-order backends, and sweep suites;
* :mod:`repro.api.session` -- :class:`Session`, which runs configs and
  exposes :meth:`~repro.api.session.Session.capabilities` for
  introspection;
* :mod:`repro.api.results` -- the result objects, all sharing the
  ``to_dict``/``to_json``/``to_table``/``exit_code`` export protocol.

The CLI (``python -m repro``) is a thin shim over this package; anything
the CLI can do, a script can do through a ``Session`` without spawning a
process.
"""

from repro.api.config import (
    ALL_CONFIGS,
    AnalyzeConfig,
    BenchConfig,
    CompareConfig,
    Config,
    ConvertConfig,
    FuzzConfig,
    GenConfig,
    GenerateConfig,
    ReportConfig,
    ServeConfig,
    StatsConfig,
    SweepConfig,
    TimelineConfig,
    WatchConfig,
)
from repro.api.registry import Registry, default_registry
from repro.api.results import (
    AnalyzeResult,
    BenchResult,
    CompareResult,
    ConvertResult,
    CorpusResult,
    FuzzResult,
    GenerateResult,
    ReportResult,
    Result,
    ServeResult,
    StatsResult,
    SweepRunResult,
    TimelineResult,
    WatchResult,
)
from repro.api.session import Session

__all__ = [
    "ALL_CONFIGS",
    "AnalyzeConfig",
    "AnalyzeResult",
    "BenchConfig",
    "BenchResult",
    "CompareConfig",
    "CompareResult",
    "Config",
    "ConvertConfig",
    "ConvertResult",
    "CorpusResult",
    "FuzzConfig",
    "FuzzResult",
    "GenConfig",
    "GenerateConfig",
    "GenerateResult",
    "Registry",
    "ReportConfig",
    "ReportResult",
    "Result",
    "ServeConfig",
    "ServeResult",
    "Session",
    "StatsConfig",
    "StatsResult",
    "SweepConfig",
    "SweepRunResult",
    "TimelineConfig",
    "TimelineResult",
    "WatchConfig",
    "WatchResult",
    "default_registry",
]
