"""Structured result objects returned by :class:`repro.api.Session`.

Every ``Session.run(config)`` call returns one of these.  They share one
export protocol with :class:`repro.runner.results.SweepResult` and the
bench documents:

* ``to_dict()``  -- JSON-able document (the canonical machine form);
* ``to_json()``  -- ``to_dict`` rendered as indented JSON.  For requests
  that already had a JSON format before the facade existed (sweeps), the
  bytes are unchanged -- the parity golden tests pin this;
* ``to_table()`` -- the human rendering, byte-identical to what the CLI
  printed before the facade existed;
* ``exit_code``  -- the process exit code a front end should return for
  this outcome (:data:`repro.errors.EXIT_OK` /
  :data:`~repro.errors.EXIT_FAILURE`);
* ``warnings``   -- non-fatal diagnostics (dropped flags, baseline ran no
  job, ...) for the front end's stderr.

The result objects also keep their rich payloads (the live
:class:`~repro.trace.Trace`, the per-job sweep records, the fuzz report)
so library callers are not limited to the serialized view.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import EXIT_FAILURE, EXIT_OK

if TYPE_CHECKING:  # deferred: keep `import repro` light (core+errors only)
    from repro.runner.results import SweepResult
    from repro.trace.trace import Trace


@dataclass
class Result:
    """Base class implementing the shared export protocol."""

    #: Non-fatal diagnostics a front end should surface on stderr.
    warnings: Tuple[str, ...] = ()
    #: Metrics snapshot of the run (set by ``Session.run`` when telemetry
    #: was enabled, ``None`` otherwise).  Deliberately an attribute, not
    #: part of ``to_dict()``: the serialized documents are pinned by
    #: parity goldens and must not change shape with telemetry on.
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def exit_code(self) -> int:
        """Stable process exit code for this outcome."""
        return EXIT_OK

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able document of this result."""
        raise NotImplementedError

    def to_json(self, indent: int = 2) -> str:
        """``to_dict`` as indented JSON text."""
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def to_table(self) -> str:
        """Human-readable rendering (no trailing newline)."""
        raise NotImplementedError


def _scalar_details(details: Mapping[str, Any]) -> List[Tuple[str, Any]]:
    """The sorted scalar detail entries an analyze rendering shows."""
    return [(key, value) for key, value in sorted(details.items())
            if not isinstance(value, (list, dict))]


@dataclass
class GenerateResult(Result):
    """One generated trace (from :class:`~repro.api.config.GenerateConfig`)."""

    kind: str = ""
    seed: int = 0
    trace: Optional[Trace] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.trace.name,
            "seed": self.seed,
            "event_count": len(self.trace),
            "thread_count": self.trace.num_threads,
        }

    def to_table(self) -> str:
        return (f"{self.trace.name}: {len(self.trace)} events "
                f"({self.trace.num_threads} threads)")


@dataclass
class ConvertResult(Result):
    """One trace format translation (from
    :class:`~repro.api.config.ConvertConfig`)."""

    source: str = ""
    out: str = ""
    source_format: str = ""
    out_format: str = ""
    trace_name: str = ""
    event_count: int = 0
    thread_count: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "out": self.out,
            "source_format": self.source_format,
            "out_format": self.out_format,
            "name": self.trace_name,
            "event_count": self.event_count,
            "thread_count": self.thread_count,
        }

    def to_table(self) -> str:
        return (f"{self.source} ({self.source_format}) -> "
                f"{self.out} ({self.out_format}): "
                f"{self.event_count} events ({self.thread_count} threads)")


@dataclass
class AnalyzeResult(Result):
    """One analysis run (from :class:`~repro.api.config.AnalyzeConfig`).

    Wraps the library-level
    :class:`~repro.analyses.common.base.AnalysisResult` (kept intact in
    :attr:`raw`); ``max_findings`` only bounds :meth:`to_table`.
    """

    raw: Any = None
    max_findings: int = 20

    def to_dict(self) -> Dict[str, Any]:
        raw = self.raw
        return {
            "analysis": raw.analysis,
            "backend": raw.backend,
            "backend_selected": raw.details.get("backend_selected",
                                                raw.backend),
            "trace_name": raw.trace_name,
            "trace_events": raw.trace_events,
            "trace_threads": raw.trace_threads,
            "elapsed_seconds": raw.elapsed_seconds,
            "finding_count": raw.finding_count,
            "findings": [str(finding) for finding in raw.findings],
            "insert_count": raw.insert_count,
            "delete_count": raw.delete_count,
            "query_count": raw.query_count,
            "details": raw.details,
        }

    def to_table(self) -> str:
        raw = self.raw
        lines = [raw.summary()]
        for key, value in _scalar_details(raw.details):
            lines.append(f"  {key}: {value}")
        shown = raw.findings[:max(self.max_findings, 0)]
        for finding in shown:
            lines.append(f"  finding: {finding}")
        remaining = raw.finding_count - len(shown)
        if remaining > 0:
            lines.append(f"  ... and {remaining} more")
        return "\n".join(lines)


@dataclass
class CompareResult(Result):
    """One analysis across backends (from
    :class:`~repro.api.config.CompareConfig`); one entry of :attr:`runs`
    per backend, in applicable-backend order."""

    analysis: str = ""
    trace_name: str = ""
    runs: List[Any] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "analysis": self.analysis,
            "trace_name": self.trace_name,
            "runs": [{
                "backend": run.backend,
                "elapsed_seconds": run.elapsed_seconds,
                "finding_count": run.finding_count,
                "insert_count": run.insert_count,
                "delete_count": run.delete_count,
                "query_count": run.query_count,
            } for run in self.runs],
        }

    def to_table(self) -> str:
        lines = [f"{'backend':22s} {'seconds':>9s} {'findings':>9s} "
                 f"{'inserts':>9s} {'deletes':>9s} {'queries':>9s}"]
        for run in self.runs:
            lines.append(
                f"{run.backend:22s} {run.elapsed_seconds:9.3f} "
                f"{run.finding_count:9d} {run.insert_count:9d} "
                f"{run.delete_count:9d} {run.query_count:9d}")
        return "\n".join(lines)


@dataclass
class SweepRunResult(Result):
    """One sweep (from :class:`~repro.api.config.SweepConfig`).

    Wraps the runner-layer :class:`~repro.runner.results.SweepResult`
    (kept intact in :attr:`sweep`); ``to_json``/``to_table``/``to_csv``
    delegate to it so the serialized forms are byte-identical to the
    pre-facade CLI output.
    """

    sweep: Optional[SweepResult] = None
    baseline: Optional[str] = None

    @property
    def exit_code(self) -> int:
        return EXIT_FAILURE if self.sweep.failures() else EXIT_OK

    @property
    def records(self):
        return self.sweep.records

    def to_dict(self) -> Dict[str, Any]:
        return self.sweep.to_document(baseline=self.baseline)

    def to_table(self) -> str:
        return self.sweep.format_table(baseline=self.baseline)

    def to_csv(self, destination) -> None:
        self.sweep.to_csv(destination)


@dataclass
class WatchResult(Result):
    """One watch run (from :class:`~repro.api.config.WatchConfig`).

    Wraps the engine-layer :class:`~repro.stream.engine.StreamResult`
    (:attr:`stream`); ``to_dict`` is exactly the ``jsonl`` summary
    document the CLI emits.
    """

    stream: Any = None
    backbone: bool = False  #: whether a shared sync backbone was maintained
    cursor: int = 0  #: engine cursor after the run
    checkpoint: Optional[str] = None  #: checkpoint path saved to, if any
    resumed_from: Optional[str] = None  #: checkpoint path resumed from
    resume_cursor: int = 0  #: cursor the run resumed at

    @property
    def exit_code(self) -> int:
        # Mirror `sweep`: a run whose final flush failed for some analysis
        # is not a clean success (its final result is missing), even though
        # the stream itself was consumed and checkpointed.
        return EXIT_FAILURE if self.stream.errors else EXIT_OK

    def to_dict(self) -> Dict[str, Any]:
        result = self.stream
        document = {
            "type": "summary",
            "name": result.name,
            "events": result.stats.events,
            "threads": result.stats.threads,
            "flushes": result.stats.flushes,
            "emitted": result.stats.emitted,
            "backbone_edges": result.stats.backbone_edges,
            "final": {name: [str(finding) for finding in res.findings]
                      for name, res in sorted(result.results.items())},
        }
        # Only `auto` runs carry picks; keep pre-tuning summaries intact.
        if getattr(result, "backends_selected", None):
            document["backends_selected"] = dict(result.backends_selected)
        return document

    def to_table(self) -> str:
        result = self.stream
        lines = [result.summary()]
        if self.backbone:
            lines.append(f"  sync backbone: {result.stats.backbone_edges} "
                         f"edges across {result.stats.threads} threads")
        for name, res in sorted(result.results.items()):
            lines.append(f"  final[{name}]: {res.finding_count} findings "
                         f"({res.operation_count} PO ops, "
                         f"{res.elapsed_seconds:.3f}s last flush)")
        if self.checkpoint is not None:
            lines.append(f"checkpoint saved to {self.checkpoint} "
                         f"(cursor {self.cursor})")
        return "\n".join(lines)


@dataclass
class ServeResult(Result):
    """One service run (from :class:`~repro.api.config.ServeConfig`).

    Wraps the service-layer :class:`~repro.serve.service.ServeOutcome`
    (:attr:`outcome`).  ``to_dict`` nests, per tenant, the *identical*
    summary document a single-source ``repro watch`` over that tenant's
    feed would emit -- that shape equality is the serve/watch parity
    contract the integration tests pin.
    """

    outcome: Any = None

    @property
    def exit_code(self) -> int:
        # Like watch: a tenant whose final flush failed (or whose feed
        # was poisoned by a bad line) is not a clean success.
        for document in self.outcome.summaries.values():
            if document.get("errors"):
                return EXIT_FAILURE
        return EXIT_FAILURE if self.outcome.errors else EXIT_OK

    def to_dict(self) -> Dict[str, Any]:
        outcome = self.outcome
        document: Dict[str, Any] = {
            "type": "serve",
            "tenants": list(outcome.tenants),
            "events": outcome.events,
            "workers": outcome.workers,
            "respawns": outcome.respawns,
            "quota_rejected": outcome.rejected,
            "findings": [
                {"tenant": item.tenant, "analysis": item.analysis,
                 "position": item.position, "finding": item.finding}
                for item in sorted(
                    outcome.findings,
                    key=lambda f: (f.tenant, f.position, f.analysis,
                                   f.finding))
            ],
            "summaries": {tenant: outcome.summaries[tenant]
                          for tenant in outcome.tenants},
        }
        if outcome.errors:
            document["errors"] = [
                {"tenant": tenant, "error": text}
                for tenant, text in outcome.errors]
        return document

    def to_table(self) -> str:
        outcome = self.outcome
        lines = [f"served {len(outcome.tenants)} tenants, "
                 f"{outcome.events} events, {len(outcome.findings)} "
                 f"findings ({outcome.workers} workers, "
                 f"{outcome.respawns} respawns)"]
        for tenant in outcome.tenants:
            doc = outcome.summaries[tenant]
            lines.append(f"  {tenant}: {doc['events']} events, "
                         f"{doc['emitted']} findings")
        if outcome.rejected:
            lines.append(f"  quota-rejected events: {outcome.rejected}")
        for tenant, text in outcome.errors[:5]:
            lines.append(f"  error[{tenant}]: {text}")
        return "\n".join(lines)


@dataclass
class CorpusResult(Result):
    """One built corpus (from :class:`~repro.api.config.GenConfig`);
    ``to_dict`` is the manifest document written to disk."""

    manifest: Dict[str, Any] = field(default_factory=dict)
    out: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return self.manifest

    def to_json(self, indent: int = 2) -> str:
        # sort_keys matches how build_corpus writes manifest.json, so the
        # printed document is byte-identical to the file (docs/cli.md).
        return json.dumps(self.manifest, indent=indent, sort_keys=True)

    def to_table(self) -> str:
        members = self.manifest["traces"]
        total_events = sum(member["event_count"] for member in members)
        return (
            f"wrote {len(members)} traces ({total_events} events) to "
            f"{self.out}\n"
            f"manifest: {self.out}/manifest.json\n"
            f"registered sweep suite {self.manifest['suite']!r} "
            f"(sweep it with: repro sweep --corpus {self.out}/manifest.json)")


@dataclass
class FuzzResult(Result):
    """One fuzz run (from :class:`~repro.api.config.FuzzConfig`); wraps
    the :class:`~repro.gen.fuzz.FuzzReport` in :attr:`report`."""

    report: Any = None
    out: str = "fuzz-out"
    minimized: bool = True  #: whether divergences were delta-debugged

    @property
    def exit_code(self) -> int:
        return EXIT_OK if self.report.ok else EXIT_FAILURE

    def to_dict(self) -> Dict[str, Any]:
        report = self.report
        return {
            "ok": report.ok,
            "cases": report.cases,
            "comparisons": report.comparisons,
            "per_kind": dict(sorted(report.per_kind.items())),
            "divergences": [{
                "case_id": divergence.case.case_id,
                "analysis": divergence.analysis,
                "left": divergence.left,
                "right": divergence.right,
                "error": divergence.error,
                "left_findings": divergence.left_findings,
                "right_findings": divergence.right_findings,
                "minimized_events": divergence.minimized_events,
                "counterexample": divergence.counterexample,
            } for divergence in report.divergences],
        }

    def to_table(self) -> str:
        return self.report.summary()


@dataclass
class BenchResult(Result):
    """One perf-harness run (from :class:`~repro.api.config.BenchConfig`).

    :attr:`document` is the perf JSON document (the run document, or the
    two-mode baseline document for ``update_baseline`` runs);
    :attr:`notes` are the post-report stdout messages; :attr:`regressions`
    pairs each comparison entry with whether it is a real regression
    (advisory ``note:`` entries are not).
    """

    document: Dict[str, Any] = field(default_factory=dict)
    report: str = ""
    out_path: Optional[str] = None  #: report file written, if any
    rendered_document: Optional[str] = None  #: set for ``out="-"`` runs
    notes: Tuple[str, ...] = ()
    regressions: Tuple[Tuple[str, bool], ...] = ()

    @property
    def exit_code(self) -> int:
        return (EXIT_FAILURE
                if any(regressing for _, regressing in self.regressions)
                else EXIT_OK)

    def to_dict(self) -> Dict[str, Any]:
        return self.document

    def to_json(self, indent: int = 2) -> str:
        # sort_keys matches how perf documents are written to disk.
        return json.dumps(self.document, indent=indent, sort_keys=True)

    def to_table(self) -> str:
        return self.report


@dataclass
class StatsResult(Result):
    """One rendered metrics snapshot (from
    :class:`~repro.api.config.StatsConfig`).

    :attr:`snapshot` is the selected snapshot document;
    :attr:`snapshot_count` how many the source file held.  ``to_prom`` is
    the Prometheus text exposition of the same snapshot.
    """

    source: str = ""
    snapshot: Dict[str, Any] = field(default_factory=dict)
    snapshot_count: int = 0
    index: int = -1

    def to_dict(self) -> Dict[str, Any]:
        return self.snapshot

    def to_table(self) -> str:
        from repro.obs.sinks import render_stats_table

        return render_stats_table(self.snapshot)

    def to_prom(self) -> str:
        from repro.obs.sinks import render_prom

        return render_prom(self.snapshot)

    def to_chrome(self) -> str:
        from repro.obs.export import render_chrome_json

        return render_chrome_json(self.snapshot)


@dataclass
class TimelineResult(Result):
    """One rendered timeline (from
    :class:`~repro.api.config.TimelineConfig`).

    :attr:`snapshot` is the selected snapshot document; :attr:`rendered`
    the canonical Chrome trace-event JSON text -- the exact bytes written
    to :attr:`out_path` (when ``out`` was a file), identical to what a
    ``--timeline`` flag would have produced from the same snapshot.
    """

    source: str = ""
    snapshot: Dict[str, Any] = field(default_factory=dict)
    snapshot_count: int = 0
    index: int = -1
    rendered: str = ""
    out_path: Optional[str] = None  #: trace file written, if any

    def to_dict(self) -> Dict[str, Any]:
        from repro.obs.export import render_chrome_trace

        return render_chrome_trace(self.snapshot)

    def to_json(self, indent: int = 2) -> str:
        # The canonical (compact, key-sorted) form, NOT re-indented:
        # byte-identical output is the whole point of this command.
        return self.rendered

    def to_table(self) -> str:
        events = self.to_dict()["traceEvents"]
        lanes = {(event["pid"], event["tid"]) for event in events
                 if event["ph"] == "X"}
        if self.out_path is not None:
            return (f"wrote {self.out_path}: {len(events)} events across "
                    f"{len(lanes)} lanes (open in chrome://tracing or "
                    f"https://ui.perfetto.dev)")
        return self.rendered


@dataclass
class ReportResult(Result):
    """One generated longitudinal report (from
    :class:`~repro.api.config.ReportConfig`); :attr:`document` is the
    trend document also written to :attr:`json_path`."""

    mode: str = "trend"
    document: Dict[str, Any] = field(default_factory=dict)
    markdown_path: str = ""
    json_path: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return self.document

    def to_table(self) -> str:
        modes = self.document.get("modes", {})
        cases = sum(len(section.get("cases", {}))
                    for section in modes.values())
        runs = max((len(section.get("runs", ()))
                    for section in modes.values()), default=0)
        return (f"trend report: {cases} case rows across "
                f"{len(modes)} modes ({runs} runs)\n"
                f"wrote {self.markdown_path}\n"
                f"wrote {self.json_path}")
