"""The :class:`Session` facade: every workflow behind one typed entry point.

A session owns a :class:`~repro.api.registry.Registry` and turns request
configs (:mod:`repro.api.config`) into structured results
(:mod:`repro.api.results`)::

    from repro.api import AnalyzeConfig, Session

    session = Session()
    result = session.run(AnalyzeConfig(analysis="race-prediction",
                                       trace="trace.std"))
    print(result.to_table())        # exactly what the CLI would print
    document = result.to_dict()     # ... or consume it as data

``Session.run`` dispatches on the config type; the per-workflow methods
(:meth:`Session.analyze`, :meth:`Session.sweep`, ...) are equally public
for callers who prefer explicit names or need the extra hooks (a live
``Trace`` instead of a path, streaming callbacks).

The CLI (:mod:`repro.cli`) is one consumer of this facade -- each
subcommand builds a config, calls ``run``, and renders the result -- so
embedding the same workflows in a script, a service, or a notebook never
needs to shell out.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from repro._version import __version__
from repro.api.config import (
    RESULT_FORMATS,
    WATCH_FORMATS,
    AnalyzeConfig,
    BenchConfig,
    CompareConfig,
    Config,
    ConvertConfig,
    FuzzConfig,
    GenConfig,
    GenerateConfig,
    ReportConfig,
    ServeConfig,
    StatsConfig,
    SweepConfig,
    TimelineConfig,
    WatchConfig,
)
from repro.api.registry import Registry, default_registry
from repro.api.results import (
    AnalyzeResult,
    BenchResult,
    CompareResult,
    ConvertResult,
    CorpusResult,
    FuzzResult,
    GenerateResult,
    ReportResult,
    Result,
    ServeResult,
    StatsResult,
    SweepRunResult,
    TimelineResult,
    WatchResult,
)
from repro.obs import metrics as obs_metrics
from repro.errors import (
    EXIT_ERROR,
    EXIT_FAILURE,
    EXIT_INTERRUPT,
    EXIT_OK,
    ConfigError,
    ReproError,
)

if TYPE_CHECKING:  # deferred: keep `import repro` light (core+errors only)
    from repro.trace.trace import Trace

#: ``on_notice`` callback: ``(kind, message)`` with ``kind`` one of
#: ``"info"`` (progress the CLI prints to stdout in text mode) or
#: ``"warning"`` (diagnostics for stderr; also collected on the result).
NoticeHook = Callable[[str, str], None]


class Session:
    """Programmatic entry point unifying every workflow of the system."""

    def __init__(self, registry: Optional[Registry] = None,
                 load_plugins: bool = False,
                 metrics: Optional["obs_metrics.MetricsRegistry"] = None
                 ) -> None:
        self.registry = registry if registry is not None else default_registry()
        #: Session-wide metrics registry.  When set, every ``run`` call is
        #: instrumented into it (cumulative across runs); when ``None``,
        #: telemetry stays off unless a config carries a ``metrics`` sink
        #: path, in which case a fresh per-run registry is used.
        self.metrics = metrics
        #: ``(entry point name, error message or None)`` per plugin loaded
        #: at construction -- empty unless ``load_plugins`` was set.  A
        #: broken plugin is not fatal; this is where its failure surfaces.
        self.plugin_report = (self.registry.load_plugins()
                              if load_plugins else [])

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def run(self, config: Config, **hooks: Any) -> Result:
        """Run any request config and return its structured result.

        ``hooks`` are forwarded to the workflow method: ``watch`` accepts
        ``on_finding``/``on_notice``, ``fuzz`` accepts ``on_case``,
        ``analyze``/``compare`` accept ``trace``.  A hook the dispatched
        workflow does not support is a :class:`~repro.errors.ConfigError`,
        not a stray ``TypeError``.

        When telemetry is enabled -- a session-wide registry
        (``Session(metrics=...)``), a ``metrics`` sink path, or a
        ``timeline`` output path on the config -- the whole run executes
        under one root span named after the command, ``result.telemetry``
        carries the registry snapshot, a sink path receives one JSON line
        per run (append semantics), and a timeline path receives the
        snapshot rendered as Chrome trace-event JSON.
        """
        for config_type, method, allowed in (
                (GenerateConfig, self.generate, ()),
                (AnalyzeConfig, self.analyze, ("trace",)),
                (CompareConfig, self.compare, ("trace",)),
                (SweepConfig, self.sweep, ()),
                (WatchConfig, self.watch, ("on_finding", "on_notice")),
                (ServeConfig, self.serve, ("on_finding", "on_notice")),
                (GenConfig, self.gen_corpus, ()),
                (ConvertConfig, self.convert, ()),
                (FuzzConfig, self.fuzz, ("on_case",)),
                (BenchConfig, self.bench, ()),
                (StatsConfig, self.stats, ()),
                (TimelineConfig, self.timeline, ()),
                (ReportConfig, self.report, ())):
            if isinstance(config, config_type):
                unsupported = sorted(set(hooks) - set(allowed))
                if unsupported:
                    accepted = (f"; accepted: {', '.join(allowed)}"
                                if allowed else " (it accepts none)")
                    raise ConfigError(
                        f"{config.command} does not accept "
                        f"{', '.join(unsupported)}{accepted}")
                return self._run_instrumented(config, method, hooks)
        raise ConfigError(f"Session.run cannot dispatch "
                          f"{type(config).__name__!r}; expected one of the "
                          f"repro.api config types")

    def _run_instrumented(self, config: Config, method: Callable[..., Result],
                          hooks: Dict[str, Any]) -> Result:
        """Execute one dispatched workflow, instrumented when enabled."""
        metrics_path = getattr(config, "metrics", None)
        timeline_path = getattr(config, "timeline", None)
        registry = self.metrics
        if registry is None:
            if metrics_path is None and timeline_path is None:
                return method(config, **hooks)
            registry = obs_metrics.MetricsRegistry()
        with obs_metrics.use_registry(registry):
            with registry.span(config.command):
                result = method(config, **hooks)
        result.telemetry = registry.snapshot()
        if metrics_path is not None:
            from repro.obs.sinks import JsonlSink

            JsonlSink(metrics_path).emit(result.telemetry)
        if timeline_path is not None:
            from repro.obs.export import write_chrome_trace

            write_chrome_trace(result.telemetry, timeline_path)
        return result

    # ------------------------------------------------------------------ #
    # Workflows
    # ------------------------------------------------------------------ #
    def generate(self, config: GenerateConfig) -> GenerateResult:
        """Materialize one synthetic trace."""
        from repro.trace.generators import build_trace

        trace = build_trace(config.kind, num_threads=config.threads,
                            events=config.events, seed=config.seed,
                            name=config.name, **dict(config.params))
        return GenerateResult(kind=config.kind, seed=config.seed, trace=trace)

    def analyze(self, config: AnalyzeConfig,
                trace: Optional[Trace] = None) -> AnalyzeResult:
        """Run one analysis over one trace.

        ``trace`` skips loading ``config.trace`` from disk -- the hook for
        callers that already hold a live :class:`~repro.trace.Trace`.
        ``config.trace`` may be STD text or ``.stc`` binary; the format is
        sniffed.
        """
        from repro.trace import read_trace

        cls = self.registry.analysis(config.analysis)
        backend = config.backend or cls.default_backend()
        if trace is None:
            trace = read_trace(config.trace)
        kwargs: Dict[str, Any] = dict(config.params)
        if backend == "auto":
            from repro.tune import make_policy

            kwargs["policy"] = make_policy(config.policy,
                                           state_path=config.policy_state)
        raw = cls(backend, **kwargs).run(trace)
        return AnalyzeResult(raw=raw, max_findings=config.max_findings)

    def compare(self, config: CompareConfig,
                trace: Optional[Trace] = None) -> CompareResult:
        """Run one analysis on every applicable backend."""
        from repro.trace import read_trace

        name = self.registry.resolve_analysis(config.analysis)
        cls = self.registry.analyses()[name]
        if trace is None:
            trace = read_trace(config.trace)
        applicable = list(cls.applicable_backends())
        if config.backends is None:
            selected = applicable
        else:
            # A compare covers exactly one analysis, so a requested backend
            # it cannot serve is a caller mistake, not (as in a sweep over
            # many analyses) an expected per-analysis narrowing: reject it
            # rather than silently compare a subset.
            rejected = sorted(set(config.backends) - set(applicable))
            if rejected:
                raise ReproError(
                    f"backends not applicable to {name}: {rejected} "
                    f"(applicable: {', '.join(applicable)})")
            selected = [backend for backend in applicable
                        if backend in config.backends]
        if not selected:
            raise ReproError(f"no backends selected for {name} "
                             f"(applicable: {', '.join(applicable)})")
        runs = [cls(backend, **dict(config.params)).run(trace)
                for backend in selected]
        return CompareResult(analysis=name, trace_name=trace.name, runs=runs)

    def sweep(self, config: SweepConfig) -> SweepRunResult:
        """Plan and execute a sweep of a registered suite or a corpus."""
        from repro.core import BACKENDS
        from repro.runner.executor import run_suite

        if config.baseline is not None and config.baseline not in BACKENDS:
            known = ", ".join(sorted(BACKENDS))
            raise ReproError(f"unknown baseline backend {config.baseline!r}; "
                             f"known: {known}")
        warnings: List[str] = list(config.validation_warnings())
        suite_name = config.suite
        if config.corpus is not None:
            from repro.gen.corpus import register_corpus_suite

            suite_name = register_corpus_suite(config.corpus).name
        result = run_suite(
            suite_name,
            workers=config.jobs,
            analyses=config.analyses,
            backends=config.backends,
            timeout_seconds=config.timeout,
            repeats=config.repeat,
            seed=config.seed,
            policy=config.policy,
            policy_state_path=config.policy_state,
            oracle=config.oracle,
        )
        if config.baseline is not None and config.format != "csv" \
                and not any(record.backend == config.baseline
                            for record in result.ok_records()):
            warnings.append(f"baseline backend {config.baseline!r} ran no "
                            f"job in this sweep; no speedups computed")
        return SweepRunResult(warnings=tuple(warnings), sweep=result,
                              baseline=config.baseline)

    def watch(self, config: WatchConfig,
              on_finding: Optional[Callable[[Any], None]] = None,
              on_notice: Optional[NoticeHook] = None) -> WatchResult:
        """Stream a source through analyses, resuming from a checkpoint
        when one exists.

        ``on_finding`` receives each
        :class:`~repro.stream.engine.StreamFinding` as it is discovered;
        ``on_notice`` receives progress/diagnostic lines (see
        :data:`NoticeHook`).  Warnings are also collected on the result.

        With extra ``sources`` the watch becomes a multi-tenant run (one
        tenant per source) through the serving code path -- in-process,
        no worker fan-out -- and returns a
        :class:`~repro.api.results.ServeResult` whose ``on_finding`` items
        are :class:`~repro.serve.supervisor.TenantFinding` (same fields
        plus ``tenant``).
        """
        if config.sources:
            return self.serve(
                ServeConfig(
                    analyses=config.analyses,
                    sources=(config.source,) + config.sources,
                    workers=0,
                    backend=config.backend,
                    window=config.window,
                    flush_every=config.flush_every,
                    checkpoint_every=config.checkpoint_every,
                    policy=config.policy,
                    policy_state=config.policy_state,
                ),
                on_finding=on_finding, on_notice=on_notice)
        from repro.stream import (
            GeneratorSource,
            StreamEngine,
            open_source,
            parse_window,
            restore_engine,
        )

        warnings: List[str] = []

        def notice(kind: str, message: str) -> None:
            if kind == "warning":
                warnings.append(message)
            if on_notice is not None:
                on_notice(kind, message)

        source = open_source(config.source, follow=config.follow,
                             idle_timeout=config.idle_timeout)
        resuming = config.checkpoint is not None \
            and os.path.exists(config.checkpoint)

        if config.analyses:
            analyses = [self.registry.resolve_analysis(item)
                        for item in config.analyses]
        elif resuming:
            analyses = []  # the checkpoint records them
        elif isinstance(source, GeneratorSource):
            analyses = [self.registry.resolve_analysis(item) for item
                        in self.registry.generator(source.kind).analyses]
        else:
            raise ReproError(
                "file sources need analyses (e.g. "
                "race_prediction,deadlock -- WatchConfig analyses=... / "
                "the CLI --analyses flag; see Session.capabilities() or "
                "'repro sweep --list-analyses')")
        if not analyses and not resuming:
            raise ReproError("no analyses selected")

        policy = None
        if config.backend == "auto" or config.policy is not None \
                or config.policy_state is not None:
            from repro.tune import make_policy

            policy = make_policy(config.policy,
                                 state_path=config.policy_state)

        skip = 0
        resumed_from = None
        if resuming:
            engine = restore_engine(config.checkpoint, on_finding=on_finding,
                                    policy=policy)
            skip = engine.cursor
            resumed_from = config.checkpoint
            # The checkpoint's configuration wins on resume; say so whenever
            # an option passed this time disagrees with it.
            if analyses and sorted(engine.analyses) != sorted(analyses):
                notice("warning",
                       f"resuming checkpoint with analyses "
                       f"{engine.analyses} (requested {analyses})")
            if config.window is not None and \
                    parse_window(config.window).spec() != engine.window.spec():
                notice("warning",
                       f"resuming checkpoint with window "
                       f"{engine.window.spec()!r} (requested "
                       f"{config.window!r}); the window is fixed at "
                       f"checkpoint creation")
            if config.flush_every is not None and config.flush_every != \
                    getattr(engine.window, "flush_every", None):
                notice("warning",
                       f"resuming checkpoint with flush_every "
                       f"{getattr(engine.window, 'flush_every', None)} "
                       f"(requested {config.flush_every}); flush_every "
                       f"is fixed at checkpoint creation")
            if config.backend is not None \
                    and config.backend != engine.backend_option:
                notice("warning",
                       f"resuming checkpoint with backend "
                       f"{engine.backend_option or 'per-analysis default'} "
                       f"(requested {config.backend}); the backend is fixed "
                       f"at checkpoint creation")
            notice("info", f"resumed from {config.checkpoint} at event {skip}")
        else:
            engine = StreamEngine(
                analyses,
                backend=config.backend,
                window=parse_window(config.window,
                                    flush_every=config.flush_every),
                name=source.name,
                on_finding=on_finding,
                policy=policy,
            )
        for item in engine.warnings:
            notice("warning", str(item))

        result = engine.run(source, skip=skip, max_events=config.max_events,
                            checkpoint_path=config.checkpoint,
                            checkpoint_every=config.checkpoint_every)

        for name, backend_name in sorted(result.backends_selected.items()):
            notice("info", f"{name}: auto selected backend {backend_name}")
        for name, message in sorted(result.errors.items()):
            notice("warning", f"{name}: last flush failed: {message}")
        return WatchResult(warnings=tuple(warnings), stream=result,
                           backbone=engine.order is not None,
                           cursor=engine.cursor, checkpoint=config.checkpoint,
                           resumed_from=resumed_from, resume_cursor=skip)

    def serve(self, config: ServeConfig,
              on_finding: Optional[Callable[[Any], None]] = None,
              on_notice: Optional[NoticeHook] = None) -> ServeResult:
        """Run the multi-tenant sharded streaming service once.

        Replay mode (``config.sources``) runs the sources to completion
        and returns; socket mode (``config.host``/``port``) serves the
        ingest line protocol until interrupted (or ``config.stop_after``
        seconds).  ``on_finding`` receives each merged-feed
        :class:`~repro.serve.supervisor.TenantFinding` as it arrives;
        ``on_notice`` receives progress/diagnostic lines (see
        :data:`NoticeHook`).  Warnings are also collected on the result.
        """
        from repro.serve.service import run_serve

        warnings: List[str] = []

        def notice(kind: str, message: str) -> None:
            if kind == "warning":
                warnings.append(message)
            if on_notice is not None:
                on_notice(kind, message)

        def started(service: Any) -> None:
            if config.pid_file and hasattr(service, "worker_pids"):
                with open(config.pid_file, "w", encoding="utf-8") as stream:
                    for pid in service.worker_pids:
                        stream.write(f"{pid}\n")

        analyses = [self.registry.resolve_analysis(item)
                    for item in config.analyses]
        outcome = run_serve(
            analyses,
            sources=config.sources,
            host=config.host,
            port=config.port,
            workers=config.workers,
            backend=config.backend,
            window=config.window,
            flush_every=config.flush_every,
            checkpoint_dir=config.checkpoint_dir,
            checkpoint_every=config.checkpoint_every,
            policy=config.policy,
            policy_state=config.policy_state,
            queue_size=config.queue_size,
            quota_events=config.quota_events,
            drain_timeout=config.drain_timeout,
            crash_worker=config.crash_worker,
            stop_after_seconds=config.stop_after,
            on_finding=on_finding,
            on_notice=notice,
            on_started=started,
        )
        return ServeResult(warnings=tuple(warnings), outcome=outcome)

    def gen_corpus(self, config: GenConfig) -> CorpusResult:
        """Build a trace corpus plus manifest (and register its suite)."""
        from repro.gen.corpus import build_corpus

        manifest = build_corpus(config.out, config.to_corpus_config(),
                                register=config.register)
        return CorpusResult(manifest=manifest, out=config.out)

    def convert(self, config: ConvertConfig) -> ConvertResult:
        """Translate one trace between the STD text and ``.stc`` binary
        formats (both directions; ``.gz`` transparent on both sides)."""
        from repro.trace import (
            dump_trace,
            read_trace,
            trace_format,
            write_trace_stc,
        )
        from repro.trace.io import path_format

        source_format = trace_format(config.source)
        trace = read_trace(config.source)
        out_format = config.to or path_format(config.out)
        if out_format == "stc":
            write_trace_stc(trace, config.out)
        else:
            dump_trace(trace, config.out)
        return ConvertResult(source=config.source, out=config.out,
                             source_format=source_format,
                             out_format=out_format,
                             trace_name=trace.name,
                             event_count=len(trace),
                             thread_count=trace.num_threads)

    def fuzz(self, config: FuzzConfig,
             on_case: Optional[Callable[[Any], None]] = None) -> FuzzResult:
        """Run the differential fuzzer (``on_case`` is the per-case
        progress hook)."""
        from repro.gen.fuzz import run_fuzz

        report = run_fuzz(
            seeds=config.seeds,
            quick=config.quick,
            kinds=config.kinds,
            backends=config.backends,
            stream=config.stream,
            base_seed=config.seed,
            out_dir=config.out,
            minimize=config.minimize,
            max_checks=config.max_checks,
            on_case=on_case,
        )
        return FuzzResult(report=report, out=config.out,
                          minimized=config.minimize)

    def bench(self, config: BenchConfig) -> BenchResult:
        """Run the perf harness: time the suite, write the report document,
        compare against the committed baseline."""
        from repro.bench import perf

        repeats = (config.repeats if config.repeats is not None
                   else perf.DEFAULT_REPEATS)
        threshold = (config.threshold if config.threshold is not None
                     else perf.DEFAULT_THRESHOLD)

        if config.update_baseline:
            baseline_path = config.baseline or perf.BASELINE_FILENAME
            document = perf.build_baseline(repeats=repeats)
            perf.write_document(document, baseline_path)
            full = document["modes"]["full"]
            return BenchResult(
                document=document,
                report=perf.format_report(full),
                out_path=baseline_path,
                notes=(f"wrote baseline ({len(full['results'])} cases, "
                       f"quick+full) to {baseline_path}",))

        # Validate an explicitly requested baseline up front -- the suite
        # takes a while and a typo'd path should not cost a full run.
        if config.compare and config.baseline is not None \
                and not os.path.exists(config.baseline):
            raise ReproError(f"baseline file not found: {config.baseline}")

        document = perf.run_perf(quick=config.quick, repeats=repeats)
        notes: List[str] = []
        rendered = None
        out_path = None
        if config.out == "-":
            rendered = json.dumps(document, indent=2, sort_keys=True)
        else:
            out_path = config.out or perf.default_output_path()
            perf.write_document(document, out_path)
            notes.append(f"wrote {len(document['results'])} cases "
                         f"to {out_path}")

        regressions = ()
        if config.compare:
            baseline_path = config.baseline or perf.BASELINE_FILENAME
            if not os.path.exists(baseline_path):
                notes.append(f"no {perf.BASELINE_FILENAME} found; "
                             f"regression check skipped (create one with "
                             f"'repro bench perf --update-baseline')")
            else:
                entries = perf.compare_documents(
                    document, perf.read_document(baseline_path),
                    threshold=threshold)
                if not entries:
                    notes.append(f"no regressions vs {baseline_path} "
                                 f"(threshold {threshold:.2f}x)")
                else:
                    regressions = tuple((entry, perf.is_regression([entry]))
                                        for entry in entries)
        return BenchResult(document=document, report=perf.format_report(document),
                           out_path=out_path, rendered_document=rendered,
                           notes=tuple(notes), regressions=regressions)

    def stats(self, config: StatsConfig) -> StatsResult:
        """Load a recorded metrics file and select one snapshot (the
        result renders it as table / JSON / Prometheus text)."""
        from repro.obs.sinks import read_snapshots

        snapshots = read_snapshots(config.source)
        try:
            snapshot = snapshots[config.index]
        except IndexError:
            raise ReproError(
                f"{config.source}: snapshot index {config.index} out of "
                f"range ({len(snapshots)} snapshots)") from None
        return StatsResult(source=config.source, snapshot=snapshot,
                           snapshot_count=len(snapshots),
                           index=config.index)

    def timeline(self, config: TimelineConfig) -> TimelineResult:
        """Render one recorded snapshot as a Chrome trace-event timeline.

        Loads ``config.source`` exactly like :meth:`stats`, renders the
        selected snapshot deterministically
        (:func:`repro.obs.export.render_chrome_json`), and writes the file
        when ``config.out`` is a path -- producing byte-for-byte the same
        output a ``--timeline`` flag would have written live for the same
        snapshot.
        """
        from repro.obs.export import render_chrome_json
        from repro.obs.sinks import read_snapshots

        snapshots = read_snapshots(config.source)
        try:
            snapshot = snapshots[config.index]
        except IndexError:
            raise ReproError(
                f"{config.source}: snapshot index {config.index} out of "
                f"range ({len(snapshots)} snapshots)") from None
        rendered = render_chrome_json(snapshot)
        out_path = None
        if config.out != "-":
            out_path = config.out
            with open(out_path, "w", encoding="utf-8") as stream:
                stream.write(rendered + "\n")
        return TimelineResult(source=config.source, snapshot=snapshot,
                              snapshot_count=len(snapshots),
                              index=config.index, rendered=rendered,
                              out_path=out_path)

    def report(self, config: ReportConfig) -> ReportResult:
        """Generate a longitudinal report (``trend``: every
        ``BENCH_*.json`` in ``config.dir`` rendered into ``config.out``)."""
        from repro.obs.trend import write_trend

        document, markdown_path, json_path = write_trend(
            config.dir, config.out, basename=config.basename)
        return ReportResult(mode=config.mode, document=document,
                            markdown_path=markdown_path,
                            json_path=json_path)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def capabilities(self) -> Dict[str, Any]:
        """Everything external tooling needs to drive this install, as one
        JSON-able document: version, analyses (with backend sets and the
        workload kinds feeding them), backends (with family membership),
        workload kinds, sweep suites, output formats, the telemetry
        surface (metric catalogue and sink kinds), and the stable exit
        codes of :mod:`repro.errors`."""
        from repro.obs import METRIC_CATALOG, SINK_KINDS
        from repro.core.factory import (
            AUTO_BACKEND,
            FLAT_BACKENDS,
            dynamic_backends,
            incremental_backends,
        )
        from repro.serve.routing import DEFAULT_VNODES, TENANT_PATTERN
        from repro.serve.supervisor import RESPAWN_LIMIT
        from repro.tune import (
            DEFAULT_POLICY,
            FEATURE_NAMES,
            POLICY_NAMES,
            STATE_VERSION,
        )

        generators = self.registry.generators()
        fed_by: Dict[str, List[str]] = {}
        for kind, entry in generators.items():
            for analysis_name in entry.analyses:
                fed_by.setdefault(analysis_name, []).append(kind)
        incremental = set(incremental_backends())
        dynamic = set(dynamic_backends())
        return {
            "version": __version__,
            "analyses": {
                name: {
                    "default_backend": cls.default_backend(),
                    "backends": list(cls.applicable_backends())
                    + [AUTO_BACKEND],
                    "streaming_native": bool(cls.streaming_native),
                    "requires_deletion": bool(cls.requires_deletion),
                    "fed_by": sorted(fed_by.get(name, ())),
                }
                for name, cls in sorted(self.registry.analyses().items())
            },
            "backends": {
                name: {
                    "class": cls.__name__,
                    "supports_deletion": bool(cls.supports_deletion),
                    "incremental": name in incremental,
                    "dynamic": name in dynamic,
                    "flat": name in FLAT_BACKENDS,
                }
                for name, cls in sorted(self.registry.backends().items())
            },
            "kinds": {
                kind: {
                    "source": entry.source,
                    "size_parameter": entry.size_parameter,
                    "analyses": list(entry.analyses),
                    "description": entry.description,
                }
                for kind, entry in sorted(generators.items())
            },
            "suites": {
                name: {
                    "specs": len(suite.specs),
                    "description": suite.description,
                }
                for name, suite in sorted(self.registry.suites().items())
            },
            "formats": {
                "trace": ["std", "std.gz", "stc", "stc.gz"],
                "analyze": list(RESULT_FORMATS),
                "compare": list(RESULT_FORMATS),
                "sweep": list(SweepConfig.FORMATS),
                "watch": list(WATCH_FORMATS),
                "serve": list(WATCH_FORMATS),
                "gen": list(RESULT_FORMATS),
                "convert": list(RESULT_FORMATS),
                "fuzz": list(RESULT_FORMATS),
                "stats": list(StatsConfig.FORMATS),
                "timeline": ["chrome"],
            },
            "tuning": {
                "auto_backend": AUTO_BACKEND,
                "policies": list(POLICY_NAMES),
                "default_policy": DEFAULT_POLICY,
                "features": list(FEATURE_NAMES),
                "state_version": STATE_VERSION,
            },
            "serving": {
                "protocol": {
                    "event": "<tenant>|<std-event-line>",
                    "end": "#end|<tenant>",
                    "bye": "#bye",
                    "error": "#error|<tenant>|<message>",
                },
                "tenant_pattern": TENANT_PATTERN.pattern,
                "routing": {
                    "ring": "consistent-hash (sha1)",
                    "vnodes": DEFAULT_VNODES,
                },
                "modes": ["replay", "socket"],
                "recovery": "checkpoint restore + journal replay",
                "respawn_limit": RESPAWN_LIMIT,
            },
            "observability": {
                "metrics": {name: dict(info)
                            for name, info in sorted(METRIC_CATALOG.items())},
                "sinks": list(SINK_KINDS),
                "span_log_limit": obs_metrics.MAX_RECORDED_SPANS,
                "snapshot_version": obs_metrics.SNAPSHOT_VERSION,
            },
            "exit_codes": {
                "ok": EXIT_OK,
                "failure": EXIT_FAILURE,
                "error": EXIT_ERROR,
                "interrupt": EXIT_INTERRUPT,
            },
        }
