"""Array-backed Sparse Segment Tree (the flat SST kernel).

Same algorithm as :class:`repro.core.sparse_segment_tree.SparseSegmentTree`
(minima indexing, sparse representation, block nodes -- Section 3.2 of the
paper), but the tree is stored as a structure of arrays: node ``n`` is the
``n``-th entry of six parallel int lists (``start``, ``end``, ``pos``,
``min``, ``left``, ``right``) plus a ``block`` list holding either ``None``
(regular node) or the block dictionary.  ``-1`` encodes a missing child,
and removed nodes are pushed on a free list and recycled, so the structure
stops allocating once it reaches its working-set size.

Two further differences against the object implementation, both invisible
through the public :class:`~repro.core.suffix_minima.SuffixMinima` API:

* Empty entries are the integer sentinel :data:`INT_INF` internally, so
  every hot comparison is int-vs-int.  The public methods translate to the
  ``float('inf')`` convention of the interface at the boundary; the
  ``*_int`` variants skip that translation and are what the flat CSSTs call
  in their inner loops.
* All traversals are iterative (explicit stacks / parent tracking), so no
  Python frame is created per tree level.

Answers are identical to the object SST on every operation sequence; the
property tests in ``tests/core`` cross-check both against the naive oracle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.interface import INF
from repro.core.sparse_segment_tree import DEFAULT_BLOCK_SIZE, _next_power_of_two
from repro.core.suffix_minima import SuffixMinima, Value
from repro.errors import InvalidNodeError

#: Integer "empty entry" sentinel.  Strictly larger than any event index the
#: analyses can produce, and safely summable without overflow surprises.
INT_INF = 1 << 60

#: Missing child / missing node marker in the parallel arrays.
_NIL = -1


class FlatSparseSegmentTree(SuffixMinima):
    """Dynamic suffix minima over parallel int arrays (no node objects).

    Parameters mirror :class:`~repro.core.sparse_segment_tree.SparseSegmentTree`:

    capacity:
        Initial capacity hint (rounded up to a power of two; grows
        automatically).
    block_size:
        Threshold ``b`` below which subtrees are flattened to block
        dictionaries (``0`` disables block nodes).
    minima_indexing:
        Ablation switch for the suffix-query early exit (answers are
        unaffected).
    """

    __slots__ = (
        "_capacity", "_block_size", "_minima_indexing", "_root", "_density",
        "_start", "_end", "_pos", "_min", "_left", "_right", "_block",
        "_free",
    )

    def __init__(self, capacity: int = 1, block_size: int = DEFAULT_BLOCK_SIZE,
                 minima_indexing: bool = True) -> None:
        if capacity < 1:
            raise InvalidNodeError(f"capacity must be >= 1, got {capacity}")
        if block_size < 0:
            raise InvalidNodeError(f"block_size must be >= 0, got {block_size}")
        self._capacity = _next_power_of_two(capacity)
        self._block_size = int(block_size)
        self._minima_indexing = bool(minima_indexing)
        self._root = _NIL
        self._density = 0
        # Parallel node arrays; slot n is one tree node.
        self._start: List[int] = []
        self._end: List[int] = []
        self._pos: List[int] = []
        self._min: List[int] = []
        self._left: List[int] = []
        self._right: List[int] = []
        self._block: List[Optional[Dict[int, int]]] = []
        self._free: List[int] = []

    # ------------------------------------------------------------------ #
    # SuffixMinima interface (float-INF convention at the boundary)
    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def density(self) -> int:
        return self._density

    @property
    def block_size(self) -> int:
        """The block-size threshold ``b`` used by this tree."""
        return self._block_size

    def update(self, index: int, value: Value) -> None:
        self._check_index(index)
        self.update_int(index, INT_INF if value == INF else int(value))

    def get(self, index: int) -> Value:
        self._check_index(index)
        value = self.get_int(index)
        return INF if value >= INT_INF else value

    def suffix_min(self, index: int) -> Value:
        self._check_index(index)
        value = self.suffix_min_int(index)
        return INF if value >= INT_INF else value

    def argleq(self, value: Value) -> Optional[int]:
        best = self.argleq_int(value)
        return best if best >= 0 else None

    def items(self) -> List[Tuple[int, int]]:
        return sorted(self._entries())

    # ------------------------------------------------------------------ #
    # Integer fast-path API (used by the flat CSST kernels)
    # ------------------------------------------------------------------ #
    def update_int(self, index: int, value: int) -> None:
        """Set ``A[index] = value`` (:data:`INT_INF` clears the entry)."""
        if index >= self._capacity:
            self._grow(index + 1)
        current = self.get_int(index)
        if current == value:
            return
        if current != INT_INF:
            self._remove_entry(index)
            self._density -= 1
        if value != INT_INF:
            self._insert(index, value)
            self._density += 1

    def get_int(self, index: int) -> int:
        """``A[index]`` with the :data:`INT_INF` empty convention."""
        if index >= self._capacity:
            return INT_INF
        pos_a = self._pos
        min_a = self._min
        block_a = self._block
        mid_base = self._start
        end_a = self._end
        left_a = self._left
        right_a = self._right
        node = self._root
        while node != _NIL:
            blk = block_a[node]
            if blk is not None:
                return blk.get(index, INT_INF)
            if pos_a[node] == index:
                return min_a[node]
            start = mid_base[node]
            mid = start + (end_a[node] - start) // 2
            node = left_a[node] if index <= mid else right_a[node]
        return INT_INF

    def suffix_min_int(self, index: int) -> int:
        """``min(A[index:])`` with the :data:`INT_INF` empty convention."""
        root = self._root
        if root == _NIL:
            return INT_INF
        end_a = self._end
        if index > end_a[root]:
            return INT_INF
        pos_a = self._pos
        min_a = self._min
        # Root fast path: most queries on minima-indexed trees resolve at
        # the root (its entry is the whole array's best); skip the stack
        # machinery for them.
        if self._minima_indexing and pos_a[root] >= index \
                and self._block[root] is None:
            return min_a[root]
        left_a = self._left
        right_a = self._right
        block_a = self._block
        minima_indexing = self._minima_indexing
        best = INT_INF
        stack = [root]
        pop = stack.pop
        push = stack.append
        while stack:
            node = pop()
            if index > end_a[node]:
                continue
            blk = block_a[node]
            if blk is not None:
                if pos_a[node] >= index:
                    candidate = min_a[node]
                else:
                    candidate = INT_INF
                    for pos, value in blk.items():
                        if pos >= index and value < candidate:
                            candidate = value
                if candidate < best:
                    best = candidate
                continue
            node_min = min_a[node]
            if minima_indexing:
                # The node's entry is the minimum of its whole subtree: a
                # subtree that cannot beat ``best`` is skipped, and an entry
                # already inside the suffix resolves immediately.
                if node_min >= best:
                    continue
                if pos_a[node] >= index:
                    best = node_min
                    continue
            elif pos_a[node] >= index and node_min < best:
                best = node_min
            child = left_a[node]
            if child != _NIL:
                push(child)
            child = right_a[node]
            if child != _NIL:
                push(child)
        return best

    def argleq_int(self, value) -> int:
        """Largest index with ``A[i] <= value`` (``-1`` when none)."""
        pos_a = self._pos
        min_a = self._min
        left_a = self._left
        right_a = self._right
        block_a = self._block
        node = self._root
        best = -1
        while node != _NIL:
            if min_a[node] > value:
                break
            blk = block_a[node]
            if blk is not None:
                for pos, entry in blk.items():
                    if entry <= value and pos > best:
                        best = pos
                break
            if pos_a[node] > best:
                best = pos_a[node]
            right = right_a[node]
            if right != _NIL and min_a[right] <= value:
                # Any qualifying index on the right beats every left index.
                node = right
            else:
                node = left_a[node]
        return best

    # ------------------------------------------------------------------ #
    # Structural introspection (Lemma 1 checks in tests)
    # ------------------------------------------------------------------ #
    @property
    def height(self) -> int:
        """Nodes on the longest root-to-leaf path (0 when empty)."""
        if self._root == _NIL:
            return 0
        left_a, right_a = self._left, self._right
        best = 0
        stack = [(self._root, 1)]
        while stack:
            node, depth = stack.pop()
            if depth > best:
                best = depth
            left = left_a[node]
            if left != _NIL:
                stack.append((left, depth + 1))
            right = right_a[node]
            if right != _NIL:
                stack.append((right, depth + 1))
        return best

    @property
    def node_count(self) -> int:
        """Live tree nodes (block nodes count as one)."""
        if self._root == _NIL:
            return 0
        left_a, right_a = self._left, self._right
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if left_a[node] != _NIL:
                stack.append(left_a[node])
            if right_a[node] != _NIL:
                stack.append(right_a[node])
        return count

    @property
    def allocated_slots(self) -> int:
        """Total node slots ever allocated (live plus free-listed)."""
        return len(self._start)

    # ------------------------------------------------------------------ #
    # Node allocation
    # ------------------------------------------------------------------ #
    def _alloc(self, start: int, end: int, pos: int, value: int) -> int:
        is_block = self._block_size > 0 and (end - start + 1) <= self._block_size
        free = self._free
        if free:
            node = free.pop()
            self._start[node] = start
            self._end[node] = end
            self._pos[node] = pos
            self._min[node] = value
            self._left[node] = _NIL
            self._right[node] = _NIL
            self._block[node] = {pos: value} if is_block else None
            return node
        node = len(self._start)
        self._start.append(start)
        self._end.append(end)
        self._pos.append(pos)
        self._min.append(value)
        self._left.append(_NIL)
        self._right.append(_NIL)
        self._block.append({pos: value} if is_block else None)
        return node

    # ------------------------------------------------------------------ #
    # Insertion (same push-down scheme as the object SST)
    # ------------------------------------------------------------------ #
    def _insert(self, pos: int, value: int) -> None:
        if self._root == _NIL:
            self._root = self._alloc(0, self._capacity - 1, pos, value)
            return
        start_a = self._start
        end_a = self._end
        pos_a = self._pos
        min_a = self._min
        left_a = self._left
        right_a = self._right
        block_a = self._block
        node = self._root
        while True:
            blk = block_a[node]
            if blk is not None:
                blk[pos] = value
                node_min = min_a[node]
                if value < node_min or (value == node_min and pos > pos_a[node]):
                    pos_a[node] = pos
                    min_a[node] = value
                return
            node_min = min_a[node]
            node_pos = pos_a[node]
            if value < node_min or (value == node_min and pos > node_pos):
                # Swap the incoming entry with the node's entry; the
                # displaced entry keeps descending.
                pos_a[node] = pos
                min_a[node] = value
                pos, value = node_pos, node_min
            start = start_a[node]
            mid = start + (end_a[node] - start) // 2
            if pos <= mid:
                child = left_a[node]
                if child == _NIL:
                    left_a[node] = self._alloc(start, mid, pos, value)
                    return
            else:
                child = right_a[node]
                if child == _NIL:
                    right_a[node] = self._alloc(mid + 1, end_a[node], pos, value)
                    return
            node = child

    # ------------------------------------------------------------------ #
    # Removal (iterative descent plus pull-up cascade)
    # ------------------------------------------------------------------ #
    def _remove_entry(self, pos: int) -> None:
        """Remove the entry at ``pos`` (the caller guarantees presence)."""
        start_a = self._start
        end_a = self._end
        pos_a = self._pos
        left_a = self._left
        right_a = self._right
        block_a = self._block
        node = self._root
        parent = _NIL
        from_left = False
        while True:
            blk = block_a[node]
            if blk is not None:
                blk.pop(pos, None)
                if not blk:
                    self._detach(parent, from_left, node)
                else:
                    self._refresh_block(node)
                return
            if pos_a[node] == pos:
                break
            start = start_a[node]
            mid = start + (end_a[node] - start) // 2
            parent = node
            from_left = pos <= mid
            node = left_a[node] if from_left else right_a[node]
        self._pull_up(node, parent, from_left)

    def _pull_up(self, node: int, parent: int, from_left: bool) -> None:
        """Refill ``node`` with the best entry of its children, cascading."""
        pos_a = self._pos
        min_a = self._min
        left_a = self._left
        right_a = self._right
        block_a = self._block
        while True:
            left = left_a[node]
            right = right_a[node]
            best = left
            best_is_left = True
            if right != _NIL and (
                best == _NIL
                or min_a[right] < min_a[best]
                or (min_a[right] == min_a[best] and pos_a[right] > pos_a[best])
            ):
                best = right
                best_is_left = False
            if best == _NIL:
                self._detach(parent, from_left, node)
                return
            best_pos = pos_a[best]
            pos_a[node] = best_pos
            min_a[node] = min_a[best]
            blk = block_a[best]
            if blk is not None:
                del blk[best_pos]
                if not blk:
                    self._detach(node, best_is_left, best)
                else:
                    self._refresh_block(best)
                return
            parent = node
            from_left = best_is_left
            node = best

    def _detach(self, parent: int, from_left: bool, node: int) -> None:
        if parent == _NIL:
            self._root = _NIL
        elif from_left:
            self._left[parent] = _NIL
        else:
            self._right[parent] = _NIL
        self._block[node] = None  # release the dict before recycling
        self._free.append(node)

    def _refresh_block(self, node: int) -> None:
        """Recompute the mirrored ``(pos, min)`` of a block node."""
        best_pos = -1
        best_value = INT_INF
        for pos, value in self._block[node].items():
            if value < best_value or (value == best_value and pos > best_pos):
                best_pos, best_value = pos, value
        self._pos[node] = best_pos
        self._min[node] = best_value

    # ------------------------------------------------------------------ #
    # Growth
    # ------------------------------------------------------------------ #
    def _grow(self, minimum_capacity: int) -> None:
        new_capacity = self._capacity
        while new_capacity < minimum_capacity:
            new_capacity *= 2
        entries = self._entries()
        self._capacity = new_capacity
        self._root = _NIL
        self._density = 0
        del self._start[:]
        del self._end[:]
        del self._pos[:]
        del self._min[:]
        del self._left[:]
        del self._right[:]
        del self._block[:]
        del self._free[:]
        for pos, value in entries:
            self._insert(pos, value)
            self._density += 1

    # ------------------------------------------------------------------ #
    # Traversal helpers
    # ------------------------------------------------------------------ #
    def _entries(self) -> List[Tuple[int, int]]:
        if self._root == _NIL:
            return []
        left_a, right_a, block_a = self._left, self._right, self._block
        out: List[Tuple[int, int]] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            blk = block_a[node]
            if blk is not None:
                out.extend(blk.items())
                continue
            out.append((self._pos[node], self._min[node]))
            if left_a[node] != _NIL:
                stack.append(left_a[node])
            if right_a[node] != _NIL:
                stack.append(right_a[node])
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlatSparseSegmentTree(capacity={self._capacity}, "
            f"density={self._density}, slots={len(self._start)})"
        )
