"""Flat (structure-of-arrays) fast-path kernels for the core structures.

The object-based implementations in :mod:`repro.core` pay Python object tax
on every hot operation: the sparse segment tree walks linked ``_Node``
objects, the fully dynamic CSST allocates a dict per closure, and the vector
clock keeps one list per event.  The ``repro.core.flat`` package provides
drop-in replacements that store the same state in dense, index-addressed
parallel arrays:

* :class:`~repro.core.flat.sst.FlatSparseSegmentTree` -- the SST of
  Section 3.2 with every node field (range, minima entry, children) held in
  a parallel int list; traversal is iterative and node slots are recycled
  through a free list, so updates allocate nothing on the steady state.
* :class:`~repro.core.flat.csst.FlatCSST` /
  :class:`~repro.core.flat.csst.FlatIncrementalCSST` -- Algorithms 2 and 3
  over a flat ``k * k`` array-of-arrays matrix, with list-based closure
  buffers, integer infinities, and an early-exit reachability fast path.
* :class:`~repro.core.flat.vc.FlatVectorClockOrder` -- vector clocks packed
  into one flat int list per chain (event ``j`` occupies the slice
  ``[j*k, (j+1)*k)``), removing the per-event list allocation.

All three register in :mod:`repro.core.factory` (``csst-flat``,
``incremental-csst-flat``, ``vc-flat``) behind the existing
:class:`~repro.core.interface.PartialOrder` interface and must answer
identically to their object-based counterparts on every operation sequence
-- the parity suites in ``tests/core`` and ``tests/analyses`` pin that down.
"""

from repro.core.flat.csst import FlatCSST, FlatIncrementalCSST
from repro.core.flat.sst import INT_INF, FlatSparseSegmentTree
from repro.core.flat.vc import FlatVectorClockOrder

__all__ = [
    "FlatCSST",
    "FlatIncrementalCSST",
    "FlatSparseSegmentTree",
    "FlatVectorClockOrder",
    "INT_INF",
]
