"""Flat CSST kernels: Algorithms 2 and 3 over array-backed state.

Both classes mirror their object-based counterparts
(:class:`repro.core.csst.CSST` and
:class:`repro.core.incremental_csst.IncrementalCSST`) operation for
operation, with three mechanical differences:

* The ``k x k`` matrix of suffix-minima arrays is one flat Python list
  indexed ``t1 * k + t2`` (``None`` until a pair is first written) holding
  :class:`~repro.core.flat.sst.FlatSparseSegmentTree` instances, and the
  kernels call their integer fast-path methods (``suffix_min_int`` /
  ``argleq_int`` / ``update_int``) directly -- no dict lookups, no
  float-infinity boxing, no delegation layers.
* Closure computations (the Bellman-Ford sweep of Algorithm 2) use plain
  lists sized ``k`` instead of per-query dicts, and ``reachable`` exits the
  sweep the moment the target chain's bound drops below the queried index
  (closure values only ever decrease, so the early answer is final).
* The incremental variant overrides the batch ``query_many`` API with a
  loop that binds the matrix locals once per call; the other batch APIs
  inherit the base-class defaults (their per-call cost is dwarfed by the
  closure/insert work anyway).

Answers are identical to the object implementations on every operation
sequence; the cross-validation suites in ``tests/core`` pin this against
the :class:`~repro.core.graph_po.GraphOrder` reference.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.flat.sst import INT_INF, FlatSparseSegmentTree
from repro.core.heap import DeletableMinHeap
from repro.core.interface import INF, Node, PartialOrder
from repro.core.sparse_segment_tree import DEFAULT_BLOCK_SIZE
from repro.errors import InvalidEdgeError


class _FlatChainOrder(PartialOrder):
    """Shared flat-matrix bookkeeping for both CSST variants."""

    def __init__(self, num_chains: int, capacity_hint: int = 1024, *,
                 block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        super().__init__(num_chains, capacity_hint)
        self._block_size = int(block_size)
        self._arrays: List[Optional[FlatSparseSegmentTree]] = (
            [None] * (num_chains * num_chains))

    def _array(self, source_chain: int, target_chain: int) -> FlatSparseSegmentTree:
        """The array of orderings ``source_chain -> target_chain`` (created
        on first write, like the object backends' lazy matrix)."""
        slot = source_chain * self._num_chains + target_chain
        array = self._arrays[slot]
        if array is None:
            array = FlatSparseSegmentTree(self._capacity_hint,
                                          block_size=self._block_size)
            self._arrays[slot] = array
        return array

    # Introspection mirroring ChainMatrixOrder (benchmarks read these).
    @property
    def max_array_density(self) -> int:
        """Largest density among the suffix-minima arrays."""
        return max((a.density for a in self._arrays if a is not None),
                   default=0)

    @property
    def total_entries(self) -> int:
        """Total non-empty entries across every array."""
        return sum(a.density for a in self._arrays if a is not None)


class FlatIncrementalCSST(_FlatChainOrder):
    """Insert-only CSST (Algorithm 3) over the flat matrix.

    Reachability is a single integer suffix-minima probe; insertion closes
    the order transitively across all chain pairs with the arrays addressed
    directly instead of through query helpers.
    """

    supports_deletion = False

    def __init__(self, num_chains: int, capacity_hint: int = 1024, *,
                 block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        super().__init__(num_chains, capacity_hint, block_size=block_size)
        self._edge_count = 0

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def reachable(self, source: Node, target: Node) -> bool:
        t1, j1 = source
        t2, j2 = target
        num_chains = self._num_chains
        if not (0 <= t1 < num_chains and 0 <= t2 < num_chains
                and j1 >= 0 and j2 >= 0):
            self._check_node(source)
            self._check_node(target)
        if t1 == t2:
            return j1 <= j2
        array = self._arrays[t1 * num_chains + t2]
        return array is not None and array.suffix_min_int(j1) <= j2

    def successor(self, node: Node, chain: int) -> Optional[int]:
        self._check_node(node)
        t1, j1 = node
        if chain == t1:
            return j1
        if not 0 <= chain < self._num_chains:
            return None
        array = self._arrays[t1 * self._num_chains + chain]
        if array is None:
            return None
        result = array.suffix_min_int(j1)
        return None if result >= INT_INF else result

    def predecessor(self, node: Node, chain: int) -> Optional[int]:
        self._check_node(node)
        t1, j1 = node
        if chain == t1:
            return j1
        if not 0 <= chain < self._num_chains:
            return None
        array = self._arrays[chain * self._num_chains + t1]
        if array is None:
            return None
        result = array.argleq_int(j1)
        return None if result < 0 else result

    def query_many(self, pairs: Iterable[Tuple[Node, Node]]) -> List[bool]:
        num_chains = self._num_chains
        arrays = self._arrays
        answers: List[bool] = []
        append = answers.append
        for (t1, j1), (t2, j2) in pairs:
            if not (0 <= t1 < num_chains and 0 <= t2 < num_chains
                    and j1 >= 0 and j2 >= 0):
                self._check_node((t1, j1))
                self._check_node((t2, j2))
            if t1 == t2:
                append(j1 <= j2)
            else:
                array = arrays[t1 * num_chains + t2]
                append(array is not None and array.suffix_min_int(j1) <= j2)
        return answers

    # ------------------------------------------------------------------ #
    # Updates (Algorithm 3, arrays addressed directly)
    # ------------------------------------------------------------------ #
    def insert_edge(self, source: Node, target: Node) -> None:
        self._check_edge(source, target)
        (t1, j1), (t2, j2) = source, target
        self._edge_count += 1
        num_chains = self._num_chains
        arrays = self._arrays
        for source_chain in range(num_chains):
            if source_chain == t1:
                source_index = j1
            else:
                array = arrays[source_chain * num_chains + t1]
                source_index = array.argleq_int(j1) if array is not None else -1
                if source_index < 0:
                    continue
            row = source_chain * num_chains
            for target_chain in range(num_chains):
                if target_chain == source_chain:
                    continue
                if target_chain == t2:
                    target_index = j2
                else:
                    array = arrays[t2 * num_chains + target_chain]
                    target_index = (array.suffix_min_int(j2)
                                    if array is not None else INT_INF)
                    if target_index >= INT_INF:
                        continue
                current_array = arrays[row + target_chain]
                if current_array is None:
                    self._array(source_chain, target_chain).update_int(
                        source_index, target_index)
                elif current_array.suffix_min_int(source_index) > target_index:
                    current_array.update_int(source_index, target_index)

    @property
    def edge_count(self) -> int:
        """Number of ``insert_edge`` calls performed so far."""
        return self._edge_count


class FlatCSST(_FlatChainOrder):
    """Fully dynamic CSST (Algorithm 2) over the flat matrix.

    Direct edges per source node live in the same lazily deletable min-heaps
    the object CSST uses; closure sweeps run over list buffers with an
    early-exit reachability fast path.
    """

    supports_deletion = True

    def __init__(self, num_chains: int, capacity_hint: int = 1024, *,
                 block_size: int = DEFAULT_BLOCK_SIZE) -> None:
        super().__init__(num_chains, capacity_hint, block_size=block_size)
        # slot (t1 * k + t2) -> {j1: multiset of j2 targets}
        self._heaps: List[Optional[Dict[int, DeletableMinHeap]]] = (
            [None] * (num_chains * num_chains))

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def insert_edge(self, source: Node, target: Node) -> None:
        self._check_edge(source, target)
        (t1, j1), (t2, j2) = source, target
        slot = t1 * self._num_chains + t2
        per_pair = self._heaps[slot]
        if per_pair is None:
            per_pair = self._heaps[slot] = {}
        heap = per_pair.get(j1)
        if heap is None:
            heap = per_pair[j1] = DeletableMinHeap()
        if j2 < heap.min():
            self._array(t1, t2).update_int(j1, j2)
        heap.insert(j2)

    def delete_edge(self, source: Node, target: Node) -> None:
        self._check_edge(source, target)
        (t1, j1), (t2, j2) = source, target
        per_pair = self._heaps[t1 * self._num_chains + t2]
        heap = per_pair.get(j1) if per_pair else None
        if heap is None or j2 not in heap:
            raise InvalidEdgeError(f"edge {source} -> {target} is not present")
        if j2 == heap.min():
            heap.delete(j2)
            minimum = heap.min()
            self._array(t1, t2).update_int(
                j1, INT_INF if minimum == INF else minimum)
        else:
            heap.delete(j2)

    # ------------------------------------------------------------------ #
    # Queries (Algorithm 2 closures over list buffers)
    # ------------------------------------------------------------------ #
    def reachable(self, source: Node, target: Node) -> bool:
        t1, j1 = source
        t2, j2 = target
        num_chains = self._num_chains
        if not (0 <= t1 < num_chains and 0 <= t2 < num_chains
                and j1 >= 0 and j2 >= 0):
            self._check_node(source)
            self._check_node(target)
        if t1 == t2:
            return j1 <= j2
        arrays = self._arrays
        closure = [INT_INF] * num_chains
        row = t1 * num_chains
        seeded = False
        for chain in range(num_chains):
            if chain == t1:
                continue
            array = arrays[row + chain]
            if array is not None:
                value = array.suffix_min_int(j1)
                if value < INT_INF:
                    closure[chain] = value
                    seeded = True
        if closure[t2] <= j2:
            return True
        if not seeded:
            return False
        changed = True
        while changed:
            changed = False
            for via in range(num_chains):
                if via == t1:
                    continue
                bound = closure[via]
                if bound >= INT_INF:
                    continue
                via_row = via * num_chains
                for dest in range(num_chains):
                    if dest == via or dest == t1:
                        continue
                    array = arrays[via_row + dest]
                    if array is None:
                        continue
                    candidate = array.suffix_min_int(bound)
                    if candidate < closure[dest]:
                        # Closure values only decrease, so reaching the
                        # query bound is a final answer.
                        if dest == t2 and candidate <= j2:
                            return True
                        closure[dest] = candidate
                        changed = True
        return closure[t2] <= j2

    def successor(self, node: Node, chain: int) -> Optional[int]:
        self._check_node(node)
        t1, j1 = node
        if chain == t1:
            return j1
        if not 0 <= chain < self._num_chains:
            return None
        result = self._forward_closure(t1, j1)[chain]
        return None if result >= INT_INF else result

    def predecessor(self, node: Node, chain: int) -> Optional[int]:
        self._check_node(node)
        t1, j1 = node
        if chain == t1:
            return j1
        if not 0 <= chain < self._num_chains:
            return None
        result = self._backward_closure(t1, j1)[chain]
        return None if result < 0 else result

    # ------------------------------------------------------------------ #
    # Closure computations
    # ------------------------------------------------------------------ #
    def _forward_closure(self, t1: int, j1: int) -> List[int]:
        """Earliest reachable index per chain (``INT_INF`` = unreachable)."""
        num_chains = self._num_chains
        arrays = self._arrays
        closure = [INT_INF] * num_chains
        row = t1 * num_chains
        for chain in range(num_chains):
            if chain == t1:
                continue
            array = arrays[row + chain]
            if array is not None:
                closure[chain] = array.suffix_min_int(j1)
        changed = True
        while changed:
            changed = False
            for via in range(num_chains):
                if via == t1:
                    continue
                bound = closure[via]
                if bound >= INT_INF:
                    continue
                via_row = via * num_chains
                for dest in range(num_chains):
                    if dest == via or dest == t1:
                        continue
                    array = arrays[via_row + dest]
                    if array is None:
                        continue
                    candidate = array.suffix_min_int(bound)
                    if candidate < closure[dest]:
                        closure[dest] = candidate
                        changed = True
        return closure

    def _backward_closure(self, t1: int, j1: int) -> List[int]:
        """Latest index per chain that reaches ``(t1, j1)`` (``-1`` = none)."""
        num_chains = self._num_chains
        arrays = self._arrays
        closure = [-1] * num_chains
        for chain in range(num_chains):
            if chain == t1:
                continue
            array = arrays[chain * num_chains + t1]
            if array is not None:
                closure[chain] = array.argleq_int(j1)
        changed = True
        while changed:
            changed = False
            for via in range(num_chains):
                if via == t1:
                    continue
                bound = closure[via]
                if bound < 0:
                    continue
                for dest in range(num_chains):
                    if dest == via or dest == t1:
                        continue
                    array = arrays[dest * num_chains + via]
                    if array is None:
                        continue
                    candidate = array.argleq_int(bound)
                    if candidate > closure[dest]:
                        closure[dest] = candidate
                        changed = True
        return closure

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def edge_count(self) -> int:
        """Number of cross-chain edges currently stored."""
        return sum(
            len(heap)
            for per_pair in self._heaps if per_pair is not None
            for heap in per_pair.values()
        )
