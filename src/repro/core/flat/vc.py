"""Array-backed vector clocks (the ``vc-flat`` backend).

Same semantics as :class:`repro.core.vector_clock.VectorClockOrder` --
one clock per materialised event, early-stopping suffix propagation
(Section 5.1 of the paper) -- but the clocks of a chain are packed into a
single flat int list: event ``j``'s clock occupies the slice
``[j * k, (j + 1) * k)``.  Materialising an event is one ``list.extend`` of
the predecessor's slice instead of allocating a fresh list per event, and
joins walk the flat buffer with offset arithmetic.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.interface import Node, PartialOrder


class FlatVectorClockOrder(PartialOrder):
    """Partial order maintained with flat per-chain clock buffers."""

    supports_deletion = False

    def __init__(self, num_chains: int, capacity_hint: int = 1024) -> None:
        super().__init__(num_chains, capacity_hint)
        #: Flat clock buffer per chain; event j occupies [j*k, (j+1)*k).
        self._clocks: List[List[int]] = [[] for _ in range(num_chains)]
        self._lengths: List[int] = [0] * num_chains
        # Cross-chain adjacency, needed to propagate joins transitively.
        self._out_edges: Dict[Node, List[Node]] = {}
        self._edge_count = 0

    # ------------------------------------------------------------------ #
    # Clock materialisation and access
    # ------------------------------------------------------------------ #
    def _ensure(self, chain: int, index: int) -> None:
        """Materialise clocks for ``chain`` up to ``index`` inclusive."""
        length = self._lengths[chain]
        if length > index:
            return
        num_chains = self._num_chains
        clocks = self._clocks[chain]
        extend = clocks.extend
        while length <= index:
            if length == 0:
                extend([-1] * num_chains)
            else:
                offset = (length - 1) * num_chains
                extend(clocks[offset:offset + num_chains])
            clocks[length * num_chains + chain] = length
            length += 1
        self._lengths[chain] = length

    def clock_of(self, node: Node) -> List[int]:
        """Return a copy of the vector clock of ``node``."""
        self._check_node(node)
        chain, index = node
        self._ensure(chain, index)
        offset = index * self._num_chains
        return self._clocks[chain][offset:offset + self._num_chains]

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def insert_edge(self, source: Node, target: Node) -> None:
        self._check_edge(source, target)
        (t1, j1), (t2, j2) = source, target
        self._ensure(t1, j1)
        self._ensure(t2, j2)
        self._out_edges.setdefault(source, []).append(target)
        self._edge_count += 1
        num_chains = self._num_chains
        offset = j1 * num_chains
        if self._join(t2, j2, self._clocks[t1][offset:offset + num_chains]):
            self._propagate(t2, j2)

    def _join(self, chain: int, index: int, incoming: List[int]) -> bool:
        """Join ``incoming`` (a materialised k-slice) into the clock of
        ``(chain, index)``; return whether anything changed.

        Taking the source as a pre-sliced list lets the propagation walk
        slice each source clock once and reuse it across every join it
        feeds, which is what makes this layout faster than per-event lists.
        """
        clocks = self._clocks[chain]
        slot = index * self._num_chains
        changed = False
        for value in incoming:
            if value > clocks[slot]:
                clocks[slot] = value
                changed = True
            slot += 1
        return changed

    def _propagate(self, chain: int, index: int) -> None:
        """Push the updated clock of ``(chain, index)`` to its successors,
        stopping along each chain as soon as a join is a no-op."""
        num_chains = self._num_chains
        worklist: List[Node] = [(chain, index)]
        out_edges = self._out_edges
        clocks_by_chain = self._clocks
        lengths = self._lengths
        join = self._join
        while worklist:
            t, j = worklist.pop()
            buffer = clocks_by_chain[t]
            length = lengths[t]
            offset = j * num_chains
            # The clock of (t, j) cannot change while this item is walked
            # (suffix joins write positions > j, cross joins write other
            # chains), so one slice serves the whole walk.
            source = buffer[offset:offset + num_chains]
            position = j + 1
            while position < length:
                slot = position * num_chains
                changed = False
                for value in source:
                    if value > buffer[slot]:
                        buffer[slot] = value
                        changed = True
                    slot += 1
                if not changed:
                    break
                targets = out_edges.get((t, position))
                if targets:
                    position_offset = position * num_chains
                    updated = buffer[position_offset:position_offset + num_chains]
                    for target in targets:
                        if join(target[0], target[1], updated):
                            worklist.append(target)
                position += 1
            for target in out_edges.get((t, j), ()):
                if join(target[0], target[1], source):
                    worklist.append(target)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def reachable(self, source: Node, target: Node) -> bool:
        t1, j1 = source
        t2, j2 = target
        num_chains = self._num_chains
        if not (0 <= t1 < num_chains and 0 <= t2 < num_chains
                and j1 >= 0 and j2 >= 0):
            self._check_node(source)
            self._check_node(target)
        if t1 == t2:
            return j1 <= j2
        clocks = self._clocks[t2]
        length = self._lengths[t2]
        if j2 < length:
            return clocks[j2 * num_chains + t1] >= j1
        # Events past the materialised frontier have no incoming cross
        # edges yet; they inherit the frontier clock.
        return length > 0 and clocks[(length - 1) * num_chains + t1] >= j1

    def successor(self, node: Node, chain: int) -> Optional[int]:
        self._check_node(node)
        t1, j1 = node
        if chain == t1:
            return j1
        if not 0 <= chain < self._num_chains:
            return None
        clocks = self._clocks[chain]
        num_chains = self._num_chains
        # clock[j][t1] is non-decreasing in j: binary search the first event
        # of the chain whose backward set contains (t1, j1).
        low, high, answer = 0, self._lengths[chain] - 1, None
        while low <= high:
            mid = (low + high) // 2
            if clocks[mid * num_chains + t1] >= j1:
                answer = mid
                high = mid - 1
            else:
                low = mid + 1
        return answer

    def predecessor(self, node: Node, chain: int) -> Optional[int]:
        self._check_node(node)
        t1, j1 = node
        if chain == t1:
            return j1
        if not 0 <= chain < self._num_chains:
            return None
        length = self._lengths[t1]
        if length == 0:
            return None
        index = min(j1, length - 1)
        value = self._clocks[t1][index * self._num_chains + chain]
        return value if value >= 0 else None

    def query_many(self, pairs: Iterable[Tuple[Node, Node]]) -> List[bool]:
        num_chains = self._num_chains
        clocks_by_chain = self._clocks
        lengths = self._lengths
        answers: List[bool] = []
        append = answers.append
        for (t1, j1), (t2, j2) in pairs:
            if not (0 <= t1 < num_chains and 0 <= t2 < num_chains
                    and j1 >= 0 and j2 >= 0):
                self._check_node((t1, j1))
                self._check_node((t2, j2))
            if t1 == t2:
                append(j1 <= j2)
                continue
            clocks = clocks_by_chain[t2]
            length = lengths[t2]
            if j2 < length:
                append(clocks[j2 * num_chains + t1] >= j1)
            else:
                append(length > 0
                       and clocks[(length - 1) * num_chains + t1] >= j1)
        return answers

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def edge_count(self) -> int:
        """Number of ``insert_edge`` calls performed so far."""
        return self._edge_count

    @property
    def materialised_clocks(self) -> int:
        """Number of stored clocks (memory is this value times ``k``)."""
        return sum(self._lengths)

    @property
    def total_entries(self) -> int:
        """Total number of stored integers across all clocks."""
        return sum(len(buffer) for buffer in self._clocks)
