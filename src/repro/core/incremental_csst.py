"""Incremental Collective Sparse Segment Trees (Algorithm 3 of the paper).

Many dynamic analyses only ever *insert* orderings.  The incremental CSST
exploits this by storing *transitive* reachability in its suffix-minima
arrays: every insertion eagerly closes the order across all pairs of chains
(``O(k^2 min(log n, d))`` per update), after which every query is a single
suffix-minima operation (``O(min(log n, d))`` per query, Theorem 2).

Crucially, the density of each array never exceeds the cross-chain density
``d`` of the underlying chain DAG (Lemma 7): transitive entries are only
ever written at source indices that already have an outgoing cross-chain
edge, so the sparse representation keeps paying off.
"""

from __future__ import annotations

from typing import Optional

from repro.core.interface import INF, Node
from repro.core.matrix import ArrayFactory, ChainMatrixOrder
from repro.core.sparse_segment_tree import DEFAULT_BLOCK_SIZE, SparseSegmentTree


class IncrementalCSST(ChainMatrixOrder):
    """Insert-only CSST with eagerly maintained transitive closure.

    Edge deletion is not supported; use :class:`~repro.core.csst.CSST` for
    fully dynamic workloads.

    Parameters mirror :class:`~repro.core.csst.CSST`.
    """

    supports_deletion = False

    def __init__(self, num_chains: int, capacity_hint: int = 1024, *,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 array_factory: Optional[ArrayFactory] = None) -> None:
        if array_factory is None:
            def array_factory(capacity: int, _b: int = block_size) -> SparseSegmentTree:
                return SparseSegmentTree(capacity, block_size=_b)
        super().__init__(num_chains, capacity_hint, array_factory=array_factory)
        self._edge_count = 0

    # ------------------------------------------------------------------ #
    # Queries (straight suffix-minima lookups)
    # ------------------------------------------------------------------ #
    def reachable(self, source: Node, target: Node) -> bool:
        # Fast path: a reachability query is a single suffix-minima lookup
        # on the transitively closed array (Algorithm 3, line 5).
        t1, j1 = source
        t2, j2 = target
        num_chains = self._num_chains
        if not (0 <= t1 < num_chains and 0 <= t2 < num_chains and j1 >= 0 and j2 >= 0):
            self._check_node(source)
            self._check_node(target)
        if t1 == t2:
            return j1 <= j2
        array = self._arrays.get((t1, t2))
        if array is None:
            return False
        return array.suffix_min(j1) <= j2

    def successor(self, node: Node, chain: int) -> Optional[int]:
        self._check_node(node)
        t1, j1 = node
        if chain == t1:
            return j1
        array = self._existing_array(t1, chain)
        if array is None:
            return None
        result = array.suffix_min(j1)
        return None if result == INF else int(result)

    def predecessor(self, node: Node, chain: int) -> Optional[int]:
        self._check_node(node)
        t1, j1 = node
        if chain == t1:
            return j1
        array = self._existing_array(chain, t1)
        if array is None:
            return None
        return array.argleq(j1)

    # ------------------------------------------------------------------ #
    # Updates (Algorithm 3)
    # ------------------------------------------------------------------ #
    def insert_edge(self, source: Node, target: Node) -> None:
        """Insert ``source -> target`` and close the order transitively.

        The caller is responsible for acyclicity: inserting an edge whose
        target already reaches its source would create a cycle, which chain
        DAGs (and the analyses built on them) never do.
        """
        self._check_edge(source, target)
        (t1, j1), (t2, j2) = source, target
        self._edge_count += 1
        for source_chain in range(self._num_chains):
            if source_chain == t1:
                source_index = j1
            else:
                source_index = self.predecessor((t1, j1), source_chain)
                if source_index is None:
                    continue
            for target_chain in range(self._num_chains):
                if target_chain == source_chain:
                    continue
                if target_chain == t2:
                    target_index = j2
                else:
                    target_index = self.successor((t2, j2), target_chain)
                    if target_index is None:
                        continue
                current = self.successor((source_chain, source_index), target_chain)
                if current is None or current > target_index:
                    self._array(source_chain, target_chain).update(
                        source_index, target_index
                    )

    @property
    def edge_count(self) -> int:
        """Number of ``insert_edge`` calls performed so far."""
        return self._edge_count
