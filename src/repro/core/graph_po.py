"""Plain graph representation of a partial order (the "Graphs" baseline).

This is the straightforward, transitively-unclosed adjacency representation
used by analyses that need decremental updates before CSSTs existed (e.g.
the linearizability root-causing analysis [12]).  Updates are ``O(1)`` but
every reachability query performs a graph traversal, which is ``O(n + m)``
in the worst case -- the cost the paper's Table 7 demonstrates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.interface import Node, PartialOrder
from repro.errors import InvalidEdgeError


class GraphOrder(PartialOrder):
    """Adjacency-list chain DAG with DFS-based queries."""

    supports_deletion = True

    def __init__(self, num_chains: int, capacity_hint: int = 1024) -> None:
        super().__init__(num_chains, capacity_hint)
        self._out_edges: Dict[Node, Set[Node]] = {}
        self._in_edges: Dict[Node, Set[Node]] = {}
        # Highest index seen per chain; program-order traversal never needs
        # to walk past it because later nodes have no outgoing cross edges.
        self._max_index: List[int] = [-1] * num_chains
        self._edge_count = 0

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def insert_edge(self, source: Node, target: Node) -> None:
        self._check_edge(source, target)
        targets = self._out_edges.setdefault(source, set())
        if target in targets:
            # The adjacency representation is a set, so re-inserting an
            # existing edge is a no-op (matching the paper's precondition
            # that insertEdge is only called on absent edges).
            return
        targets.add(target)
        self._in_edges.setdefault(target, set()).add(source)
        self._max_index[source[0]] = max(self._max_index[source[0]], source[1])
        self._max_index[target[0]] = max(self._max_index[target[0]], target[1])
        self._edge_count += 1

    def delete_edge(self, source: Node, target: Node) -> None:
        self._check_edge(source, target)
        targets = self._out_edges.get(source)
        if not targets or target not in targets:
            raise InvalidEdgeError(f"edge {source} -> {target} is not present")
        targets.discard(target)
        self._in_edges[target].discard(source)
        self._edge_count -= 1

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def reachable(self, source: Node, target: Node) -> bool:
        self._check_node(source)
        self._check_node(target)
        t1, j1 = source
        t2, j2 = target
        if t1 == t2:
            return j1 <= j2
        stack: List[Node] = [source]
        visited: Set[Node] = set()
        while stack:
            node = stack.pop()
            if node in visited:
                continue
            visited.add(node)
            chain, index = node
            if chain == t2 and index <= j2:
                return True
            if index + 1 <= self._max_index[chain]:
                stack.append((chain, index + 1))
            stack.extend(self._out_edges.get(node, ()))
        return False

    def successor(self, node: Node, chain: int) -> Optional[int]:
        self._check_node(node)
        if chain == node[0]:
            return node[1]
        earliest = self._closure(node, forward=True)
        return earliest.get(chain)

    def predecessor(self, node: Node, chain: int) -> Optional[int]:
        self._check_node(node)
        if chain == node[0]:
            return node[1]
        latest = self._closure(node, forward=False)
        return latest.get(chain)

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def _closure(self, start: Node, forward: bool) -> Dict[int, int]:
        """Earliest (forward) or latest (backward) reachable index per chain."""
        stack: List[Node] = [start]
        visited: Set[Node] = set()
        best: Dict[int, int] = {}
        while stack:
            node = stack.pop()
            if node in visited:
                continue
            visited.add(node)
            chain, index = node
            current = best.get(chain)
            if current is None:
                best[chain] = index
            elif forward and index < current:
                best[chain] = index
            elif not forward and index > current:
                best[chain] = index
            if forward:
                if index + 1 <= self._max_index[chain]:
                    stack.append((chain, index + 1))
                stack.extend(self._out_edges.get(node, ()))
            else:
                if index - 1 >= 0:
                    stack.append((chain, index - 1))
                stack.extend(self._in_edges.get(node, ()))
        # The start node is reflexively reachable from itself.
        best[start[0]] = start[1]
        return best

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def edge_count(self) -> int:
        """Number of cross-chain edges currently present."""
        return self._edge_count

    @property
    def total_entries(self) -> int:
        """Number of stored adjacency entries (proxy for memory usage)."""
        return sum(len(v) for v in self._out_edges.values()) + sum(
            len(v) for v in self._in_edges.values()
        )
