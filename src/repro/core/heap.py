"""A min-heap with lazy deletion of arbitrary values.

Fully dynamic CSSTs (Section 3.3) keep, for every node ``(t1, j1)`` and
every other chain ``t2``, the multiset of indices ``j2`` such that the edge
``(t1, j1) -> (t2, j2)`` is currently present.  The minimum of that multiset
is mirrored into the suffix-minima array ``A^{t2}_{t1}[j1]`` (Lemma 3 of the
paper).  Edge insertion pushes onto the heap, edge deletion removes an
arbitrary value.

Deleting arbitrary values from a binary heap is done lazily: deletions are
recorded in a counter and stale entries are discarded whenever the heap top
is inspected.  All operations are amortised ``O(log δ)`` where ``δ`` is the
number of live plus stale entries, matching the ``log δ`` term in Theorem 1.
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Iterable, Iterator, Optional

from repro.core.interface import INF
from repro.errors import ReproError


class DeletableMinHeap:
    """Min-heap of integers supporting ``insert``, ``delete`` and ``min``."""

    __slots__ = ("_heap", "_deleted", "_size")

    def __init__(self, values: Iterable[int] = ()) -> None:
        self._heap: list = list(values)
        heapq.heapify(self._heap)
        self._deleted: Counter = Counter()
        self._size = len(self._heap)

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, value: int) -> bool:
        live = self._heap.count(value) - self._deleted[value]
        return live > 0

    def __iter__(self) -> Iterator[int]:
        """Iterate over the live values (unordered, for tests/debugging)."""
        pending = Counter(self._deleted)
        for value in self._heap:
            if pending[value] > 0:
                pending[value] -= 1
            else:
                yield value

    def insert(self, value: int) -> None:
        """Insert ``value`` into the heap."""
        if self._deleted[value] > 0:
            # Re-inserting a value with a pending lazy deletion simply
            # cancels that deletion; the stale copy becomes live again.
            self._deleted[value] -= 1
            if self._deleted[value] == 0:
                del self._deleted[value]
        else:
            heapq.heappush(self._heap, value)
        self._size += 1

    def delete(self, value: int) -> None:
        """Delete one occurrence of ``value`` from the heap.

        Raises
        ------
        ReproError
            If ``value`` is not currently in the heap.
        """
        if value not in self:
            raise ReproError(f"value {value} not present in heap")
        self._deleted[value] += 1
        self._size -= 1
        self._compact()

    def min(self):
        """Return the smallest live value, or ``INF`` if the heap is empty."""
        self._compact()
        if not self._heap:
            return INF
        return self._heap[0]

    def pop_min(self) -> int:
        """Remove and return the smallest live value."""
        self._compact()
        if not self._heap:
            raise ReproError("pop from an empty heap")
        value = heapq.heappop(self._heap)
        self._size -= 1
        self._compact()
        return value

    def _compact(self) -> None:
        """Discard stale entries sitting at the top of the heap."""
        while self._heap and self._deleted.get(self._heap[0], 0) > 0:
            value = heapq.heappop(self._heap)
            self._deleted[value] -= 1
            if self._deleted[value] == 0:
                del self._deleted[value]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeletableMinHeap(size={self._size}, min={self.min() if self else None})"
