"""The "STs" baseline: incremental reachability over dense Segment Trees.

This reproduces the data structure underpinning the M2 race detector [31]
and used as the main incremental baseline of the paper's evaluation: the
same transitive per-chain-pair arrays as incremental CSSTs, but each array
is a classic dense segment tree without minima indexing, sparse
representation, or block nodes.  Functionally it answers exactly the same
queries; it simply allocates ``O(n k)`` space up front and always pays the
full ``O(log n)`` per array operation.
"""

from __future__ import annotations

from repro.core.incremental_csst import IncrementalCSST
from repro.core.segment_tree import SegmentTree


class SegmentTreeOrder(IncrementalCSST):
    """Incremental partial order backed by dense segment trees."""

    def __init__(self, num_chains: int, capacity_hint: int = 1024) -> None:
        super().__init__(
            num_chains,
            capacity_hint,
            array_factory=lambda capacity: SegmentTree(capacity),
        )
