"""Operation-counting wrapper around any partial-order backend.

The analyses report, alongside wall-clock time, how many update and query
operations they issued against the partial order.  This wrapper makes that
bookkeeping independent of the backend and keeps the analyses themselves
free of counting code.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.core.interface import Node, PartialOrder


class InstrumentedOrder(PartialOrder):
    """Delegating partial order that counts every operation performed."""

    def __init__(self, delegate: PartialOrder) -> None:
        super().__init__(delegate.num_chains, delegate.capacity_hint)
        self._delegate = delegate
        self.insert_count = 0
        self.delete_count = 0
        self.query_count = 0

    @property
    def supports_deletion(self) -> bool:  # type: ignore[override]
        return self._delegate.supports_deletion

    @property
    def delegate(self) -> PartialOrder:
        """The wrapped backend."""
        return self._delegate

    @property
    def operation_count(self) -> int:
        """Total number of operations issued so far."""
        return self.insert_count + self.delete_count + self.query_count

    # ------------------------------------------------------------------ #
    # Delegation
    # ------------------------------------------------------------------ #
    def insert_edge(self, source: Node, target: Node) -> None:
        self.insert_count += 1
        self._delegate.insert_edge(source, target)

    def delete_edge(self, source: Node, target: Node) -> None:
        self.delete_count += 1
        self._delegate.delete_edge(source, target)

    def reachable(self, source: Node, target: Node) -> bool:
        self.query_count += 1
        return self._delegate.reachable(source, target)

    def successor(self, node: Node, chain: int) -> Optional[int]:
        self.query_count += 1
        return self._delegate.successor(node, chain)

    def predecessor(self, node: Node, chain: int) -> Optional[int]:
        self.query_count += 1
        return self._delegate.predecessor(node, chain)

    def insert_many(self, edges: Iterable[Tuple[Node, Node]]) -> None:
        edges = list(edges)
        self.insert_count += len(edges)
        self._delegate.insert_many(edges)

    def query_many(self, pairs: Iterable[Tuple[Node, Node]]) -> List[bool]:
        pairs = list(pairs)
        self.query_count += len(pairs)
        return self._delegate.query_many(pairs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InstrumentedOrder({self._delegate!r}, inserts={self.insert_count}, "
            f"deletes={self.delete_count}, queries={self.query_count})"
        )
