"""A chain-count-growable wrapper around the partial-order backends.

Every backend in :mod:`repro.core` fixes its number of chains at
construction, which is fine for batch analyses (the trace is complete, so
the thread count is known) but not for *streaming* use: a live event feed
may introduce a new thread at any point.  :class:`GrowableOrder` wraps a
named backend and keeps an append-only log of the cross-chain edges inserted
so far; when an operation names a chain beyond the current range, it
rebuilds the delegate with a doubled chain count and replays the log.

Replaying preserves reachability exactly (the edge set is identical and
insertion order is kept), so queries issued after a growth step answer the
same as if the final chain count had been known up front.  Growth is
amortised: chains double, so a stream that ends up with ``k`` threads pays
at most ``log2(k)`` rebuilds.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.factory import make_partial_order
from repro.core.interface import Node, PartialOrder


class GrowableOrder(PartialOrder):
    """Partial order over a chain DAG whose chain count grows on demand.

    Parameters
    ----------
    kind:
        Backend name understood by :func:`repro.core.make_partial_order`.
    num_chains:
        Initial chain count (grown automatically when exceeded).
    capacity_hint:
        Per-chain capacity hint forwarded to the delegate.
    kwargs:
        Extra keyword arguments forwarded to the delegate constructor.
    """

    def __init__(self, kind: str, num_chains: int = 1,
                 capacity_hint: int = 1024, **kwargs) -> None:
        super().__init__(num_chains, capacity_hint)
        self._kind = kind
        self._kwargs = kwargs
        self._edges: List[Tuple[Node, Node]] = []
        self._delegate = make_partial_order(kind, num_chains,
                                            capacity_hint, **kwargs)
        self.rebuild_count = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def kind(self) -> str:
        """The delegate backend's factory name."""
        return self._kind

    @property
    def delegate(self) -> PartialOrder:
        """The current delegate backend (replaced on growth)."""
        return self._delegate

    @property
    def supports_deletion(self) -> bool:  # type: ignore[override]
        return self._delegate.supports_deletion

    @property
    def edge_count(self) -> int:
        """Number of live cross-chain edges."""
        return len(self._edges)

    # ------------------------------------------------------------------ #
    # Growth
    # ------------------------------------------------------------------ #
    def ensure_chain(self, chain: int) -> None:
        """Grow the delegate so that ``chain`` is a valid chain id."""
        if chain < self._num_chains:
            return
        new_chains = max(self._num_chains, 1)
        while new_chains <= chain:
            new_chains *= 2
        delegate = make_partial_order(self._kind, new_chains,
                                      self._capacity_hint, **self._kwargs)
        for source, target in self._edges:
            delegate.insert_edge(source, target)
        self._delegate = delegate
        self._num_chains = new_chains
        self.rebuild_count += 1

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def insert_edge(self, source: Node, target: Node) -> None:
        self.ensure_chain(max(source[0], target[0]))
        self._delegate.insert_edge(source, target)
        self._edges.append((source, target))

    def delete_edge(self, source: Node, target: Node) -> None:
        self._delegate.delete_edge(source, target)
        # Keep the replay log consistent: drop the most recent matching
        # occurrence (single reverse scan, log order preserved throughout).
        for position in range(len(self._edges) - 1, -1, -1):
            if self._edges[position] == (source, target):
                del self._edges[position]
                break

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def successor(self, node: Node, chain: int) -> Optional[int]:
        self.ensure_chain(max(node[0], chain))
        return self._delegate.successor(node, chain)

    def predecessor(self, node: Node, chain: int) -> Optional[int]:
        self.ensure_chain(max(node[0], chain))
        return self._delegate.predecessor(node, chain)

    def reachable(self, source: Node, target: Node) -> bool:
        self.ensure_chain(max(source[0], target[0]))
        return self._delegate.reachable(source, target)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"GrowableOrder({self._kind!r}, num_chains={self._num_chains}, "
                f"edges={len(self._edges)})")
