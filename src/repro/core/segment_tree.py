"""Dense Segment Trees for dynamic suffix minima (the "STs" baseline).

This is the classic, array-backed segment tree used by the M2 race
detector [31] and reproduced here as the ``STs`` baseline of the paper's
evaluation (Section 5.1).  Every operation runs in ``O(log n)`` time and the
structure always allocates ``O(n)`` space regardless of how sparse the
represented array is -- this is exactly the weakness that Sparse Segment
Trees (:mod:`repro.core.sparse_segment_tree`) address.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.interface import INF
from repro.core.suffix_minima import SuffixMinima, Value
from repro.errors import InvalidNodeError


def _next_power_of_two(value: int) -> int:
    power = 1
    while power < value:
        power *= 2
    return power


class SegmentTree(SuffixMinima):
    """Array-backed segment tree over a fixed-capacity array.

    The tree is stored implicitly in a flat list of ``2 * capacity`` slots:
    node ``i`` has children ``2i`` and ``2i + 1`` and the leaves occupy
    slots ``capacity .. 2 * capacity - 1``.  Each internal node stores the
    minimum of its subtree.

    The capacity grows automatically (by doubling and rebuilding the upper
    levels) when an update targets an index beyond the current capacity, so
    the structure can be used without knowing the trace length up front.
    """

    def __init__(self, capacity: int = 1) -> None:
        if capacity < 1:
            raise InvalidNodeError(f"capacity must be >= 1, got {capacity}")
        self._capacity = _next_power_of_two(capacity)
        self._tree: List[Value] = [INF] * (2 * self._capacity)
        self._density = 0

    # ------------------------------------------------------------------ #
    # SuffixMinima interface
    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def density(self) -> int:
        return self._density

    def update(self, index: int, value: Value) -> None:
        self._check_index(index)
        if index >= self._capacity:
            self._grow(index + 1)
        leaf = self._capacity + index
        old = self._tree[leaf]
        if old == value:
            return
        if old == INF and value != INF:
            self._density += 1
        elif old != INF and value == INF:
            self._density -= 1
        self._tree[leaf] = value
        node = leaf // 2
        while node >= 1:
            new_min = min(self._tree[2 * node], self._tree[2 * node + 1])
            if self._tree[node] == new_min:
                break
            self._tree[node] = new_min
            node //= 2

    def get(self, index: int) -> Value:
        self._check_index(index)
        if index >= self._capacity:
            return INF
        return self._tree[self._capacity + index]

    def suffix_min(self, index: int) -> Value:
        self._check_index(index)
        if index >= self._capacity:
            return INF
        # Standard iterative range-minimum over [index, capacity).
        result = INF
        left = self._capacity + index
        right = 2 * self._capacity
        while left < right:
            if left & 1:
                result = min(result, self._tree[left])
                left += 1
            if right & 1:
                right -= 1
                result = min(result, self._tree[right])
            left //= 2
            right //= 2
        return result

    def argleq(self, value: Value) -> Optional[int]:
        if self._tree[1] > value:
            return None
        # Descend towards the right-most leaf whose value is <= value.
        node = 1
        while node < self._capacity:
            right = 2 * node + 1
            left = 2 * node
            if self._tree[right] <= value:
                node = right
            else:
                node = left
        return node - self._capacity

    def items(self):
        return [
            (i, self._tree[self._capacity + i])
            for i in range(self._capacity)
            if self._tree[self._capacity + i] != INF
        ]

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _grow(self, minimum_capacity: int) -> None:
        new_capacity = self._capacity
        while new_capacity < minimum_capacity:
            new_capacity *= 2
        new_tree: List[Value] = [INF] * (2 * new_capacity)
        # Copy the existing leaves and rebuild the internal levels.
        new_tree[new_capacity : new_capacity + self._capacity] = self._tree[
            self._capacity : 2 * self._capacity
        ]
        for node in range(new_capacity - 1, 0, -1):
            new_tree[node] = min(new_tree[2 * node], new_tree[2 * node + 1])
        self._capacity = new_capacity
        self._tree = new_tree

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SegmentTree(capacity={self._capacity}, density={self._density})"
