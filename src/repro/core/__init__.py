"""Core data structures: CSSTs, their building blocks, and the baselines.

The package follows the structure of the paper:

* :mod:`repro.core.suffix_minima` -- the dynamic suffix-minima problem
  (Section 3.1) and a naive reference implementation.
* :mod:`repro.core.segment_tree` -- classic dense segment trees, the "STs"
  building block of [31].
* :mod:`repro.core.sparse_segment_tree` -- Sparse Segment Trees with minima
  indexing, sparse representation and block nodes (Section 3.2).
* :mod:`repro.core.csst` -- fully dynamic CSSTs (Section 3.3, Algorithm 2).
* :mod:`repro.core.incremental_csst` -- incremental CSSTs (Section 4,
  Algorithm 3).
* :mod:`repro.core.vector_clock`, :mod:`repro.core.graph_po`,
  :mod:`repro.core.st_partial_order` -- the evaluation baselines
  (Section 5.1).
"""

from repro.core.csst import CSST
from repro.core.factory import (
    AUTO_BACKEND,
    BACKENDS,
    DYNAMIC_BACKENDS,
    FLAT_BACKENDS,
    FLAT_EQUIVALENTS,
    INCREMENTAL_BACKENDS,
    dynamic_backends,
    incremental_backends,
    make_partial_order,
    register_backend,
    unregister_backend,
)
from repro.core.flat import (
    FlatCSST,
    FlatIncrementalCSST,
    FlatSparseSegmentTree,
    FlatVectorClockOrder,
)
from repro.core.graph_po import GraphOrder
from repro.core.growable import GrowableOrder
from repro.core.heap import DeletableMinHeap
from repro.core.incremental_csst import IncrementalCSST
from repro.core.instrumented import InstrumentedOrder
from repro.core.interface import INF, Node, PartialOrder
from repro.core.segment_tree import SegmentTree
from repro.core.sparse_segment_tree import DEFAULT_BLOCK_SIZE, SparseSegmentTree
from repro.core.st_partial_order import SegmentTreeOrder
from repro.core.suffix_minima import NaiveSuffixMinima, SuffixMinima
from repro.core.vector_clock import VectorClockOrder

__all__ = [
    "AUTO_BACKEND",
    "BACKENDS",
    "CSST",
    "DEFAULT_BLOCK_SIZE",
    "DYNAMIC_BACKENDS",
    "DeletableMinHeap",
    "FLAT_BACKENDS",
    "FLAT_EQUIVALENTS",
    "FlatCSST",
    "FlatIncrementalCSST",
    "FlatSparseSegmentTree",
    "FlatVectorClockOrder",
    "GraphOrder",
    "GrowableOrder",
    "INCREMENTAL_BACKENDS",
    "INF",
    "IncrementalCSST",
    "InstrumentedOrder",
    "NaiveSuffixMinima",
    "Node",
    "PartialOrder",
    "SegmentTree",
    "SegmentTreeOrder",
    "SparseSegmentTree",
    "SuffixMinima",
    "VectorClockOrder",
    "dynamic_backends",
    "incremental_backends",
    "make_partial_order",
    "register_backend",
    "unregister_backend",
]
