"""Shared machinery for backends built on per-chain-pair suffix-minima arrays.

Both CSST variants (and the dense Segment Tree baseline) maintain one
suffix-minima array ``A[t1][t2]`` for every ordered pair of distinct chains
``t1 != t2``.  This module provides the lazy construction and bookkeeping of
that ``k x (k - 1)`` matrix so the individual backends only implement the
algorithmic parts (Algorithms 2 and 3 of the paper).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Tuple

from repro.core.interface import PartialOrder
from repro.core.suffix_minima import SuffixMinima

#: A callable building a fresh suffix-minima array with the given capacity.
ArrayFactory = Callable[[int], SuffixMinima]


class ChainMatrixOrder(PartialOrder):
    """Base class managing a lazily populated matrix of suffix-minima arrays.

    Subclasses access the array holding orderings *from* chain ``t1`` *to*
    chain ``t2`` through :meth:`_array`.  Arrays are created on first use so
    that the memory footprint tracks the number of chain pairs that actually
    interact, which is what makes the space usage ``O(d k)`` in practice
    (Section 3.3, "Space usage").
    """

    def __init__(self, num_chains: int, capacity_hint: int = 1024, *,
                 array_factory: ArrayFactory) -> None:
        super().__init__(num_chains, capacity_hint)
        self._array_factory = array_factory
        self._arrays: Dict[Tuple[int, int], SuffixMinima] = {}

    # ------------------------------------------------------------------ #
    # Matrix access
    # ------------------------------------------------------------------ #
    def _array(self, source_chain: int, target_chain: int) -> SuffixMinima:
        """Return (creating if needed) the array of orderings
        ``source_chain -> target_chain``."""
        key = (source_chain, target_chain)
        array = self._arrays.get(key)
        if array is None:
            array = self._array_factory(self._capacity_hint)
            self._arrays[key] = array
        return array

    def _existing_array(self, source_chain: int, target_chain: int):
        """Return the array for the pair if it was ever written, else ``None``."""
        return self._arrays.get((source_chain, target_chain))

    def _iter_arrays(self) -> Iterator[Tuple[Tuple[int, int], SuffixMinima]]:
        return iter(self._arrays.items())

    # ------------------------------------------------------------------ #
    # Introspection used by benchmarks and tests
    # ------------------------------------------------------------------ #
    @property
    def max_array_density(self) -> int:
        """Largest density among the suffix-minima arrays (paper's ``q`` is
        this value normalised by the chain length)."""
        return max((a.density for a in self._arrays.values()), default=0)

    @property
    def total_entries(self) -> int:
        """Total number of non-empty entries across every array.

        This is the dominant memory term of the structure and the quantity
        compared against the ``O(n k)`` footprint of Vector Clocks."""
        return sum(a.density for a in self._arrays.values())
