"""The dynamic suffix-minima problem (Section 3.1 of the paper).

A suffix-minima structure maintains an array ``A`` of values in
``N ∪ {∞}`` under point updates and answers two queries:

* ``suffix_min(i)`` -- ``min(A[i:])``
* ``argleq(v)``     -- the largest index ``i`` with ``A[i] <= v``

CSSTs reduce dynamic reachability on chain DAGs to a collection of these
arrays (one per ordered pair of chains).  This module defines the common
interface plus a deliberately naive reference implementation that the tests
and hypothesis properties use as an oracle.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional

from repro.core.interface import INF
from repro.errors import InvalidNodeError

Value = float  # int or float("inf")


class SuffixMinima(abc.ABC):
    """Interface of a dynamic suffix-minima array.

    Indices run from ``0`` to ``capacity - 1``.  Implementations may grow
    their capacity automatically when an update targets a larger index.
    Empty entries hold the value :data:`~repro.core.interface.INF`.
    """

    @property
    @abc.abstractmethod
    def capacity(self) -> int:
        """Current capacity (one past the largest representable index)."""

    @property
    @abc.abstractmethod
    def density(self) -> int:
        """Number of non-empty (non-infinite) entries currently stored."""

    @abc.abstractmethod
    def update(self, index: int, value: Value) -> None:
        """Set ``A[index] = value``.  ``value = INF`` clears the entry."""

    @abc.abstractmethod
    def get(self, index: int) -> Value:
        """Return ``A[index]`` (``INF`` when the entry is empty)."""

    @abc.abstractmethod
    def suffix_min(self, index: int) -> Value:
        """Return ``min(A[index:])`` (``INF`` when the suffix is empty)."""

    @abc.abstractmethod
    def argleq(self, value: Value) -> Optional[int]:
        """Return the largest index ``i`` with ``A[i] <= value``.

        Returns ``None`` when no entry is ``<= value``.
        """

    def clear(self, index: int) -> None:
        """Remove the entry at ``index`` (equivalent to ``update(index, INF)``)."""
        self.update(index, INF)

    def items(self) -> List[tuple]:
        """Return the non-empty entries as ``(index, value)`` pairs.

        The default implementation scans the whole array; subclasses with a
        sparse representation override it.
        """
        return [
            (i, self.get(i)) for i in range(self.capacity) if self.get(i) != INF
        ]

    # Convenience for debugging / tests.
    def to_list(self) -> List[Value]:
        """Materialise the represented array as a Python list."""
        return [self.get(i) for i in range(self.capacity)]

    @staticmethod
    def _check_index(index: int) -> None:
        if index < 0:
            raise InvalidNodeError(f"negative index {index}")


class NaiveSuffixMinima(SuffixMinima):
    """Reference implementation backed by a plain dict.

    Every operation is linear in the capacity or density; it exists purely
    as an oracle for tests (hypothesis compares the segment-tree
    implementations against it) and as executable documentation of the
    expected semantics.
    """

    def __init__(self, capacity: int = 1) -> None:
        if capacity < 1:
            raise InvalidNodeError(f"capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        self._entries: Dict[int, Value] = {}

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def density(self) -> int:
        return len(self._entries)

    def update(self, index: int, value: Value) -> None:
        self._check_index(index)
        if index >= self._capacity:
            self._capacity = index + 1
        if value == INF:
            self._entries.pop(index, None)
        else:
            self._entries[index] = value

    def get(self, index: int) -> Value:
        self._check_index(index)
        return self._entries.get(index, INF)

    def suffix_min(self, index: int) -> Value:
        self._check_index(index)
        candidates = [v for i, v in self._entries.items() if i >= index]
        return min(candidates) if candidates else INF

    def argleq(self, value: Value) -> Optional[int]:
        candidates = [i for i, v in self._entries.items() if v <= value]
        return max(candidates) if candidates else None

    def items(self) -> List[tuple]:
        return sorted(self._entries.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NaiveSuffixMinima(capacity={self._capacity}, density={self.density})"
