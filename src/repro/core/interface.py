"""Common interface for dynamic partial-order (chain DAG) backends.

The paper (Section 2.2) defines the *dynamic reachability* problem on chain
DAGs: a DAG whose nodes are pairs ``(chain, index)`` where every chain is
totally ordered by program order, plus arbitrary cross-chain edges that may
be inserted and (for fully dynamic structures) deleted.  Five operations are
supported:

* ``insert_edge(u, v)``     -- insert a cross-chain edge ``u -> v``
* ``delete_edge(u, v)``     -- delete a previously inserted edge
* ``reachable(u, v)``       -- is there a path ``u ->* v``?
* ``successor(u, chain)``   -- earliest node of ``chain`` reachable from ``u``
* ``predecessor(u, chain)`` -- latest node of ``chain`` that reaches ``u``

Every backend in :mod:`repro.core` (CSSTs, incremental CSSTs, Segment Trees,
Vector Clocks, plain graphs) implements this interface, which is what makes
CSSTs a drop-in replacement inside the dynamic analyses of
:mod:`repro.analyses`.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Optional, Tuple

from repro.errors import InvalidEdgeError, InvalidNodeError

#: A node of the chain DAG: ``(chain id, index within the chain)``.
Node = Tuple[int, int]

#: Sentinel used internally for "no successor" in suffix-minima arrays.
INF = float("inf")

#: Sentinel used internally for "no predecessor".
NEG_INF = float("-inf")


class PartialOrder(abc.ABC):
    """Abstract base class for dynamic partial-order backends.

    Concrete subclasses maintain a chain DAG over ``num_chains`` chains.
    Nodes are created implicitly: any pair ``(chain, index)`` with
    ``0 <= chain < num_chains`` and ``index >= 0`` is a valid node, and
    program order ``(t, i) -> (t, i + 1)`` is always implied.

    Parameters
    ----------
    num_chains:
        Number of totally ordered chains (``k`` in the paper).  For most
        analyses this is the number of threads of the analysed trace.
    capacity_hint:
        Optional upper bound on the number of events per chain (``n / k``).
        Backends that pre-allocate (dense segment trees, vector clocks) use
        it to size their arrays; sparse backends only use it to seed their
        root ranges and grow automatically beyond it.
    """

    #: Whether :meth:`delete_edge` is supported by this backend.
    supports_deletion: bool = False

    def __init__(self, num_chains: int, capacity_hint: int = 1024) -> None:
        if num_chains < 1:
            raise InvalidNodeError(f"num_chains must be >= 1, got {num_chains}")
        if capacity_hint < 1:
            raise InvalidNodeError(f"capacity_hint must be >= 1, got {capacity_hint}")
        self._num_chains = int(num_chains)
        self._capacity_hint = int(capacity_hint)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_chains(self) -> int:
        """Number of chains ``k`` of the maintained chain DAG."""
        return self._num_chains

    @property
    def capacity_hint(self) -> int:
        """The per-chain capacity hint supplied at construction."""
        return self._capacity_hint

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def insert_edge(self, source: Node, target: Node) -> None:
        """Insert the cross-chain edge ``source -> target``.

        Raises
        ------
        InvalidEdgeError
            If ``source`` and ``target`` belong to the same chain.
        """

    def delete_edge(self, source: Node, target: Node) -> None:
        """Delete a previously inserted cross-chain edge.

        Backends that cannot handle decremental updates raise
        :class:`~repro.errors.UnsupportedOperationError`.
        """
        from repro.errors import UnsupportedOperationError

        raise UnsupportedOperationError(
            f"{type(self).__name__} does not support edge deletion"
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def successor(self, node: Node, chain: int) -> Optional[int]:
        """Return the index of the earliest node of ``chain`` reachable from
        ``node``, or ``None`` if no node of ``chain`` is reachable.

        If ``chain`` equals the chain of ``node`` the answer is the node's
        own index (every node reaches itself reflexively).
        """

    @abc.abstractmethod
    def predecessor(self, node: Node, chain: int) -> Optional[int]:
        """Return the index of the latest node of ``chain`` that reaches
        ``node``, or ``None`` if no node of ``chain`` reaches it."""

    def reachable(self, source: Node, target: Node) -> bool:
        """Return ``True`` iff ``source ->* target`` in the chain DAG."""
        t1, j1 = source
        t2, j2 = target
        self._check_node(source)
        self._check_node(target)
        if t1 == t2:
            return j1 <= j2
        succ = self.successor(source, t2)
        return succ is not None and succ <= j2

    def ordered(self, a: Node, b: Node) -> bool:
        """Return ``True`` iff ``a`` and ``b`` are ordered either way."""
        return self.reachable(a, b) or self.reachable(b, a)

    def concurrent(self, a: Node, b: Node) -> bool:
        """Return ``True`` iff ``a`` and ``b`` are unordered (concurrent)."""
        return not self.ordered(a, b)

    # ------------------------------------------------------------------ #
    # Batch APIs
    # ------------------------------------------------------------------ #
    # The per-operation methods dominate analysis code, but batch-oriented
    # callers (the benchmark kernels, bulk loaders) go through these so that
    # backends can amortize per-call overhead.  The defaults simply loop;
    # the flat backends override them with locally bound fast paths.
    def insert_many(self, edges: Iterable[Tuple[Node, Node]]) -> None:
        """Insert every edge of ``edges`` (batch update API)."""
        for source, target in edges:
            self.insert_edge(source, target)

    def query_many(self, pairs: Iterable[Tuple[Node, Node]]) -> List[bool]:
        """Answer ``reachable(source, target)`` for every pair (batch
        query API); results come back in input order."""
        return [self.reachable(source, target) for source, target in pairs]

    def insert_edges(self, edges: Iterable[Tuple[Node, Node]]) -> None:
        """Insert every edge of ``edges`` (alias of :meth:`insert_many`,
        kept for backward compatibility)."""
        self.insert_many(edges)

    # ------------------------------------------------------------------ #
    # Validation helpers shared by subclasses
    # ------------------------------------------------------------------ #
    def _check_node(self, node: Node) -> None:
        chain, index = node
        if not (0 <= chain < self._num_chains):
            raise InvalidNodeError(
                f"chain {chain} out of range [0, {self._num_chains})"
            )
        if index < 0:
            raise InvalidNodeError(f"negative index {index} in node {node}")

    def _check_edge(self, source: Node, target: Node) -> None:
        self._check_node(source)
        self._check_node(target)
        if source[0] == target[0]:
            raise InvalidEdgeError(
                f"edges must cross chains; both endpoints of {source} -> {target} "
                f"are in chain {source[0]}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(num_chains={self._num_chains})"
