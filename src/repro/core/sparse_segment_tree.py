"""Sparse Segment Trees (SSTs) -- Section 3.2 of the paper.

An SST solves the dynamic suffix-minima problem like a classic segment tree
but with two key optimizations:

* **Minima indexing.**  Every tree node stores a single array entry
  ``(pos, min)`` where ``pos`` is the largest index holding the minimum
  value of the node's range *after excluding the entries stored in its
  ancestors* (Eq. 2 in the paper).  Because suffix queries ask for
  ``min(A[i:])``, a traversal can stop as soon as it finds a node whose
  ``pos`` is inside the queried suffix.

* **Sparse representation.**  Empty (infinite) array entries are never
  represented: a node exists only because some non-empty entry had to be
  pushed into it.  Consequently the height of the tree is bounded by
  ``min(log n, d)`` where ``d`` is the number of non-empty entries
  (Lemma 1), and so is the cost of every operation.

* **Block nodes.**  Subtrees whose range is at most ``block_size`` are
  flattened into small dictionaries that are scanned directly, which keeps
  densely populated but localised regions compact (Figure 7).

Implementation note
-------------------
The paper's pseudocode attaches freshly created nodes at the *lowest common
ancestor* range of the new entry and the displaced subtree.  We instead
always give children their canonical half range.  This keeps insertion and
deletion purely local (no LCA computation, no re-parenting) while preserving
both bounds of Lemma 1: every node on a root-to-leaf path still stores a
distinct non-empty entry (height <= d) and ranges still halve at every level
(height <= log n).  The resulting structure supports the same operations
with the same asymptotic costs, and additionally supports *removing* entries
(needed by fully dynamic CSSTs when an edge deletion empties a heap).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.interface import INF
from repro.core.suffix_minima import SuffixMinima, Value
from repro.errors import InvalidNodeError

#: Default block-size threshold ``b``; the paper selects 32 via a stress test.
DEFAULT_BLOCK_SIZE = 32


def _next_power_of_two(value: int) -> int:
    power = 1
    while power < value:
        power *= 2
    return power


def _better(value_a: Value, pos_a: int, value_b: Value, pos_b: int) -> bool:
    """Entry ordering used throughout the tree.

    Entry A is "better" than entry B when it has a strictly smaller value,
    or an equal value at a larger index (Eq. 2 picks the *largest* index
    among the minima so that suffix queries can stop as early as possible).
    """
    return value_a < value_b or (value_a == value_b and pos_a > pos_b)


class _Node:
    """A node of the sparse segment tree.

    Regular nodes store exactly one array entry ``(pos, min)`` plus optional
    children covering the canonical halves of their range.  Block nodes
    (``block is not None``) store a small dictionary of entries instead of
    children; their ``(pos, min)`` mirrors the best entry of the block.
    """

    __slots__ = ("start", "end", "pos", "min", "left", "right", "block")

    def __init__(self, start: int, end: int, pos: int, value: Value,
                 is_block: bool) -> None:
        self.start = start
        self.end = end
        self.pos = pos
        self.min = value
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        self.block: Optional[Dict[int, Value]] = {pos: value} if is_block else None

    @property
    def mid(self) -> int:
        return self.start + (self.end - self.start) // 2

    def refresh_block_best(self) -> None:
        """Recompute ``(pos, min)`` from the block dictionary."""
        best_pos = -1
        best_value = INF
        for pos, value in self.block.items():
            if _better(value, pos, best_value, best_pos):
                best_pos, best_value = pos, value
        self.pos = best_pos
        self.min = best_value


class SparseSegmentTree(SuffixMinima):
    """Dynamic suffix minima with the sparse/minima-indexed representation.

    Parameters
    ----------
    capacity:
        Initial capacity hint (rounded up to a power of two).  The tree
        grows automatically when an update targets a larger index.
    block_size:
        Threshold ``b`` below which subtrees are flattened to blocks.
        ``0`` disables block nodes entirely (useful for ablations).
    minima_indexing:
        When ``False`` the suffix-minima early exit is disabled and queries
        always descend to the bottom of the tree (ablation switch; the
        answers are unaffected).
    """

    def __init__(self, capacity: int = 1, block_size: int = DEFAULT_BLOCK_SIZE,
                 minima_indexing: bool = True) -> None:
        if capacity < 1:
            raise InvalidNodeError(f"capacity must be >= 1, got {capacity}")
        if block_size < 0:
            raise InvalidNodeError(f"block_size must be >= 0, got {block_size}")
        self._capacity = _next_power_of_two(capacity)
        self._block_size = int(block_size)
        self._minima_indexing = bool(minima_indexing)
        self._root: Optional[_Node] = None
        self._density = 0

    # ------------------------------------------------------------------ #
    # SuffixMinima interface
    # ------------------------------------------------------------------ #
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def density(self) -> int:
        return self._density

    @property
    def block_size(self) -> int:
        """The block-size threshold ``b`` used by this tree."""
        return self._block_size

    def update(self, index: int, value: Value) -> None:
        self._check_index(index)
        if index >= self._capacity:
            self._grow(index + 1)
        current = self.get(index)
        if current == value:
            return
        if current != INF:
            self._root = self._remove(self._root, index)
            self._density -= 1
        if value != INF:
            self._insert(index, value)
            self._density += 1

    def get(self, index: int) -> Value:
        self._check_index(index)
        if index >= self._capacity:
            return INF
        node = self._root
        while node is not None:
            if node.block is not None:
                return node.block.get(index, INF)
            if node.pos == index:
                return node.min
            node = node.left if index <= node.mid else node.right
        return INF

    def suffix_min(self, index: int) -> Value:
        self._check_index(index)
        root = self._root
        if root is None or index > root.end:
            return INF
        best = INF
        minima_indexing = self._minima_indexing
        stack = [root]
        while stack:
            node = stack.pop()
            if node is None or index > node.end:
                continue
            block = node.block
            if block is not None:
                if node.pos >= index:
                    candidate = node.min
                else:
                    candidate = INF
                    for pos, value in block.items():
                        if pos >= index and value < candidate:
                            candidate = value
                if candidate < best:
                    best = candidate
                continue
            if minima_indexing:
                # The node's entry is the minimum of its whole subtree, so a
                # subtree that cannot beat the current best is skipped, and a
                # subtree whose indexed position lies in the suffix resolves
                # immediately (the minima-indexing early exit).
                if node.min >= best:
                    continue
                if node.pos >= index:
                    best = node.min
                    continue
            elif node.pos >= index and node.min < best:
                best = node.min
            stack.append(node.left)
            stack.append(node.right)
        return best

    def argleq(self, value: Value) -> Optional[int]:
        node = self._root
        best = -1
        while node is not None:
            if node.min > value:
                break
            block = node.block
            if block is not None:
                for pos, entry in block.items():
                    if entry <= value and pos > best:
                        best = pos
                break
            if node.pos > best:
                best = node.pos
            right = node.right
            if right is not None and right.min <= value:
                # Any qualifying index in the right subtree beats every index
                # in the left subtree, so the left subtree can be skipped.
                node = right
            else:
                node = node.left
        return best if best >= 0 else None

    def items(self) -> List[Tuple[int, Value]]:
        return sorted(self._iter_entries(self._root))

    # ------------------------------------------------------------------ #
    # Structural introspection (used by tests for Lemma 1)
    # ------------------------------------------------------------------ #
    @property
    def height(self) -> int:
        """Number of nodes on the longest root-to-leaf path (0 when empty)."""
        return self._height(self._root)

    @property
    def node_count(self) -> int:
        """Total number of allocated tree nodes (block nodes count as one)."""
        return self._count(self._root)

    # ------------------------------------------------------------------ #
    # Insertion
    # ------------------------------------------------------------------ #
    def _insert(self, pos: int, value: Value) -> None:
        if self._root is None:
            self._root = self._make_node(0, self._capacity - 1, pos, value)
            return
        node = self._root
        while True:
            if node.block is not None:
                node.block[pos] = value
                if _better(value, pos, node.min, node.pos):
                    node.pos, node.min = pos, value
                return
            if _better(value, pos, node.min, node.pos):
                node.pos, node.min, pos, value = pos, value, node.pos, node.min
            mid = node.mid
            if pos <= mid:
                if node.left is None:
                    node.left = self._make_node(node.start, mid, pos, value)
                    return
                node = node.left
            else:
                if node.right is None:
                    node.right = self._make_node(mid + 1, node.end, pos, value)
                    return
                node = node.right

    def _make_node(self, start: int, end: int, pos: int, value: Value) -> _Node:
        is_block = self._block_size > 0 and (end - start + 1) <= self._block_size
        return _Node(start, end, pos, value, is_block)

    # ------------------------------------------------------------------ #
    # Removal
    # ------------------------------------------------------------------ #
    def _remove(self, node: Optional[_Node], pos: int) -> Optional[_Node]:
        """Remove the entry at ``pos`` from the subtree rooted at ``node``.

        Returns the (possibly new) subtree root.  The caller guarantees the
        entry is present somewhere in the subtree.
        """
        if node is None:  # pragma: no cover - guarded by get() in update()
            return None
        if node.block is not None:
            node.block.pop(pos, None)
            if not node.block:
                return None
            node.refresh_block_best()
            return node
        if node.pos == pos:
            return self._pull_up(node)
        if pos <= node.mid:
            node.left = self._remove(node.left, pos)
        else:
            node.right = self._remove(node.right, pos)
        return node

    def _pull_up(self, node: _Node) -> Optional[_Node]:
        """Refill ``node`` with the best entry of its children, recursively."""
        left, right = node.left, node.right
        best_child = None
        if left is not None:
            best_child = left
        if right is not None and (
            best_child is None
            or _better(right.min, right.pos, best_child.min, best_child.pos)
        ):
            best_child = right
        if best_child is None:
            return None
        node.pos, node.min = best_child.pos, best_child.min
        replacement = self._remove(best_child, best_child.pos)
        if best_child is left:
            node.left = replacement
        else:
            node.right = replacement
        return node

    # ------------------------------------------------------------------ #
    # Growth
    # ------------------------------------------------------------------ #
    def _grow(self, minimum_capacity: int) -> None:
        new_capacity = self._capacity
        while new_capacity < minimum_capacity:
            new_capacity *= 2
        entries = list(self._iter_entries(self._root))
        self._capacity = new_capacity
        self._root = None
        self._density = 0
        for pos, value in entries:
            self._insert(pos, value)
            self._density += 1

    # ------------------------------------------------------------------ #
    # Traversal helpers
    # ------------------------------------------------------------------ #
    def _iter_entries(self, node: Optional[_Node]) -> Iterator[Tuple[int, Value]]:
        if node is None:
            return
        if node.block is not None:
            yield from node.block.items()
            return
        yield (node.pos, node.min)
        yield from self._iter_entries(node.left)
        yield from self._iter_entries(node.right)

    def _height(self, node: Optional[_Node]) -> int:
        if node is None:
            return 0
        return 1 + max(self._height(node.left), self._height(node.right))

    def _count(self, node: Optional[_Node]) -> int:
        if node is None:
            return 0
        return 1 + self._count(node.left) + self._count(node.right)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SparseSegmentTree(capacity={self._capacity}, "
            f"density={self._density}, height={self.height})"
        )
