"""Factory for partial-order backends.

The dynamic analyses in :mod:`repro.analyses` and the benchmark harness are
written against the abstract :class:`~repro.core.interface.PartialOrder`
interface; this factory turns a short backend name (as used throughout the
paper's tables) into a concrete instance.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.core.csst import CSST
from repro.core.flat import FlatCSST, FlatIncrementalCSST, FlatVectorClockOrder
from repro.core.graph_po import GraphOrder
from repro.core.incremental_csst import IncrementalCSST
from repro.core.interface import PartialOrder
from repro.core.st_partial_order import SegmentTreeOrder
from repro.core.vector_clock import VectorClockOrder
from repro.errors import ReproError

#: Mapping from backend name to implementation class.  The names mirror the
#: column headers of the paper's tables ("VCs", "STs", "CSSTs", "Graphs");
#: the ``-flat`` variants are the structure-of-arrays fast paths of
#: :mod:`repro.core.flat` and answer identically to their object-based
#: counterparts.
BACKENDS: Dict[str, Type[PartialOrder]] = {
    "csst": CSST,
    "csst-flat": FlatCSST,
    "incremental-csst": IncrementalCSST,
    "incremental-csst-flat": FlatIncrementalCSST,
    "st": SegmentTreeOrder,
    "vc": VectorClockOrder,
    "vc-flat": FlatVectorClockOrder,
    "graph": GraphOrder,
}

#: Backends usable in incremental-only analyses (paper Tables 1-6).
INCREMENTAL_BACKENDS = ("vc", "st", "incremental-csst", "vc-flat",
                        "incremental-csst-flat")

#: Backends usable in fully dynamic analyses (paper Table 7).
DYNAMIC_BACKENDS = ("graph", "csst", "csst-flat")

#: The flat (structure-of-arrays) fast-path backends.
FLAT_BACKENDS = ("csst-flat", "incremental-csst-flat", "vc-flat")

#: Flat backend corresponding to each object backend (and vice versa);
#: used by the parity tests and the perf harness to pair implementations.
FLAT_EQUIVALENTS: Dict[str, str] = {
    "csst": "csst-flat",
    "incremental-csst": "incremental-csst-flat",
    "vc": "vc-flat",
}


def make_partial_order(kind: str, num_chains: int, capacity_hint: int = 1024,
                       **kwargs) -> PartialOrder:
    """Instantiate a partial-order backend by name.

    Parameters
    ----------
    kind:
        One of ``"csst"``, ``"incremental-csst"``, ``"st"``, ``"vc"``,
        ``"graph"``.
    num_chains:
        Number of chains of the maintained chain DAG.
    capacity_hint:
        Expected number of events per chain.
    kwargs:
        Extra keyword arguments forwarded to the backend constructor (e.g.
        ``block_size`` for the CSST variants).

    Raises
    ------
    ReproError
        If ``kind`` does not name a known backend.
    """
    try:
        backend_cls = BACKENDS[kind]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise ReproError(f"unknown partial-order backend {kind!r}; known: {known}")
    return backend_cls(num_chains, capacity_hint, **kwargs)
