"""Factory for partial-order backends.

The dynamic analyses in :mod:`repro.analyses` and the benchmark harness are
written against the abstract :class:`~repro.core.interface.PartialOrder`
interface; this factory turns a short backend name (as used throughout the
paper's tables) into a concrete instance.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Type

from repro.core.csst import CSST
from repro.core.flat import FlatCSST, FlatIncrementalCSST, FlatVectorClockOrder
from repro.core.graph_po import GraphOrder
from repro.core.incremental_csst import IncrementalCSST
from repro.core.interface import PartialOrder
from repro.core.st_partial_order import SegmentTreeOrder
from repro.core.vector_clock import VectorClockOrder
from repro.errors import ReproError

#: Mapping from backend name to implementation class.  The names mirror the
#: column headers of the paper's tables ("VCs", "STs", "CSSTs", "Graphs");
#: the ``-flat`` variants are the structure-of-arrays fast paths of
#: :mod:`repro.core.flat` and answer identically to their object-based
#: counterparts.
BACKENDS: Dict[str, Type[PartialOrder]] = {
    "csst": CSST,
    "csst-flat": FlatCSST,
    "incremental-csst": IncrementalCSST,
    "incremental-csst-flat": FlatIncrementalCSST,
    "st": SegmentTreeOrder,
    "vc": VectorClockOrder,
    "vc-flat": FlatVectorClockOrder,
    "graph": GraphOrder,
}

#: Pseudo-backend name resolved to a concrete backend by a selection
#: policy (:mod:`repro.tune`) from the trace's shape features.  It is not
#: an entry of :data:`BACKENDS` -- there is no class behind it -- so every
#: front end that accepts it (``Analysis``, the sweep planner, the stream
#: engine) special-cases the name before reaching
#: :func:`make_partial_order`.
AUTO_BACKEND = "auto"

#: Backends usable in incremental-only analyses (paper Tables 1-6).
INCREMENTAL_BACKENDS = ("vc", "st", "incremental-csst", "vc-flat",
                        "incremental-csst-flat")

#: Backends usable in fully dynamic analyses (paper Table 7).
DYNAMIC_BACKENDS = ("graph", "csst", "csst-flat")

#: The flat (structure-of-arrays) fast-path backends.
FLAT_BACKENDS = ("csst-flat", "incremental-csst-flat", "vc-flat")

#: Flat backend corresponding to each object backend (and vice versa);
#: used by the parity tests and the perf harness to pair implementations.
FLAT_EQUIVALENTS: Dict[str, str] = {
    "csst": "csst-flat",
    "incremental-csst": "incremental-csst-flat",
    "vc": "vc-flat",
}

#: Plugin-registered backend names, partitioned by the analysis families
#: they can serve.  The built-in tuples above stay immutable (they are
#: imported by value all over the tree); consumers that must see plugins --
#: :meth:`repro.analyses.common.base.Analysis.applicable_backends`, the
#: :class:`repro.api.Registry` -- go through the accessor functions below.
_EXTRA_INCREMENTAL: List[str] = []
_EXTRA_DYNAMIC: List[str] = []

#: The names shipped by this library; plugins may not shadow them (the
#: analyses hard-code some as defaults, and family membership of a
#: built-in is fixed).
_BUILTIN_NAMES = frozenset(BACKENDS)


def incremental_backends() -> Tuple[str, ...]:
    """Backends able to serve the incremental-only analyses, including any
    registered via :func:`register_backend`."""
    return INCREMENTAL_BACKENDS + tuple(_EXTRA_INCREMENTAL)


def dynamic_backends() -> Tuple[str, ...]:
    """Backends able to serve the fully dynamic (deletion-based) analyses,
    including any registered via :func:`register_backend`."""
    return DYNAMIC_BACKENDS + tuple(_EXTRA_DYNAMIC)


def register_backend(name: str, backend_cls: Type[PartialOrder], *,
                     incremental: Optional[bool] = None,
                     dynamic: Optional[bool] = None) -> None:
    """Register an external :class:`PartialOrder` implementation.

    Makes ``name`` resolvable through :func:`make_partial_order` and adds it
    to the applicable-backend sets the analyses, the sweep planner, and the
    fuzzer consult.  ``incremental``/``dynamic`` control which analysis
    families may use it; when both are omitted they are inferred from the
    class's ``supports_deletion`` flag (deletion-capable backends serve the
    fully dynamic analyses, the rest serve the incremental ones).

    Re-registering a previously registered plugin name replaces it
    (mirroring :func:`repro.trace.generators.register_generator`), but the
    built-in names cannot be shadowed: analyses hard-code some of them as
    defaults and their family membership is part of the paper's protocol.
    """
    if not name or not isinstance(name, str):
        raise ReproError(f"backend name must be a non-empty string, "
                         f"got {name!r}")
    if name in _BUILTIN_NAMES:
        raise ReproError(f"cannot replace built-in backend {name!r}; "
                         f"register the variant under a new name")
    if not (isinstance(backend_cls, type)
            and issubclass(backend_cls, PartialOrder)):
        raise ReproError(f"backend {name!r} must be a PartialOrder subclass, "
                         f"got {backend_cls!r}")
    if incremental is None and dynamic is None:
        # ``supports_deletion`` is a plain class attribute on every backend.
        if bool(getattr(backend_cls, "supports_deletion", False)):
            dynamic = True
        else:
            incremental = True
    BACKENDS[name] = backend_cls
    for flag, extras in ((incremental, _EXTRA_INCREMENTAL),
                         (dynamic, _EXTRA_DYNAMIC)):
        if name in extras:
            extras.remove(name)
        if flag:
            extras.append(name)


def unregister_backend(name: str) -> None:
    """Remove a plugin-registered backend (no-op for unknown names).

    The built-in backends cannot be unregistered; attempting to is an
    error, because analyses hard-code them as defaults.
    """
    if name in _BUILTIN_NAMES:
        raise ReproError(f"cannot unregister built-in backend {name!r}")
    BACKENDS.pop(name, None)
    for extras in (_EXTRA_INCREMENTAL, _EXTRA_DYNAMIC):
        if name in extras:
            extras.remove(name)


def make_partial_order(kind: str, num_chains: int, capacity_hint: int = 1024,
                       **kwargs) -> PartialOrder:
    """Instantiate a partial-order backend by name.

    Parameters
    ----------
    kind:
        One of ``"csst"``, ``"incremental-csst"``, ``"st"``, ``"vc"``,
        ``"graph"``.
    num_chains:
        Number of chains of the maintained chain DAG.
    capacity_hint:
        Expected number of events per chain.
    kwargs:
        Extra keyword arguments forwarded to the backend constructor (e.g.
        ``block_size`` for the CSST variants).

    Raises
    ------
    ReproError
        If ``kind`` does not name a known backend.
    """
    try:
        backend_cls = BACKENDS[kind]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise ReproError(f"unknown partial-order backend {kind!r}; known: {known}")
    return backend_cls(num_chains, capacity_hint, **kwargs)
