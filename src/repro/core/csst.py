"""Fully dynamic Collective Sparse Segment Trees (Algorithm 2 of the paper).

The fully dynamic variant supports both edge insertions and deletions.  Each
suffix-minima array ``A[t1][t2]`` stores only the *direct* edges from chain
``t1`` to chain ``t2`` (the earliest target per source node, Lemma 3); the
full multiset of targets per source node lives in a small deletable min-heap
so that deleting the current minimum can expose the next one.  Reachability
queries perform a Bellman-Ford-style closure over the ``k`` chains, which
costs ``O(k^3 min(log n, d))`` per query but keeps updates at
``O(max(log δ, min(log n, d)))`` (Theorem 1).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core.heap import DeletableMinHeap
from repro.core.interface import INF, Node
from repro.core.matrix import ArrayFactory, ChainMatrixOrder
from repro.core.sparse_segment_tree import DEFAULT_BLOCK_SIZE, SparseSegmentTree
from repro.errors import InvalidEdgeError


class CSST(ChainMatrixOrder):
    """Fully dynamic CSST: insertions, deletions, and reachability queries.

    Parameters
    ----------
    num_chains:
        Number of chains ``k`` of the maintained chain DAG.
    capacity_hint:
        Expected number of events per chain; arrays grow beyond it
        automatically.
    block_size:
        Block-node threshold forwarded to the underlying
        :class:`~repro.core.sparse_segment_tree.SparseSegmentTree` arrays.
    array_factory:
        Override for the per-chain-pair suffix-minima arrays.  Used by the
        test-suite to cross-check CSSTs against the naive reference arrays;
        normal users never need it.
    """

    supports_deletion = True

    def __init__(self, num_chains: int, capacity_hint: int = 1024, *,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 array_factory: Optional[ArrayFactory] = None) -> None:
        if array_factory is None:
            def array_factory(capacity: int, _b: int = block_size) -> SparseSegmentTree:
                return SparseSegmentTree(capacity, block_size=_b)
        super().__init__(num_chains, capacity_hint, array_factory=array_factory)
        # edge heaps: (t1, t2) -> {j1: multiset of j2 targets}
        self._heaps: Dict[Tuple[int, int], Dict[int, DeletableMinHeap]] = {}

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def insert_edge(self, source: Node, target: Node) -> None:
        self._check_edge(source, target)
        (t1, j1), (t2, j2) = source, target
        heap = self._edge_heap(t1, t2, j1)
        if j2 < heap.min():
            self._array(t1, t2).update(j1, j2)
        heap.insert(j2)

    def delete_edge(self, source: Node, target: Node) -> None:
        self._check_edge(source, target)
        (t1, j1), (t2, j2) = source, target
        per_pair = self._heaps.get((t1, t2))
        heap = per_pair.get(j1) if per_pair else None
        if heap is None or j2 not in heap:
            raise InvalidEdgeError(f"edge {source} -> {target} is not present")
        if j2 == heap.min():
            heap.delete(j2)
            self._array(t1, t2).update(j1, heap.min())
        else:
            heap.delete(j2)

    # ------------------------------------------------------------------ #
    # Queries (Algorithm 2)
    # ------------------------------------------------------------------ #
    def successor(self, node: Node, chain: int) -> Optional[int]:
        self._check_node(node)
        t1, j1 = node
        if chain == t1:
            return j1
        closure = self._forward_closure(t1, j1)
        result = closure[chain]
        return None if result == INF else int(result)

    def predecessor(self, node: Node, chain: int) -> Optional[int]:
        self._check_node(node)
        t1, j1 = node
        if chain == t1:
            return j1
        closure = self._backward_closure(t1, j1)
        result = closure[chain]
        return None if result < 0 else int(result)

    # ------------------------------------------------------------------ #
    # Closure computations
    # ------------------------------------------------------------------ #
    def _forward_closure(self, t1: int, j1: int) -> Dict[int, float]:
        """Earliest node of every other chain reachable from ``(t1, j1)``."""
        chains = [t for t in range(self._num_chains) if t != t1]
        closure: Dict[int, float] = {}
        for chain in chains:
            closure[chain] = self._suffix_min(t1, chain, j1)
        changed = True
        while changed:
            changed = False
            for dest in chains:
                for via in chains:
                    if via == dest or closure[via] == INF:
                        continue
                    candidate = self._suffix_min(via, dest, int(closure[via]))
                    if candidate < closure[dest]:
                        closure[dest] = candidate
                        changed = True
        return closure

    def _backward_closure(self, t1: int, j1: int) -> Dict[int, float]:
        """Latest node of every other chain that reaches ``(t1, j1)``."""
        chains = [t for t in range(self._num_chains) if t != t1]
        closure: Dict[int, float] = {}
        for chain in chains:
            closure[chain] = self._argleq(chain, t1, j1)
        changed = True
        while changed:
            changed = False
            for dest in chains:
                for via in chains:
                    if via == dest or closure[via] < 0:
                        continue
                    candidate = self._argleq(dest, via, int(closure[via]))
                    if candidate > closure[dest]:
                        closure[dest] = candidate
                        changed = True
        return closure

    def _suffix_min(self, source_chain: int, target_chain: int, index: int) -> float:
        array = self._existing_array(source_chain, target_chain)
        if array is None:
            return INF
        return array.suffix_min(index)

    def _argleq(self, source_chain: int, target_chain: int, value: int) -> float:
        array = self._existing_array(source_chain, target_chain)
        if array is None:
            return -1.0
        result = array.argleq(value)
        return -1.0 if result is None else float(result)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _edge_heap(self, t1: int, t2: int, j1: int) -> DeletableMinHeap:
        per_pair = self._heaps.setdefault((t1, t2), {})
        heap = per_pair.get(j1)
        if heap is None:
            heap = DeletableMinHeap()
            per_pair[j1] = heap
        return heap

    @property
    def edge_count(self) -> int:
        """Number of cross-chain edges currently stored."""
        return sum(
            len(heap)
            for per_pair in self._heaps.values()
            for heap in per_pair.values()
        )
