"""Vector Clock representation of a partial order (the "VCs" baseline).

Vector Clocks [28] summarise the whole backward set of an event as an array
of ``k`` integers: ``clock(e)[t]`` is the largest index of chain ``t`` whose
node happens-before (or equals) ``e``.  Reachability queries are therefore a
single array lookup.  The price is paid on insertion: a new ordering
``e1 -> e2`` must be propagated to *every* successor of ``e2`` -- the whole
remaining suffix of ``e2``'s chain and, transitively, the events reachable
through previously inserted cross edges -- which costs ``O(n k)`` time in
the worst case.  This is exactly the bottleneck CSSTs remove for
non-streaming analyses (Section 1 of the paper).

The implementation keeps one clock **per event** (events are materialised
lazily, up to the largest index the analysis has touched in each chain, so
memory is ``O(n k)`` like the original), and includes the propagation
optimization described in Section 5.1 of the paper: propagation along a
chain stops as soon as joining a clock no longer changes it.

Edge deletion is not supported (there is no efficient way to "un-join"
vector clocks), matching the paper's characterisation of the structure.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from repro.core.interface import Node, PartialOrder


class VectorClockOrder(PartialOrder):
    """Partial order maintained with one vector clock per event."""

    supports_deletion = False

    def __init__(self, num_chains: int, capacity_hint: int = 1024) -> None:
        super().__init__(num_chains, capacity_hint)
        # One clock (list of k ints) per materialised event, per chain.
        self._clocks: List[List[List[int]]] = [[] for _ in range(num_chains)]
        # Cross-chain adjacency, needed to propagate joins transitively.
        self._out_edges: Dict[Node, List[Node]] = {}
        self._edge_count = 0

    # ------------------------------------------------------------------ #
    # Clock materialisation and access
    # ------------------------------------------------------------------ #
    def _ensure(self, chain: int, index: int) -> None:
        """Materialise clocks for chain ``chain`` up to ``index`` inclusive.

        Every fresh clock starts as a copy of its program-order predecessor
        (its backward set minus itself) with its own component bumped."""
        clocks = self._clocks[chain]
        while len(clocks) <= index:
            position = len(clocks)
            if position == 0:
                clock = [-1] * self._num_chains
            else:
                clock = list(clocks[position - 1])
            clock[chain] = position
            clocks.append(clock)

    def clock_of(self, node: Node) -> List[int]:
        """Return a copy of the vector clock of ``node``."""
        self._check_node(node)
        chain, index = node
        self._ensure(chain, index)
        return list(self._clocks[chain][index])

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #
    def insert_edge(self, source: Node, target: Node) -> None:
        self._check_edge(source, target)
        (t1, j1), (t2, j2) = source, target
        self._ensure(t1, j1)
        self._ensure(t2, j2)
        self._out_edges.setdefault(source, []).append(target)
        self._edge_count += 1
        if self._join(t2, j2, self._clocks[t1][j1]):
            self._propagate(t2, j2)

    def _join(self, chain: int, index: int, incoming: List[int]) -> bool:
        """Join ``incoming`` into the clock of ``(chain, index)``; return
        whether the clock changed (the "early stop" test)."""
        clock = self._clocks[chain][index]
        changed = False
        for component in range(self._num_chains):
            value = incoming[component]
            if value > clock[component]:
                clock[component] = value
                changed = True
        return changed

    def _propagate(self, chain: int, index: int) -> None:
        """Push the updated clock of ``(chain, index)`` to its successors:
        the remaining events of its chain (stopping early when a join makes
        no difference) and, transitively, the targets of cross edges."""
        worklist: List[Node] = [(chain, index)]
        out_edges = self._out_edges
        while worklist:
            t, j = worklist.pop()
            clock = self._clocks[t][j]
            chain_clocks = self._clocks[t]
            # Walk the chain suffix event by event until a join is a no-op.
            position = j + 1
            while position < len(chain_clocks):
                if not self._join(t, position, clock):
                    break
                for target in out_edges.get((t, position), ()):
                    if self._join(target[0], target[1], chain_clocks[position]):
                        worklist.append(target)
                position += 1
            for target in out_edges.get((t, j), ()):
                if self._join(target[0], target[1], clock):
                    worklist.append(target)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def reachable(self, source: Node, target: Node) -> bool:
        self._check_node(source)
        self._check_node(target)
        (t1, j1), (t2, j2) = source, target
        if t1 == t2:
            return j1 <= j2
        clocks = self._clocks[t2]
        if j2 < len(clocks):
            return clocks[j2][t1] >= j1
        # Events past the materialised frontier have no incoming cross edges
        # yet; they inherit the frontier clock.
        return bool(clocks) and clocks[-1][t1] >= j1

    def successor(self, node: Node, chain: int) -> Optional[int]:
        self._check_node(node)
        t1, j1 = node
        if chain == t1:
            return j1
        clocks = self._clocks[chain]
        # clock[j][t1] is non-decreasing in j, so binary search for the first
        # event of the chain whose backward set contains (t1, j1).
        low, high, answer = 0, len(clocks) - 1, None
        while low <= high:
            mid = (low + high) // 2
            if clocks[mid][t1] >= j1:
                answer = mid
                high = mid - 1
            else:
                low = mid + 1
        return answer

    def predecessor(self, node: Node, chain: int) -> Optional[int]:
        self._check_node(node)
        t1, j1 = node
        if chain == t1:
            return j1
        clocks = self._clocks[t1]
        if not clocks:
            return None
        index = min(j1, len(clocks) - 1)
        value = clocks[index][chain]
        return value if value >= 0 else None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def edge_count(self) -> int:
        """Number of ``insert_edge`` calls performed so far."""
        return self._edge_count

    @property
    def materialised_clocks(self) -> int:
        """Number of stored clocks (memory is this value times ``k``)."""
        return sum(len(per_chain) for per_chain in self._clocks)

    @property
    def total_entries(self) -> int:
        """Total number of stored integers across all clocks."""
        return self.materialised_clocks * self._num_chains
