"""Parallel sweep executor: fan (trace x analysis x backend) jobs out over
worker processes.

The executor is deliberately simple and deterministic:

* **Planning** is pure: :func:`plan_jobs` expands a suite into an ordered
  job list (suite order, then analysis, then backend in the canonical
  factory order), so the same request always yields the same jobs in the
  same positions.
* **Execution** ships only the :class:`SweepJob` (a few strings and ints)
  to each worker; the worker regenerates the trace from its spec and
  rebuilds the analysis by name, so nothing exotic crosses the process
  boundary and the runner works under both ``fork`` and ``spawn`` start
  methods.
* **Collection** walks the futures in submission order, so results come
  back in plan order no matter which worker finished first.  Per-job
  failures are captured as ``status="error"`` records (with the worker's
  traceback); a per-job timeout yields a ``status="timeout"`` record
  instead of sinking the whole sweep.

``jobs=1`` bypasses the process pool entirely and runs inline -- that is
both the debugging escape hatch and the reference a parallel run must match
record-for-record (modulo wall-clock times).
"""

from __future__ import annotations

import json
import os
import statistics
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.analyses.common.base import Analysis
from repro.core import AUTO_BACKEND
from repro.errors import ReproError
from repro.obs import metrics as obs_metrics
from repro.obs.context import merge_snapshot, new_span_id, new_trace_id
from repro.runner.corpus import (
    Suite,
    TraceCorpus,
    TraceSpec,
    get_suite,
    override_seed,
)
from repro.trace.generators import GENERATOR_REGISTRY
from repro.runner.results import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    SweepRecord,
    SweepResult,
)

@dataclass(frozen=True)
class SweepJob:
    """One unit of sweep work: run ``analysis`` on ``spec`` with ``backend``.

    Frozen and made of primitives plus a :class:`TraceSpec`, so it pickles
    cheaply to worker processes.
    """

    suite: str
    spec: TraceSpec
    analysis: str
    backend: str
    #: Selection-policy name for ``auto`` jobs (``None``: layer default).
    policy: Optional[str] = None
    #: Warm-start policy state for ``auto`` jobs, as a JSON *string* --
    #: a string (not a dict) keeps the job hashable and cheap to pickle.
    policy_state: Optional[str] = None
    #: Record the trace's feature bucket even for static jobs (oracle
    #: sweeps do this so static measurements can warm a bandit).
    tag_features: bool = False
    #: Distributed-tracing context, set by the collector when telemetry is
    #: on: the run-wide trace id plus this job's span id.  A job carrying
    #: a trace id tells a pool worker (which has no registry installed) to
    #: capture telemetry on a job-local registry and ship the snapshot
    #: back inside its record; ``None``/``None`` means tracing is off and
    #: the job runs exactly as before.
    trace_id: Optional[str] = None
    span_id: Optional[str] = None

    def describe(self) -> str:
        return f"{self.spec.trace_id} {self.analysis} [{self.backend}]"


def analyses_for_kind(kind: str) -> Tuple[str, ...]:
    """Analyses a workload kind feeds, as declared at generator registration
    (empty tuple for unknown kinds)."""
    entry = GENERATOR_REGISTRY.get(kind)
    return entry.analyses if entry is not None else ()


def plan_jobs(suite: Suite,
              analyses: Optional[Sequence[str]] = None,
              backends: Optional[Sequence[str]] = None,
              policy: Optional[str] = None,
              policy_state: Optional[str] = None,
              oracle: bool = False) -> List[SweepJob]:
    """Expand a suite into a deterministic, ordered job list.

    ``analyses`` restricts the fan-out to the named analyses (default: every
    analysis the trace kind feeds); ``backends`` restricts backends (default:
    every backend applicable to the analysis).  Requested backends that an
    analysis cannot use (e.g. ``vc`` for linearizability, which needs
    deletion support) are skipped for that analysis, mirroring how
    ``repro compare`` scopes its backend list per analysis -- but a request
    that leaves an explicitly named analysis with *zero* jobs anywhere in
    the suite (no kind feeds it, or no requested backend can serve it) is
    rejected with :class:`ReproError` rather than silently under-measuring.

    The pseudo-backend ``"auto"`` adds one policy-dispatched job per
    (trace, analysis) after that group's static jobs, carrying ``policy``
    / ``policy_state`` (a JSON string) so pool workers can rebuild the
    selection policy locally.  ``oracle`` additionally forces *every*
    applicable static backend into the plan -- the per-job optimum needs
    measuring -- and tags static jobs with their trace's feature bucket;
    it requires ``"auto"`` among the requested backends.
    """
    registry = Analysis.registered()
    if analyses is not None:
        unknown = sorted(set(analyses) - set(registry))
        if unknown:
            raise ReproError(f"unknown analyses in sweep request: {unknown}")
    want_auto = backends is not None and AUTO_BACKEND in backends
    if backends is not None:
        from repro.core import BACKENDS

        unknown = sorted(set(backends) - set(BACKENDS) - {AUTO_BACKEND})
        if unknown:
            raise ReproError(f"unknown backends in sweep request: {unknown}")
    if oracle and not want_auto:
        raise ReproError(
            "oracle mode validates the 'auto' pseudo-backend; include "
            "'auto' in the requested backends")
    jobs: List[SweepJob] = []
    for spec in suite:
        kind_analyses = analyses_for_kind(spec.kind)
        if not kind_analyses:
            raise ReproError(
                f"no analyses declared for trace kind {spec.kind!r}; pass "
                f"analyses=(...) when calling register_generator")
        for analysis_name in kind_analyses:
            if analyses is not None and analysis_name not in analyses:
                continue
            applicable = registry[analysis_name].applicable_backends()
            selected = [backend for backend in applicable
                        if backends is None or backend in backends
                        or oracle]
            for backend in selected:
                jobs.append(SweepJob(suite=suite.name, spec=spec,
                                     analysis=analysis_name, backend=backend,
                                     tag_features=oracle))
            if want_auto:
                jobs.append(SweepJob(suite=suite.name, spec=spec,
                                     analysis=analysis_name,
                                     backend=AUTO_BACKEND,
                                     policy=policy,
                                     policy_state=policy_state))
    if suite.specs and not jobs:
        raise ReproError(
            "sweep plan is empty: the requested analyses/backends do not "
            "combine into any runnable job for this suite (e.g. none of the "
            "requested backends is applicable to the requested analyses)")
    if analyses is not None:
        unused = sorted(set(analyses) - {job.analysis for job in jobs})
        if unused:
            raise ReproError(
                f"requested analyses produce no job in suite "
                f"{suite.name!r}: {unused} (no trace kind feeds them, or "
                f"the requested backends cannot serve them)")
    return jobs


#: Per-process trace cache for pool workers: jobs sharing a spec (several
#: backends per trace) reuse the materialized trace instead of regenerating
#: it.  Lives and dies with the worker process, so nothing leaks across
#: sweeps in the parent.
_WORKER_CORPUS = TraceCorpus()


def _job_policy(job: SweepJob):
    """Rebuild the selection policy an ``auto`` job describes (worker side)."""
    from repro.tune import make_policy

    state = json.loads(job.policy_state) if job.policy_state else None
    name = job.policy
    if name is None and isinstance(state, dict):
        name = state.get("policy")
    policy = make_policy(name)
    if state is not None:
        policy.load_state(state)
    return policy


def _job_span_labels(job: SweepJob) -> dict:
    """Labels of a job's ``sweep_job`` span (same set inline and pooled,
    so merged span trees keep one shape regardless of worker count)."""
    return dict(trace=job.trace_id, span=job.span_id,
                workload=job.spec.trace_id, analysis=job.analysis,
                backend=job.backend)


def execute_job(job: SweepJob, corpus: Optional[TraceCorpus] = None,
                repeats: int = 1, policy=None,
                capture_telemetry: bool = False) -> SweepRecord:
    """Run one job to completion, capturing any analysis error.

    ``repeats`` re-runs the analysis that many times over the same trace
    (fresh analysis instance per repeat) and reports min/median times, so
    sweep numbers stop being single-shot noise.  Findings and operation
    counts come from the first repeat (they are deterministic per job).

    For ``auto`` jobs ``policy`` is the live policy object of an inline
    run; pool workers leave it ``None`` and rebuild the policy from the
    job's ``policy``/``policy_state`` fields instead.

    A job carrying a ``trace_id`` runs under a ``sweep_job`` span.  In the
    collector's own process that span simply nests under the open sweep
    span; with ``capture_telemetry=True`` (how the collector submits
    traced jobs to pool workers) the job instead runs on a fresh job-local
    registry whose snapshot -- the job's exact telemetry delta, since the
    registry was born empty -- comes back on the record's ``telemetry``
    field for the collector to merge.  The flag must be explicit: under
    the ``fork`` start method a worker *inherits* a copy of the
    collector's active registry, so "no registry installed" cannot mark
    the worker side.

    This is the worker-side entry point; it must stay a module-level
    function so it pickles by reference under ``spawn``.
    """
    if capture_telemetry and job.trace_id is not None:
        worker_registry = obs_metrics.MetricsRegistry()
        with obs_metrics.use_registry(worker_registry):
            record = _execute_spanned(job, corpus, repeats, policy,
                                      worker_registry)
        return replace(record, telemetry=worker_registry.snapshot())
    return _execute_spanned(job, corpus, repeats, policy, obs_metrics.ACTIVE)


def _execute_spanned(job: SweepJob, corpus, repeats, policy,
                     registry) -> SweepRecord:
    """Run a job under its ``sweep_job`` span (when traced), folding any
    failure into an error record *after* the span has seen the exception
    -- that is what stamps ``status="error"``/``error_type`` on it."""
    try:
        if registry is not None and job.trace_id is not None:
            with registry.span("sweep_job", **_job_span_labels(job)):
                return _run_job(job, corpus, repeats, policy)
        return _run_job(job, corpus, repeats, policy)
    except Exception:
        return SweepRecord(status=STATUS_ERROR, error=traceback.format_exc(),
                           **_job_base(job))


def _job_base(job: SweepJob) -> dict:
    spec = job.spec
    return dict(suite=job.suite, trace_id=spec.trace_id, kind=spec.kind,
                threads=spec.threads, events=spec.events, seed=spec.seed,
                analysis=job.analysis, backend=job.backend)


def _run_job(job: SweepJob, corpus: Optional[TraceCorpus],
             repeats: int, policy) -> SweepRecord:
    """The actual work of one job; raises on failure (see callers)."""
    spec = job.spec
    is_auto = job.backend == AUTO_BACKEND
    trace = (corpus if corpus is not None else _WORKER_CORPUS).get(spec)
    analysis_cls = Analysis.by_name(job.analysis)
    if is_auto and policy is None:
        policy = _job_policy(job)
    result = None
    times = []
    for _ in range(max(1, repeats)):
        if is_auto:
            outcome = analysis_cls(job.backend, policy=policy).run(trace)
        else:
            outcome = analysis_cls(job.backend).run(trace)
        times.append(outcome.elapsed_seconds)
        if result is None:
            result = outcome
    if is_auto:
        extras = dict(
            backend_selected=result.details.get("backend_selected", ""),
            policy=result.details.get("policy"),
            feature_bucket=result.details.get("feature_bucket"))
    else:
        extras = dict(backend_selected=job.backend)
        if job.tag_features:
            from repro.tune import extract_features

            extras["feature_bucket"] = extract_features(trace).bucket()
    return SweepRecord(status=STATUS_OK,
                       elapsed_seconds=min(times),
                       elapsed_median_seconds=statistics.median(times),
                       repeats=len(times),
                       finding_count=result.finding_count,
                       insert_count=result.insert_count,
                       delete_count=result.delete_count,
                       query_count=result.query_count,
                       **extras, **_job_base(job))


def run_jobs(jobs: Sequence[SweepJob], *, workers: int = 1,
             timeout_seconds: Optional[float] = None,
             suite_name: Optional[str] = None,
             repeats: int = 1,
             policy=None) -> SweepResult:
    """Execute ``jobs`` and return records in job order.

    ``workers=1`` runs inline (sharing one trace corpus cache across jobs);
    ``workers>1`` fans out over a :class:`ProcessPoolExecutor`.
    ``timeout_seconds`` bounds how long the collector waits for each job's
    result; a job that exceeds it is recorded as ``status="timeout"``.
    Serial runs apply no timeout (there is no safe way to interrupt an
    in-process computation).  ``repeats`` re-runs each job's analysis that
    many times and reports min/median (see :func:`execute_job`); note that
    ``timeout_seconds`` bounds the *whole* job -- all of its repeats --
    so callers combining both should scale the budget accordingly.

    ``policy`` is the live selection policy of a tuned sweep.  The
    collector feeds every measured runtime that carries a feature bucket
    back into it (:meth:`BackendPolicy.observe`), so inline runs learn
    job-to-job and pool runs accumulate all observations into the state
    the caller saves afterwards.  (Pool workers themselves rebuild the
    policy from the job's warm-start state; live mid-sweep updates do not
    cross the process boundary.)
    """
    if workers < 1:
        raise ReproError(f"workers must be >= 1, got {workers}")
    if repeats < 1:
        raise ReproError(f"repeats must be >= 1, got {repeats}")
    name = suite_name if suite_name is not None else (
        jobs[0].suite if jobs else "empty")
    result = SweepResult(suite=name)
    if not jobs:
        return result

    # Distributed tracing: with a registry active the collector mints one
    # run-wide trace id plus a span id per job and ships them on the jobs.
    # Inline jobs then nest real ``sweep_job`` child spans under the open
    # ``sweep`` span; pool workers capture job-local snapshots that come
    # back on their records and are merged under the same sweep span
    # below -- so both modes produce equivalent merged snapshots.  Queue
    # wait is the collector's submit-to-result latency for each future.
    registry = obs_metrics.ACTIVE
    if registry is not None:
        trace_id = new_trace_id()
        jobs = [replace(job, trace_id=trace_id, span_id=new_span_id())
                for job in jobs]
        sweep_scope = registry.span("sweep", suite=name, trace=trace_id)
    else:
        sweep_scope = nullcontext()

    if workers == 1:
        corpus = TraceCorpus()
        with sweep_scope:
            for job in jobs:
                record = execute_job(job, corpus, repeats, policy=policy)
                if policy is not None:
                    _feed_policy(policy, record)
                result.records.append(record)
        if registry is not None:
            for record in result.records:
                _observe_record(registry, record)
        return result

    pool = ProcessPoolExecutor(max_workers=min(workers, len(jobs)))
    timed_out = False
    try:
        with sweep_scope as sweep_span:
            futures = [pool.submit(execute_job, job, None, repeats, None,
                                   registry is not None)
                       for job in jobs]
            for job, future in zip(jobs, futures):
                wait_start = (time.perf_counter() if registry is not None
                              else 0.0)
                try:
                    record = future.result(timeout=timeout_seconds)
                except FutureTimeout:
                    # cancel() succeeds only for jobs that never left the
                    # queue -- label those honestly: they never ran.
                    if future.cancel():
                        timed_out = True
                        record = _failure_record(
                            job, STATUS_TIMEOUT,
                            f"job was still queued when its "
                            f"{timeout_seconds}s collection window expired")
                        _note_timeout(registry, sweep_span, job)
                    elif future.done():
                        # Finished between the timeout firing and the
                        # cancel attempt: keep the real result instead of
                        # mislabeling a completed job as a timeout.
                        try:
                            record = future.result(timeout=0)
                        except Exception:  # e.g. BrokenProcessPool
                            record = _failure_record(job, STATUS_ERROR,
                                                     traceback.format_exc())
                    else:
                        timed_out = True
                        record = _failure_record(
                            job, STATUS_TIMEOUT,
                            f"job did not complete within "
                            f"{timeout_seconds}s")
                        _note_timeout(registry, sweep_span, job)
                except Exception:  # worker died (e.g. BrokenProcessPool)
                    record = _failure_record(job, STATUS_ERROR,
                                             traceback.format_exc())
                if registry is not None:
                    registry.histogram("sweep_queue_wait_seconds").observe(
                        time.perf_counter() - wait_start)
                    if record.telemetry is not None:
                        # Fold the worker's delta into the live registry and
                        # drop the payload -- records stay transport-free.
                        merge_snapshot(registry, record.telemetry, sweep_span)
                        record = replace(record, telemetry=None)
                    _observe_record(registry, record)
                if policy is not None:
                    _feed_policy(policy, record)
                result.records.append(record)
    finally:
        if timed_out:
            # A timed-out job is still running in its worker; a plain
            # shutdown would block on it (possibly forever for a hung job).
            # Every future has been collected or cancelled by now, so no
            # pending result is lost by killing the stragglers.
            processes = getattr(pool, "_processes", None)
            if processes:
                for process in processes.values():
                    process.terminate()
                pool.shutdown(wait=True)
            else:  # pragma: no cover - private attr gone on this CPython
                # Cannot kill the stragglers; at least do not block on them.
                pool.shutdown(wait=False, cancel_futures=True)
        else:
            pool.shutdown(wait=True)
    return result


def run_suite(suite_name: str, *, workers: int = 1,
              analyses: Optional[Sequence[str]] = None,
              backends: Optional[Sequence[str]] = None,
              timeout_seconds: Optional[float] = None,
              repeats: int = 1,
              seed: Optional[int] = None,
              policy: Optional[str] = None,
              policy_state_path: Optional[str] = None,
              oracle: bool = False) -> SweepResult:
    """Plan and execute a full sweep of a registered suite.

    ``seed`` overrides the seed pinned in every suite spec (see
    :func:`repro.runner.corpus.override_seed`); the effective seed lands in
    each :class:`~repro.runner.results.SweepRecord` (and its CSV/JSON
    exports) either way, so a sweep is always reproducible from its output.

    With ``"auto"`` among ``backends``, ``policy``/``policy_state_path``
    select and warm-start the backend-selection policy; every measured
    runtime is fed back into it and, when a state path is given, the
    accumulated state is saved back to it after the sweep (sweeps
    warm-start later watch sessions that way).  ``oracle=True`` runs all
    applicable static backends alongside ``auto`` and attaches the regret
    report (:meth:`~repro.runner.results.SweepResult.oracle_report`).
    """
    suite = get_suite(suite_name)
    if seed is not None:
        suite = override_seed(suite, seed)
    want_auto = backends is not None and AUTO_BACKEND in backends
    policy_obj = None
    shipped_state = None
    if want_auto:
        from repro.tune import make_policy, save_policy_state

        policy_obj = make_policy(policy, state_path=policy_state_path)
        shipped_state = json.dumps(policy_obj.state_dict())
    jobs = plan_jobs(suite, analyses=analyses, backends=backends,
                     policy=policy_obj.name if policy_obj else None,
                     policy_state=shipped_state, oracle=oracle)
    result = run_jobs(jobs, workers=workers, timeout_seconds=timeout_seconds,
                      suite_name=suite.name, repeats=repeats,
                      policy=policy_obj)
    if oracle:
        result.oracle = result.oracle_report()
        registry = obs_metrics.ACTIVE
        if registry is not None and result.oracle is not None:
            registry.gauge("tune_regret_seconds").set(
                result.oracle["regret_seconds"])
    if policy_obj is not None and policy_state_path is not None:
        save_policy_state(policy_obj, policy_state_path)
    return result


def _feed_policy(policy, record: SweepRecord) -> None:
    """Feed one measured runtime back into the selection policy.

    Any successful record carrying a feature bucket counts: ``auto`` jobs
    teach the policy about its own picks, and oracle-tagged static jobs
    contribute ground truth for every arm -- which is what makes a
    warm-started bandit converge after a single oracle sweep.
    """
    if not record.ok or not record.feature_bucket:
        return
    backend = record.backend_selected or record.backend
    policy.observe(record.analysis, record.feature_bucket, backend,
                   record.elapsed_seconds)


def _note_timeout(registry, sweep_span, job: SweepJob) -> None:
    """Leave a telemetry trail for a job the collector abandoned.

    The worker never reported back, so the collector stands in for it:
    a ``sweep_job_timeout_total`` tick plus a synthetic zero-duration
    error-status span grafted under the sweep span (anchored to the
    collector's clock at the moment of abandonment), so timeouts are
    visible in timelines instead of silently missing lanes.
    """
    if registry is None:
        return
    registry.counter("sweep_job_timeout_total").inc()
    document = {
        "name": "sweep_job",
        "labels": _job_span_labels(job),
        "start_ns": 0,
        "duration_ns": 0,
        "status": "error",
        "error_type": "timeout",
        "pid": os.getpid(),
        "wall_start_ns": time.time_ns(),
    }
    if sweep_span is not None:
        sweep_span.children.append(document)
    else:  # pragma: no cover - sweeps always trace under an open span
        registry.record_span_document(document)


def _observe_record(registry: "obs_metrics.MetricsRegistry",
                    record: SweepRecord) -> None:
    registry.counter("sweep_jobs_total", status=record.status).inc()
    if record.status == STATUS_OK:
        registry.histogram("sweep_job_seconds", analysis=record.analysis,
                           backend=record.backend) \
            .observe(record.elapsed_seconds)


def _failure_record(job: SweepJob, status: str, message: str) -> SweepRecord:
    spec = job.spec
    return SweepRecord(suite=job.suite, trace_id=spec.trace_id, kind=spec.kind,
                       threads=spec.threads, events=spec.events,
                       seed=spec.seed, analysis=job.analysis,
                       backend=job.backend, status=status, error=message)
