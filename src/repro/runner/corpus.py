"""Trace-corpus registry: named suites of synthetic workloads.

A *suite* is a declarative grid of trace specifications -- workload kind x
thread count x per-thread events x seed -- that the sweep runner fans out
over.  Specs are tiny, hashable and picklable, so they can be shipped to
worker processes which materialize the actual trace locally (regenerating a
deterministic trace in the worker is far cheaper than pickling hundreds of
thousands of events across the process boundary).

:class:`TraceCorpus` adds lazy materialization with caching on top: a trace
is generated the first time it is requested and reused afterwards, which
matters when several (analysis, backend) jobs share one trace in a serial
(``--jobs 1``) sweep.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ReproError
from repro.trace.generators import build_trace, get_generator
from repro.trace.trace import Trace


@dataclass(frozen=True)
class TraceSpec:
    """A fully deterministic recipe for one synthetic trace.

    ``params`` holds extra generator keyword arguments as a sorted tuple of
    ``(key, value)`` pairs so the spec stays hashable and picklable.
    """

    kind: str
    threads: int
    events: int
    seed: int = 0
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        get_generator(self.kind)  # fail fast on unknown kinds

    @property
    def trace_id(self) -> str:
        """Stable identifier used as the trace name and in sweep records."""
        identifier = f"{self.kind}-t{self.threads}-n{self.events}-s{self.seed}"
        if self.params:
            identifier += "-" + "-".join(f"{k}={v}" for k, v in self.params)
        return identifier

    def build(self) -> Trace:
        """Materialize the trace (deterministic given the spec)."""
        return build_trace(self.kind, num_threads=self.threads,
                           events=self.events, seed=self.seed,
                           name=self.trace_id, **dict(self.params))


@dataclass(frozen=True)
class Suite:
    """A named, ordered collection of trace specs."""

    name: str
    description: str
    specs: Tuple[TraceSpec, ...]

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)


def override_seed(suite: Suite, seed: int) -> Suite:
    """Rebind every spec of ``suite`` to ``seed`` (the ``sweep --seed``
    path).

    Suites pin seeds internally for reproducibility; the override swaps in
    one caller-chosen seed across the board so the same grid can be
    re-measured on fresh randomness.  Specs that collapse onto each other
    once the seed is uniform (seed-diversity suites repeat one shape per
    seed) are deduplicated, mirroring the ``full`` suite's registration-time
    dedupe -- duplicate jobs would shadow each other in speedup
    aggregation.
    """
    specs = tuple(dict.fromkeys(
        replace(spec, seed=seed) for spec in suite.specs))
    return Suite(name=suite.name, description=suite.description, specs=specs)


def grid(kinds: Iterable[str], threads: Iterable[int], events: Iterable[int],
         seeds: Iterable[int] = (0,), **params) -> Tuple[TraceSpec, ...]:
    """Cartesian grid of specs: kind x threads x events x seed."""
    extra = tuple(sorted(params.items()))
    return tuple(
        TraceSpec(kind=k, threads=t, events=n, seed=s, params=extra)
        for k, t, n, s in itertools.product(kinds, threads, events, seeds)
    )


#: Named suites addressable from ``python -m repro sweep --suite NAME``.
SUITES: Dict[str, Suite] = {}


def register_suite(suite: Suite) -> Suite:
    """Register ``suite`` under its name (overwrites a previous entry)."""
    SUITES[suite.name] = suite
    return suite


def get_suite(name: str) -> Suite:
    """Look up a registered suite, raising :class:`ReproError` if unknown."""
    try:
        return SUITES[name]
    except KeyError:
        known = ", ".join(sorted(SUITES))
        raise ReproError(f"unknown suite {name!r}; known: {known}") from None


register_suite(Suite(
    name="smoke",
    description="Seconds-scale sanity sweep touching every analysis once.",
    specs=(
        grid(["racy"], [3], [40])
        + grid(["deadlock"], [3], [36])
        + grid(["memory"], [3], [36])
        + grid(["tso"], [2], [30])
        + grid(["c11"], [3], [36])
        + grid(["history"], [2], [8])
    ),
))

register_suite(Suite(
    name="quick",
    description="Every workload kind at two thread counts, one seed.",
    specs=(
        grid(["racy", "deadlock", "memory", "tso", "c11"], [2, 4], [120])
        + grid(["history"], [2, 3], [16])
    ),
))

register_suite(Suite(
    name="seeds",
    description="Seed diversity: each kind at a fixed shape, four seeds.",
    specs=(
        grid(["racy", "memory", "c11"], [4], [100], seeds=[0, 1, 2, 3])
        + grid(["history"], [3], [12], seeds=[0, 1, 2, 3])
    ),
))

register_suite(Suite(
    name="scaling",
    description="Thread/event scaling grid for the incremental analyses.",
    specs=(
        grid(["racy"], [2, 4, 8], [100, 200])
        + grid(["tso"], [2, 4, 8], [100, 200])
    ),
))

register_suite(Suite(
    name="full",
    description="Union of 'quick', 'seeds' and 'scaling'.",
    # dict.fromkeys dedupes overlapping grid points while preserving order
    # (a spec appearing twice would run duplicate jobs and the later record
    # would shadow the earlier one in speedup aggregation).
    specs=tuple(dict.fromkeys(SUITES["quick"].specs + SUITES["seeds"].specs
                              + SUITES["scaling"].specs)),
))


@dataclass
class TraceCorpus:
    """Lazy, cached materialization of trace specs.

    The cache is per-corpus (not global) so tests and long-lived processes
    can control its lifetime; ``clear()`` drops every cached trace.
    """

    _cache: Dict[TraceSpec, Trace] = field(default_factory=dict)

    def get(self, spec: TraceSpec) -> Trace:
        """Return the trace for ``spec``, materializing it on first use."""
        trace = self._cache.get(spec)
        if trace is None:
            trace = spec.build()
            self._cache[spec] = trace
        return trace

    def materialize(self, specs: Sequence[TraceSpec]) -> List[Trace]:
        """Materialize every spec (in order), filling the cache."""
        return [self.get(spec) for spec in specs]

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        self._cache.clear()
