"""Sweep runner: corpus registry, parallel executor and result aggregation.

This is the orchestration layer on top of ``repro.analyses``: it declares
named suites of synthetic workloads (:mod:`repro.runner.corpus`), fans
(trace x analysis x backend) jobs out over worker processes
(:mod:`repro.runner.executor`) and aggregates the per-job records into
exportable results (:mod:`repro.runner.results`).  The ``python -m repro
sweep`` subcommand is a thin wrapper over :func:`run_suite`.
"""

from repro.runner.corpus import (
    SUITES,
    Suite,
    TraceCorpus,
    TraceSpec,
    get_suite,
    grid,
    register_suite,
)
from repro.runner.executor import (
    SweepJob,
    analyses_for_kind,
    execute_job,
    plan_jobs,
    run_jobs,
    run_suite,
)
from repro.runner.results import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_TIMEOUT,
    SweepRecord,
    SweepResult,
)

__all__ = [
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "SUITES",
    "Suite",
    "SweepJob",
    "SweepRecord",
    "SweepResult",
    "TraceCorpus",
    "TraceSpec",
    "analyses_for_kind",
    "execute_job",
    "get_suite",
    "grid",
    "plan_jobs",
    "register_suite",
    "run_jobs",
    "run_suite",
]
