"""Structured sweep results: per-job records, aggregation, and export.

A sweep produces one :class:`SweepRecord` per (trace, analysis, backend)
job.  Records are plain, deterministic data -- everything except
``elapsed_seconds`` is identical between a serial and a parallel run of the
same sweep, which is what the regression tests pin down.

Aggregation follows the paper's methodology: per (trace, analysis) group the
baseline backend's time is divided by each backend's time, and the per-group
ratios are combined with a geometric mean (the Figure 10 quantity).
Export reuses the benchmark layer: CSV via
:func:`repro.bench.export.rows_to_csv`, text tables via
:func:`repro.bench.harness.render_table`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Tuple

from repro.bench.export import Destination, rows_to_csv
from repro.bench.harness import geometric_mean, render_table

#: Job status values.
STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_TIMEOUT = "timeout"

#: Column order for CSV export (matches ``SweepRecord`` field names).
CSV_COLUMNS: Tuple[str, ...] = (
    "suite", "trace_id", "kind", "threads", "events", "seed",
    "analysis", "backend", "status", "elapsed_seconds",
    "elapsed_median_seconds", "repeats", "finding_count",
    "insert_count", "delete_count", "query_count", "error",
    "backend_selected", "policy", "feature_bucket",
)


@dataclass(frozen=True)
class SweepRecord:
    """Outcome of one sweep job.

    For failed or timed-out jobs the counters are zero and ``error`` carries
    the diagnostic (a traceback for errors, a message for timeouts).

    With ``--repeat N`` the job's analysis runs N times over the same trace:
    ``elapsed_seconds`` is the *minimum* (the conventional low-noise
    estimate), ``elapsed_median_seconds`` the median, and ``repeats``
    records N.  Single-shot sweeps carry ``repeats=1`` with the median equal
    to the only measurement.
    """

    suite: str
    trace_id: str
    kind: str
    threads: int
    events: int
    seed: int
    analysis: str
    backend: str
    status: str = STATUS_OK
    elapsed_seconds: float = 0.0
    elapsed_median_seconds: float = 0.0
    repeats: int = 1
    finding_count: int = 0
    insert_count: int = 0
    delete_count: int = 0
    query_count: int = 0
    error: Optional[str] = None
    #: The concrete backend that actually ran.  For ``auto`` jobs this is
    #: the policy's pick; for static jobs it equals ``backend``.
    backend_selected: str = ""
    #: Selection policy name for ``auto`` jobs (``None`` for static ones).
    policy: Optional[str] = None
    #: Coarse trace-shape bucket (see ``TraceFeatures.bucket``); recorded
    #: for ``auto`` jobs and, in oracle sweeps, for static jobs too so
    #: their measurements can warm a bandit.
    feature_bucket: Optional[str] = None
    #: Worker-local telemetry snapshot (metric deltas + finished span
    #: trees) for jobs that ran in a pool worker with tracing on; ``None``
    #: otherwise.  Collector-side transport only: the collector merges it
    #: and drops it, and it is excluded from ``to_dict``/CSV/JSON exports
    #: so record documents keep their pinned shape (``compare=False``
    #: keeps record equality about outcomes, not transport payloads).
    telemetry: Optional[Dict[str, object]] = field(default=None,
                                                   compare=False)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def display_backend(self) -> str:
        """The backend cell for tables: ``auto:<pick>`` for resolved
        ``auto`` jobs, the plain backend name otherwise."""
        if self.backend_selected and self.backend_selected != self.backend:
            return f"{self.backend}:{self.backend_selected}"
        return self.backend

    @property
    def operation_count(self) -> int:
        """Total partial-order operations issued by the job."""
        return self.insert_count + self.delete_count + self.query_count

    def to_dict(self) -> Dict[str, object]:
        return {spec.name: getattr(self, spec.name)
                for spec in fields(self) if spec.name != "telemetry"}

    def to_row(self) -> List[object]:
        data = self.to_dict()
        return [data[column] for column in CSV_COLUMNS]


@dataclass
class SweepResult:
    """All records of one sweep plus aggregation and export helpers."""

    suite: str
    records: List[SweepRecord] = field(default_factory=list)
    #: Oracle-validation report (``repro sweep --oracle``): the ``auto``
    #: policy's total regret vs the per-job best static backend.  ``None``
    #: unless the sweep ran in oracle mode (see :meth:`oracle_report`).
    oracle: Optional[Dict[str, object]] = None

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def ok_records(self) -> List[SweepRecord]:
        return [record for record in self.records if record.ok]

    def failures(self) -> List[SweepRecord]:
        return [record for record in self.records if not record.ok]

    def backends(self) -> List[str]:
        """Backends present in the sweep, in first-seen order."""
        seen: Dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.backend, None)
        return list(seen)

    def _groups(self) -> Dict[Tuple[str, str], Dict[str, SweepRecord]]:
        """Successful records grouped by (trace_id, analysis), per backend."""
        groups: Dict[Tuple[str, str], Dict[str, SweepRecord]] = {}
        for record in self.ok_records():
            groups.setdefault((record.trace_id, record.analysis), {})[
                record.backend] = record
        return groups

    def speedups(self, baseline: Optional[str] = None) -> Dict[str, float]:
        """Geometric-mean speedup of each backend over a baseline backend.

        A speedup above 1.0 means the backend is faster than the baseline.
        With ``baseline=None`` each (trace, analysis) group picks its own
        reference: ``"vc"`` when present (the incremental analyses),
        otherwise ``"graph"`` (the fully dynamic ones) -- the two
        conventional baselines of the paper's tables.
        """
        ratios: Dict[str, List[float]] = {}
        for per_backend in self._groups().values():
            reference = baseline
            if reference is None:
                reference = "vc" if "vc" in per_backend else "graph"
            reference_record = per_backend.get(reference)
            if reference_record is None or reference_record.elapsed_seconds <= 0:
                continue
            for backend, record in per_backend.items():
                if backend == reference or record.elapsed_seconds <= 0:
                    continue
                ratios.setdefault(backend, []).append(
                    reference_record.elapsed_seconds / record.elapsed_seconds)
        return {backend: geometric_mean(values)
                for backend, values in sorted(ratios.items())}

    def totals(self) -> Dict[str, float]:
        """Total successful-job seconds per backend."""
        totals: Dict[str, float] = {}
        for record in self.ok_records():
            totals[record.backend] = (
                totals.get(record.backend, 0.0) + record.elapsed_seconds)
        return totals

    def oracle_report(self) -> Optional[Dict[str, object]]:
        """Regret of the ``auto`` picks vs the per-job best static backend.

        Considers every (trace, analysis) group holding an ``auto``
        record plus at least one static record; the static minimum is the
        per-job oracle.  Returns ``None`` when no group qualifies.
        ``regret_ratio`` is the fraction by which the policy's total
        runtime exceeds the oracle's (the acceptance gate of oracle
        sweeps); ``optimal_picks`` counts jobs where the policy chose the
        oracle's backend outright.
        """
        per_job: List[Dict[str, object]] = []
        auto_total = 0.0
        best_total = 0.0
        optimal = 0
        for (trace_id, analysis), per_backend in sorted(self._groups().items()):
            auto_record = per_backend.get("auto")
            statics = {backend: record
                       for backend, record in per_backend.items()
                       if backend != "auto"}
            if auto_record is None or not statics:
                continue
            best_backend = min(statics,
                               key=lambda b: statics[b].elapsed_seconds)
            best_seconds = statics[best_backend].elapsed_seconds
            auto_seconds = auto_record.elapsed_seconds
            auto_total += auto_seconds
            best_total += best_seconds
            if auto_record.backend_selected == best_backend:
                optimal += 1
            per_job.append({
                "trace_id": trace_id,
                "analysis": analysis,
                "selected": auto_record.backend_selected,
                "best_backend": best_backend,
                "auto_seconds": auto_seconds,
                "best_seconds": best_seconds,
                "regret_seconds": auto_seconds - best_seconds,
            })
        if not per_job:
            return None
        return {
            "jobs": len(per_job),
            "optimal_picks": optimal,
            "auto_seconds": auto_total,
            "best_seconds": best_total,
            "regret_seconds": auto_total - best_total,
            "regret_ratio": (auto_total - best_total) / best_total
            if best_total > 0 else 0.0,
            "per_job": per_job,
        }

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def to_document(self, baseline: Optional[str] = None) -> Dict[str, object]:
        """The JSON-able document: sweep metadata, per-job records,
        aggregates.  This is the dict :meth:`to_json` serializes and what
        :class:`repro.api.results.SweepRunResult` re-exports, so the two
        layers can never drift apart.  The ``oracle`` key appears only for
        oracle-mode sweeps, keeping pre-tuning documents byte-identical."""
        document = {
            "suite": self.suite,
            "jobs": len(self.records),
            "failures": len(self.failures()),
            "records": [record.to_dict() for record in self.records],
            "speedups": self.speedups(baseline),
        }
        if self.oracle is not None:
            document["oracle"] = self.oracle
        return document

    def to_json(self, baseline: Optional[str] = None, indent: int = 2) -> str:
        """JSON document: sweep metadata, per-job records, aggregates."""
        return json.dumps(self.to_document(baseline), indent=indent)

    def to_csv(self, destination: Destination) -> None:
        """One CSV row per job, in deterministic job order."""
        rows_to_csv(CSV_COLUMNS,
                    [record.to_row() for record in self.records],
                    destination)

    def to_table(self, baseline: Optional[str] = None) -> str:
        """Alias of :meth:`format_table` conforming to the
        ``to_json``/``to_table`` export protocol of
        :mod:`repro.api.results`."""
        return self.format_table(baseline)

    def format_table(self, baseline: Optional[str] = None) -> str:
        """Human-readable report: per-job table plus speedup summary."""
        headers = ["trace", "analysis", "backend", "status", "seconds",
                   "findings", "ops"]
        rows = [
            [record.trace_id, record.analysis, record.display_backend,
             record.status,
             f"{record.elapsed_seconds:.3f}", str(record.finding_count),
             str(record.operation_count)]
            for record in self.records
        ]
        report = render_table(f"sweep[{self.suite}]: {len(self.records)} jobs",
                              headers, rows)
        speedups = self.speedups(baseline)
        if speedups:
            label = baseline if baseline is not None else "per-analysis baseline"
            lines = [f"  {backend}: {value:.2f}x"
                     for backend, value in speedups.items()]
            report += ("\n" + f"geomean speedup vs {label}:\n"
                       + "\n".join(lines))
        if self.oracle is not None:
            oracle = self.oracle
            report += (
                "\noracle: {optimal}/{jobs} optimal picks, "
                "regret {regret:.3f}s ({ratio:+.1%} vs per-job best)".format(
                    optimal=oracle["optimal_picks"], jobs=oracle["jobs"],
                    regret=oracle["regret_seconds"],
                    ratio=oracle["regret_ratio"]))
        failures = self.failures()
        if failures:
            report += f"\n{len(failures)} job(s) failed:"
            for record in failures:
                message = (record.error or "").strip().splitlines()
                report += (f"\n  {record.trace_id} {record.analysis} "
                           f"[{record.backend}]: {record.status}"
                           + (f" -- {message[-1]}" if message else ""))
        return report
