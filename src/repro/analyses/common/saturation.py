"""Reads-from saturation (the "saturation" rules of Section 1.1).

Several predictive analyses maintain, besides a partial order ``P``, a
reads-from assignment ``rf`` mapping every read to the write it observes.
For ``P`` and ``rf`` to be mutually consistent, additional orderings are
*forced*:

* ``rf(r) -> r`` -- a read is ordered after its writer;
* for any other write ``w'`` to the same variable:

  - if ``w' ->* r`` already, then ``w'`` must also precede the writer:
    insert ``w' -> rf(r)``;
  - if ``rf(r) ->* w'`` already, then the read must precede the competing
    write: insert ``r -> w'``.

Applying these rules until a fixed point is the saturation step used by
consistency checking, race prediction, and the memory-bug analyses (see the
citations in Section 1.1 of the paper).  Because the inserted orderings land
between arbitrary events of the trace, this is the archetypal *non-streaming*
workload CSSTs were designed for.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.interface import PartialOrder
from repro.errors import AnalysisError
from repro.trace.event import Event
from repro.analyses.common.hb import insert_ordering


class CycleDetected(AnalysisError):
    """Raised when saturation would create a cycle.

    A cycle means the current reads-from assignment is infeasible: there is
    no interleaving in which every read observes its assigned writer.
    """

    def __init__(self, source: Event, target: Event) -> None:
        super().__init__(f"ordering {source} -> {target} closes a cycle")
        self.source = source
        self.target = target


class SaturationEngine:
    """Applies the reads-from saturation rules over a partial order.

    Parameters
    ----------
    order:
        The partial-order backend holding ``P``.
    writes_by_variable:
        All write events, grouped by variable; used to locate competing
        writes for each saturated read.
    track_insertions:
        When ``True``, every edge inserted by the engine is recorded so a
        caller can undo it later (only meaningful for fully dynamic
        backends; used by the search-style analyses that explore reads-from
        choices and backtrack).
    """

    def __init__(self, order: PartialOrder,
                 writes_by_variable: Mapping[object, List[Event]],
                 track_insertions: bool = False) -> None:
        self._order = order
        self._writes_by_variable = writes_by_variable
        self._track = track_insertions
        self._inserted: List[Tuple[Event, Event]] = []

    # ------------------------------------------------------------------ #
    # Edge insertion with cycle detection
    # ------------------------------------------------------------------ #
    def add_ordering(self, source: Event, target: Event) -> bool:
        """Insert ``source -> target``; raise :class:`CycleDetected` if the
        reverse ordering already holds.  Returns ``True`` if a new cross-
        chain edge was inserted."""
        if source.node == target.node:
            return False
        if source.thread == target.thread:
            if source.index > target.index:
                raise CycleDetected(source, target)
            return False
        if self._order.reachable(target.node, source.node):
            raise CycleDetected(source, target)
        if insert_ordering(self._order, source.node, target.node):
            if self._track:
                self._inserted.append((source, target))
            return True
        return False

    def undo(self) -> int:
        """Delete every tracked edge (most recent first) and return how many
        were removed.  Requires a backend with deletion support."""
        removed = 0
        while self._inserted:
            source, target = self._inserted.pop()
            self._order.delete_edge(source.node, target.node)
            removed += 1
        return removed

    @property
    def inserted_edges(self) -> List[Tuple[Event, Event]]:
        """Edges inserted so far (only populated when tracking is enabled)."""
        return list(self._inserted)

    # ------------------------------------------------------------------ #
    # Saturation
    # ------------------------------------------------------------------ #
    def saturate(self, reads_from: Mapping[Event, Optional[Event]],
                 max_rounds: int = 16) -> int:
        """Apply the saturation rules until a fixed point (or ``max_rounds``).

        Saturation proceeds one memory location at a time (all reads of a
        variable are handled before moving to the next), as location-centric
        predictive analyses do.  The orderings this derives therefore land
        between arbitrary events of the trace rather than following the
        trace order -- the non-streaming insertion pattern the paper's
        motivating example describes.

        Returns the number of orderings inserted.  Raises
        :class:`CycleDetected` if the assignment is infeasible.
        """
        by_location = sorted(
            (item for item in reads_from.items() if item[1] is not None),
            key=lambda item: (str(item[0].variable), item[0].thread, item[0].index),
        )
        inserted = 0
        for _ in range(max_rounds):
            changed = 0
            for read, write in by_location:
                changed += self._saturate_read(read, write)
            inserted += changed
            if changed == 0:
                return inserted
        return inserted

    def _saturate_read(self, read: Event, write: Event) -> int:
        inserted = 0
        if self.add_ordering(write, read):
            inserted += 1
        for competitor in self._writes_by_variable.get(read.variable, ()):
            if competitor is write or not competitor.is_write:
                continue
            if competitor.node == write.node:
                continue
            # Competing write already before the read: force it before the writer.
            if self._reaches(competitor, read) and not self._reaches(competitor, write):
                if self.add_ordering(competitor, write):
                    inserted += 1
            # Writer already before the competing write: force the read before it.
            if self._reaches(write, competitor) and not self._reaches(read, competitor):
                if competitor is not write and self.add_ordering(read, competitor):
                    inserted += 1
        return inserted

    def _reaches(self, source: Event, target: Event) -> bool:
        if source.thread == target.thread:
            return source.index <= target.index
        return self._order.reachable(source.node, target.node)
