"""Machinery shared by the dynamic analyses (backbone construction,
saturation, result containers)."""

from repro.analyses.common.base import Analysis, AnalysisResult, BackendSpec
from repro.analyses.common.hb import (
    build_sync_order,
    conflicting_pairs,
    events_between,
    insert_ordering,
    lock_graph,
)
from repro.analyses.common.saturation import CycleDetected, SaturationEngine

__all__ = [
    "Analysis",
    "AnalysisResult",
    "BackendSpec",
    "CycleDetected",
    "SaturationEngine",
    "build_sync_order",
    "conflicting_pairs",
    "events_between",
    "insert_ordering",
    "lock_graph",
]
