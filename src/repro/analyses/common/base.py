"""Shared scaffolding for the dynamic analyses.

Every analysis follows the same shape: it consumes a :class:`~repro.trace.Trace`,
maintains a partial order over the trace's events through the generic
:class:`~repro.core.PartialOrder` interface, and produces a report.  This
module provides the pieces they all share: backend construction, operation
counting, and the result container.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Type, Union

from repro.core import (
    AUTO_BACKEND,
    InstrumentedOrder,
    PartialOrder,
    dynamic_backends,
    incremental_backends,
    make_partial_order,
)
from repro.errors import AnalysisError
from repro.obs import metrics as obs_metrics
from repro.trace.trace import Trace

#: Either a backend name understood by :func:`repro.core.make_partial_order`
#: or an already constructed backend instance.
BackendSpec = Union[str, PartialOrder]


@dataclass
class AnalysisResult:
    """Outcome of running a dynamic analysis over one trace.

    Attributes
    ----------
    analysis:
        Short name of the analysis (e.g. ``"race-prediction"``).
    trace_name / trace_events / trace_threads:
        Identification of the analysed trace.
    backend:
        Name of the partial-order backend used.
    findings:
        Analysis-specific findings (races, deadlocks, violations, ...).
    elapsed_seconds:
        Wall-clock time of the analysis.
    insert_count / delete_count / query_count:
        Number of partial-order operations issued.
    details:
        Free-form additional data (per-analysis metrics).
    """

    analysis: str
    trace_name: str
    trace_events: int
    trace_threads: int
    backend: str
    findings: List[Any] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    insert_count: int = 0
    delete_count: int = 0
    query_count: int = 0
    details: Dict[str, Any] = field(default_factory=dict)

    @property
    def finding_count(self) -> int:
        """Number of findings reported by the analysis."""
        return len(self.findings)

    @property
    def operation_count(self) -> int:
        """Total number of partial-order operations issued."""
        return self.insert_count + self.delete_count + self.query_count

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.analysis}[{self.backend}] on {self.trace_name}: "
            f"{self.finding_count} findings, {self.operation_count} PO ops, "
            f"{self.elapsed_seconds:.3f}s"
        )


#: Analyses registered by short name (populated by ``Analysis`` subclasses).
_ANALYSIS_REGISTRY: Dict[str, Type["Analysis"]] = {}


class Analysis:
    """Base class for the dynamic analyses.

    Subclasses implement :meth:`_run` and set :attr:`name` and
    :attr:`requires_deletion`.  Every concrete subclass that declares its own
    :attr:`name` is automatically registered, so front ends (the CLI, the
    sweep runner) can construct analyses from a plain string -- which also
    keeps sweep jobs pickle-safe: worker processes ship the *name* across the
    process boundary and rebuild the analysis locally instead of pickling an
    instance holding a live backend.
    """

    #: Short identifier used in results and reports.
    name: str = "analysis"

    #: Whether the analysis needs decremental updates (only the
    #: linearizability root-causing analysis does).
    requires_deletion: bool = False

    #: Whether the analysis implements a genuinely incremental
    #: :meth:`feed` (findings surface while events arrive).  Analyses that
    #: leave this ``False`` still work on a stream through the default
    #: micro-batch fallback: :meth:`flush` re-runs the batch analysis over
    #: the events buffered so far, which yields the identical findings at
    #: every flush point at the cost of recomputation.
    streaming_native: bool = False

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        name = cls.__dict__.get("name")
        if name and cls.__module__.partition(".")[0] == "repro":
            _ANALYSIS_REGISTRY[name] = cls

    # ------------------------------------------------------------------ #
    # Registry
    # ------------------------------------------------------------------ #
    @staticmethod
    def register(cls: Type["Analysis"]) -> Type["Analysis"]:
        """Explicitly register an analysis class defined outside ``repro``.

        Library analyses register automatically via ``__init_subclass__``;
        external extensions opt in through this hook (usable as a class
        decorator) so that ad-hoc subclasses in tests or scripts do not
        silently join the CLI's analysis list.
        """
        if not getattr(cls, "name", None):
            raise AnalysisError("analysis class needs a non-empty 'name'")
        _ANALYSIS_REGISTRY[cls.name] = cls
        return cls

    @staticmethod
    def registered() -> Dict[str, Type["Analysis"]]:
        """Snapshot of the analysis registry (name -> class)."""
        import repro.analyses  # noqa: F401  (imports every subclass)

        return dict(_ANALYSIS_REGISTRY)

    @staticmethod
    def by_name(name: str) -> Type["Analysis"]:
        """Look up a registered analysis class by its short name."""
        registry = Analysis.registered()
        try:
            return registry[name]
        except KeyError:
            known = ", ".join(sorted(registry))
            raise AnalysisError(f"unknown analysis {name!r}; known: {known}") from None

    @classmethod
    def default_backend(cls) -> str:
        """The backend this analysis runs on when none is requested."""
        return "csst" if cls.requires_deletion else "incremental-csst"

    @classmethod
    def applicable_backends(cls) -> Sequence[str]:
        """Backend names able to serve this analysis's operation mix.

        Resolved through the live factory accessors (not the frozen
        built-in tuples) so backends registered at runtime -- e.g. through
        :meth:`repro.api.Registry.register_backend` -- join every
        analysis's backend set at once.
        """
        return (dynamic_backends() if cls.requires_deletion
                else incremental_backends())

    def __init__(self, backend: BackendSpec = "incremental-csst",
                 policy=None, **backend_kwargs) -> None:
        self._backend_spec = backend
        self._backend_kwargs = backend_kwargs
        self._stream_view = None
        #: Selection policy used when ``backend`` is the ``auto``
        #: pseudo-backend: a policy name, a ``BackendPolicy``, or ``None``
        #: for the tuning layer's default.  Ignored for concrete backends.
        self._policy = policy
        self._resolved_backend: Optional[str] = None
        self._selection_features = None

    # ------------------------------------------------------------------ #
    # Public entry point
    # ------------------------------------------------------------------ #
    def run(self, trace: Trace) -> AnalysisResult:
        """Run the analysis over ``trace`` and return its result."""
        order = self._make_order(trace)
        result = AnalysisResult(
            analysis=self.name,
            trace_name=trace.name,
            trace_events=len(trace),
            trace_threads=trace.num_threads,
            backend=self._backend_name(),
        )
        if self._resolved_backend is not None:
            result.details["backend_selected"] = self._resolved_backend
            result.details["policy"] = getattr(self._policy, "name",
                                               str(self._policy))
            if self._selection_features is not None:
                result.details["feature_bucket"] = \
                    self._selection_features.bucket()
        start = time.perf_counter()
        self._run(trace, order, result)
        result.elapsed_seconds = time.perf_counter() - start
        result.insert_count = order.insert_count
        result.delete_count = order.delete_count
        result.query_count = order.query_count
        registry = obs_metrics.ACTIVE
        if registry is not None:
            registry.histogram("analysis_run_seconds", analysis=self.name,
                               backend=result.backend) \
                .observe(result.elapsed_seconds)
            registry.counter("analysis_findings_total", analysis=self.name) \
                .inc(result.finding_count)
            for op, count in (("insert", result.insert_count),
                              ("delete", result.delete_count),
                              ("query", result.query_count)):
                if count:
                    registry.counter("po_ops_total", op=op,
                                     analysis=self.name).inc(count)
        return result

    # ------------------------------------------------------------------ #
    # Online (streaming) protocol
    # ------------------------------------------------------------------ #
    # The streaming engine drives every analysis through three calls:
    # ``begin(view)`` once at attach time, ``feed(event)`` per event, and
    # ``flush()`` whenever complete results are needed (window boundaries
    # and end of stream).  The default implementation is the *batch
    # fallback*: ``feed`` does nothing (the view buffers the events) and
    # ``flush`` re-runs the batch analysis over the current snapshot, so
    # every existing analysis works on a stream unchanged.  Analyses that
    # can compute incrementally override ``feed`` (and usually ``flush``)
    # and set ``streaming_native = True``.

    def begin(self, view) -> None:
        """Attach to a growing trace.

        ``view`` is either a live :class:`~repro.trace.trace.Trace` or any
        object with a ``snapshot() -> Trace`` method (the streaming engine
        passes its window view).  Must be called before :meth:`feed` /
        :meth:`flush`.
        """
        self._stream_view = view

    def feed(self, event) -> Sequence[Any]:
        """Consume one event appended to the stream.

        Returns the findings newly discovered by this event (always empty
        for the batch fallback, which only produces findings at flush
        time).
        """
        return ()

    def flush(self) -> AnalysisResult:
        """Produce the complete result over the events streamed so far.

        May be called repeatedly (the engine flushes at every window
        boundary); each call covers everything currently in the view.
        """
        view = getattr(self, "_stream_view", None)
        if view is None:
            raise AnalysisError(
                f"analysis {self.name!r}: flush() called before begin()")
        trace = view.snapshot() if hasattr(view, "snapshot") else view
        return self.run(trace)

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #
    def _run(self, trace: Trace, order: InstrumentedOrder,
             result: AnalysisResult) -> None:
        raise NotImplementedError

    def _num_chains(self, trace: Trace) -> int:
        """Number of chains the partial order needs (default: one per thread).

        Thread ids are used as chain ids directly, so the count is sized by
        the *largest* id, not the number of distinct threads -- a trace with
        a sparse thread-id set (e.g. a stream window in which some thread
        was silent, or an externally recorded trace numbering threads with
        gaps) must still map every event to a valid chain.  Known
        limitation: backends that allocate per chain (vector clocks
        especially) pay O(max id) for sparse id sets, so traces recorded
        with raw OS tids should be renumbered densely at recording time; a
        dense id remapping layer inside the analyses would lift this.

        Analyses that need more chains (e.g. the TSO checker uses two per
        thread: program order plus store buffer) override this hook.
        """
        threads = trace.threads
        return max(threads[-1] + 1, 1) if threads else 1

    # ------------------------------------------------------------------ #
    # Backend handling
    # ------------------------------------------------------------------ #
    def _make_order(self, trace: Trace) -> InstrumentedOrder:
        capacity = max(trace.max_thread_length, 1)
        if isinstance(self._backend_spec, PartialOrder):
            backend = self._backend_spec
        else:
            spec = self._backend_spec
            if str(spec) == AUTO_BACKEND:
                spec = self._resolve_auto(trace)
            backend = make_partial_order(
                spec,
                num_chains=self._num_chains(trace),
                capacity_hint=capacity,
                **self._backend_kwargs,
            )
        if self.requires_deletion and not backend.supports_deletion:
            raise AnalysisError(
                f"analysis {self.name!r} needs decremental updates, but backend "
                f"{type(backend).__name__} does not support deletion"
            )
        return InstrumentedOrder(backend)

    def _resolve_auto(self, trace: Trace) -> str:
        """Resolve the ``auto`` pseudo-backend for ``trace``.

        Extracts the trace's shape features and asks the selection
        policy (:mod:`repro.tune`, imported lazily to keep the analyses
        importable without the tuning layer in the loop) to pick among
        :meth:`applicable_backends`.  The pick and its features are kept
        so :meth:`run` can record them in the result details.
        """
        from repro import tune

        policy = self._policy
        if policy is None or isinstance(policy, str):
            policy = self._policy = tune.make_policy(policy)
        features = tune.extract_features(trace)
        chosen = tune.choose_backend(type(self), features, policy)
        self._resolved_backend = chosen
        self._selection_features = features
        return chosen

    def _backend_name(self) -> str:
        if isinstance(self._backend_spec, PartialOrder):
            return type(self._backend_spec).__name__
        if self._resolved_backend is not None \
                and str(self._backend_spec) == AUTO_BACKEND:
            return self._resolved_backend
        return str(self._backend_spec)
