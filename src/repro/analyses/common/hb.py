"""Happens-before construction helpers shared by the analyses.

Most predictive analyses start from a *sync order*: program order plus
release-to-acquire edges over each lock (in the observed order) plus
fork/join edges.  This module builds that backbone into any partial-order
backend, and exposes small helpers for the orderings analyses add on top.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.interface import Node, PartialOrder
from repro.trace.event import Event, EventKind
from repro.trace.trace import Trace


def insert_ordering(order: PartialOrder, source: Node, target: Node) -> bool:
    """Insert ``source -> target`` unless it is already implied.

    Intra-chain orderings are implicit program order and never inserted.
    Returns ``True`` iff a new edge was actually inserted.
    """
    if source[0] == target[0]:
        return source[1] <= target[1]
    if order.reachable(source, target):
        return False
    order.insert_edge(source, target)
    return True


def build_sync_order(trace: Trace, order: PartialOrder,
                     include_locks: bool = True,
                     include_fork_join: bool = True,
                     include_reads_from: bool = False) -> int:
    """Populate ``order`` with the trace's synchronisation backbone.

    Parameters
    ----------
    trace:
        The analysed trace.
    order:
        Any partial-order backend; edges are inserted through the generic
        interface.
    include_locks:
        Add release(l) -> acquire(l) edges between consecutive critical
        sections of the same lock, in observed order.
    include_fork_join:
        Add fork -> first-child-event and last-child-event -> join edges.
    include_reads_from:
        Add write -> read edges of the observed reads-from map (used by the
        consistency-style analyses).

    Returns
    -------
    int
        Number of cross-chain edges inserted.
    """
    inserted = 0
    if include_locks:
        last_release: Dict[object, Event] = {}
        for event in trace:
            if event.kind is EventKind.ACQUIRE:
                previous = last_release.get(event.variable)
                if previous is not None and previous.thread != event.thread:
                    if insert_ordering(order, previous.node, event.node):
                        inserted += 1
            elif event.kind is EventKind.RELEASE:
                last_release[event.variable] = event
    if include_fork_join:
        for source, target in trace.fork_join_edges():
            if source[0] != target[0] and insert_ordering(order, source, target):
                inserted += 1
    if include_reads_from:
        for read, write in trace.reads_from().items():
            if write is not None and write.thread != read.thread:
                if insert_ordering(order, write.node, read.node):
                    inserted += 1
    return inserted


def conflicting_pairs(trace: Trace, max_pairs: Optional[int] = None,
                      same_variable_window: Optional[int] = None
                      ) -> List[Tuple[Event, Event]]:
    """Enumerate conflicting access pairs (same variable, different threads,
    at least one write), in trace order.

    ``same_variable_window`` optionally restricts pairs to accesses that are
    at most that many positions apart in the per-variable access list, which
    is how practical race detectors bound their candidate set.
    """
    pairs: List[Tuple[Event, Event]] = []
    for accesses in trace.accesses_by_variable().values():
        for i, first in enumerate(accesses):
            upper = len(accesses)
            if same_variable_window is not None:
                upper = min(upper, i + 1 + same_variable_window)
            for second in accesses[i + 1 : upper]:
                if first.conflicts_with(second):
                    pairs.append((first, second))
                    if max_pairs is not None and len(pairs) >= max_pairs:
                        return pairs
    return pairs


def events_between(trace: Trace, thread: int, start_index: int,
                   end_index: int) -> Iterable[Event]:
    """Events of ``thread`` with index in ``[start_index, end_index]``."""
    events = trace.thread_events(thread)
    start = max(start_index, 0)
    end = min(end_index, len(events) - 1)
    for index in range(start, end + 1):
        yield events[index]


def lock_graph(trace: Trace) -> Dict[object, Dict[object, List[Tuple[Event, Event]]]]:
    """Build the lock-acquisition graph used by deadlock prediction.

    ``graph[l1][l2]`` lists pairs ``(outer_acquire, inner_acquire)`` where a
    thread acquired ``l2`` while holding ``l1``.
    """
    graph: Dict[object, Dict[object, List[Tuple[Event, Event]]]] = defaultdict(
        lambda: defaultdict(list)
    )
    held: Dict[int, List[Event]] = defaultdict(list)
    for event in trace:
        if event.kind is EventKind.ACQUIRE:
            for outer in held[event.thread]:
                graph[outer.variable][event.variable].append((outer, event))
            held[event.thread].append(event)
        elif event.kind is EventKind.RELEASE:
            held[event.thread] = [
                acquire for acquire in held[event.thread]
                if acquire.variable != event.variable
            ]
    return graph
