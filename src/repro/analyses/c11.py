"""C11 data-race detection (Table 6 of the paper).

C11Tester [23] constructs an execution of a C/C++11 program one event at a
time; while doing so it maintains the happens-before relation (program order
plus synchronizes-with edges created by release/acquire atomics) and flags a
data race whenever two conflicting *plain* accesses are unordered.

The important characteristic for the data-structure comparison is that the
workload is essentially *streaming*: new orderings almost always target the
event currently being processed, and most of them require no propagation at
all.  That is why the paper finds plain Vector Clocks competitive here (and
ahead of tree-based structures on several benchmarks) -- the reproduction
keeps that behaviour observable by processing events strictly in trace
order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.analyses.common.base import Analysis, AnalysisResult
from repro.analyses.common.hb import insert_ordering
from repro.core.growable import GrowableOrder
from repro.core.instrumented import InstrumentedOrder
from repro.core.interface import PartialOrder
from repro.errors import AnalysisError
from repro.trace.columns import ACQUIRE_CODE, RELEASE_CODE
from repro.trace.event import Event, EventKind
from repro.trace.trace import Trace


@dataclass(frozen=True)
class C11Race:
    """A data race between two plain (non-atomic) accesses."""

    first: Event
    second: Event

    @property
    def variable(self):
        """The shared variable both accesses touch."""
        return self.first.variable

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"C11 race on {self.variable}: {self.first} || {self.second}"


@dataclass
class _DetectorState:
    """The per-run state of the detector, shared by the batch and online
    paths so both process events through the identical per-event step."""

    #: Per atomic variable: the last release-write (or RMW) event, which
    #: heads the release sequence subsequent acquire reads synchronise with.
    last_release: Dict[object, Event] = field(default_factory=dict)
    #: Per plain variable and thread: last access events, used for race checks.
    last_accesses: Dict[object, Dict[int, List[Event]]] = field(
        default_factory=dict)
    reported: set = field(default_factory=set)
    sw_edges: int = 0

    @property
    def plain_accesses(self) -> int:
        return sum(len(events) for per_thread in self.last_accesses.values()
                   for events in per_thread.values())


class C11RaceAnalysis(Analysis):
    """C11Tester-style streaming race detection over atomics histories.

    Because the detector processes events strictly in trace order and only
    ever orders *into* the current event, it is genuinely incremental: the
    online protocol (``begin``/``feed``/``flush``) maintains the same state
    the batch run builds and reports each race the moment its second access
    arrives.  Batch and online runs over the same event sequence produce
    identical findings.

    Parameters
    ----------
    backend:
        Partial-order backend name or instance.
    report_all:
        When ``False`` (default) at most one race per variable pair of
        threads is reported, mirroring the deduplication real detectors do.
    """

    name = "c11-races"
    streaming_native = True

    def __init__(self, backend="vc", report_all: bool = False,
                 **backend_kwargs) -> None:
        super().__init__(backend, **backend_kwargs)
        self._report_all = report_all
        self._online = None

    # ------------------------------------------------------------------ #
    def _run(self, trace: Trace, order: InstrumentedOrder,
             result: AnalysisResult) -> None:
        # The batch loop dispatches on the trace's columnar view so events
        # the detector ignores (forks, joins, alloc/free, begin/end) are
        # skipped on int codes without materialising their Event objects.
        # The dispatch mirrors _step exactly -- the online feed() path still
        # goes through _step, and both produce identical findings.
        state = _DetectorState()
        findings = result.findings
        columns = trace.columns()
        kinds = columns.kinds
        atomic_flags = columns.atomic_flags
        access_flags = columns.access_flags
        events = columns.events
        last_release = state.last_release
        handle_atomic = self._handle_atomic
        handle_lock = self._handle_lock
        check_races = self._check_races
        sw_edges = 0
        for position in range(len(columns)):
            if atomic_flags[position]:
                sw_edges += handle_atomic(order, last_release, events[position])
            elif access_flags[position]:
                check_races(order, state, events[position], findings)
            else:
                code = kinds[position]
                if code == ACQUIRE_CODE or code == RELEASE_CODE:
                    sw_edges += handle_lock(order, last_release, events[position])
        state.sw_edges += sw_edges
        result.details["sw_edges"] = state.sw_edges
        result.details["plain_accesses"] = state.plain_accesses

    def _step(self, order: InstrumentedOrder, state: _DetectorState,
              event: Event, findings: List[C11Race]) -> None:
        """Process one event (the shared batch/online kernel)."""
        if event.atomic:
            state.sw_edges += self._handle_atomic(order, state.last_release,
                                                 event)
        elif event.is_access:
            self._check_races(order, state, event, findings)
        elif event.kind in (EventKind.ACQUIRE, EventKind.RELEASE):
            # Lock operations behave like acquire/release atomics on the
            # lock object.
            state.sw_edges += self._handle_lock(order, state.last_release,
                                                event)

    # ------------------------------------------------------------------ #
    # Online protocol (genuinely incremental)
    # ------------------------------------------------------------------ #
    def begin(self, view) -> None:
        super().begin(view)
        if isinstance(self._backend_spec, PartialOrder):
            raise AnalysisError(
                "online c11-races needs a named backend (the growing stream "
                "constructs and resizes the backend itself)")
        # Online state is built lazily on the first feed(): an attachment
        # that is begun but never fed (e.g. under a bounded window, where
        # the engine drives this analysis through the micro-batch fallback)
        # must keep the base-class flush semantics and not pay for an
        # unused backend.
        self._online = None

    def _begin_online(self) -> dict:
        order = GrowableOrder(str(self._backend_spec), num_chains=1,
                              capacity_hint=256, **self._backend_kwargs)
        return {
            "order": InstrumentedOrder(order),
            "state": _DetectorState(),
            "findings": [],
            "events": 0,
            "threads": set(),
            "started": time.perf_counter(),
        }

    def feed(self, event: Event) -> Sequence[C11Race]:
        if self._stream_view is None:
            raise AnalysisError(
                f"analysis {self.name!r}: feed() called before begin()")
        if self._online is None:
            self._online = self._begin_online()
        online = self._online
        findings = online["findings"]
        before = len(findings)
        self._step(online["order"], online["state"], event, findings)
        online["events"] += 1
        online["threads"].add(event.thread)
        return findings[before:]

    def flush(self) -> AnalysisResult:
        online = self._online
        if online is None:
            # Nothing was fed: the base-class contract ("each call covers
            # everything currently in the view") is served by the batch
            # fallback over the view's snapshot.
            return super().flush()
        order = online["order"]
        state = online["state"]
        view = self._stream_view
        result = AnalysisResult(
            analysis=self.name,
            trace_name=getattr(view, "name", "stream"),
            trace_events=online["events"],
            trace_threads=len(online["threads"]),
            backend=self._backend_name(),
            findings=list(online["findings"]),
            elapsed_seconds=time.perf_counter() - online["started"],
            insert_count=order.insert_count,
            delete_count=order.delete_count,
            query_count=order.query_count,
        )
        result.details["sw_edges"] = state.sw_edges
        result.details["plain_accesses"] = state.plain_accesses
        return result

    # ------------------------------------------------------------------ #
    # Synchronizes-with edges
    # ------------------------------------------------------------------ #
    @staticmethod
    def _handle_atomic(order: InstrumentedOrder, last_release: Dict[object, Event],
                       event: Event) -> int:
        """Create the synchronizes-with edge for an atomic access."""
        inserted = 0
        memory_order = event.memory_order
        is_acquire = memory_order is not None and memory_order.is_acquire
        is_release = memory_order is not None and memory_order.is_release
        if event.is_read and is_acquire:
            head = last_release.get(event.variable)
            if head is not None and head.thread != event.thread:
                if insert_ordering(order, head.node, event.node):
                    inserted += 1
        if event.is_write and is_release:
            last_release[event.variable] = event
        elif event.is_write and not is_release:
            # A relaxed write breaks the release sequence headed by an older
            # release write of another thread.
            head = last_release.get(event.variable)
            if head is not None and head.thread != event.thread:
                last_release.pop(event.variable, None)
        return inserted

    @staticmethod
    def _handle_lock(order: InstrumentedOrder, last_release: Dict[object, Event],
                     event: Event) -> int:
        inserted = 0
        if event.kind is EventKind.ACQUIRE:
            head = last_release.get(("lock", event.variable))
            if head is not None and head.thread != event.thread:
                if insert_ordering(order, head.node, event.node):
                    inserted += 1
        else:
            last_release[("lock", event.variable)] = event
        return inserted

    # ------------------------------------------------------------------ #
    # Race checks
    # ------------------------------------------------------------------ #
    def _check_races(self, order: InstrumentedOrder, state: _DetectorState,
                     event: Event, findings: List[C11Race]) -> None:
        per_thread = state.last_accesses.setdefault(event.variable, {})
        for thread, history in per_thread.items():
            if thread == event.thread:
                continue
            for previous in history:
                if not (previous.is_write or event.is_write):
                    continue
                if order.reachable(previous.node, event.node):
                    continue
                key = (event.variable, previous.thread, event.thread)
                if not self._report_all and key in state.reported:
                    continue
                state.reported.add(key)
                findings.append(C11Race(previous, event))
        history = per_thread.setdefault(event.thread, [])
        # Keep only the most recent write and the most recent read per thread;
        # earlier ones are subsumed for race-reporting purposes.
        history[:] = [e for e in history if e.is_write != event.is_write][-1:]
        history.append(event)


def detect_c11_races(trace: Trace, backend="vc", **kwargs) -> AnalysisResult:
    """Convenience wrapper: run C11 race detection over ``trace``."""
    return C11RaceAnalysis(backend, **kwargs).run(trace)
