"""C11 data-race detection (Table 6 of the paper).

C11Tester [23] constructs an execution of a C/C++11 program one event at a
time; while doing so it maintains the happens-before relation (program order
plus synchronizes-with edges created by release/acquire atomics) and flags a
data race whenever two conflicting *plain* accesses are unordered.

The important characteristic for the data-structure comparison is that the
workload is essentially *streaming*: new orderings almost always target the
event currently being processed, and most of them require no propagation at
all.  That is why the paper finds plain Vector Clocks competitive here (and
ahead of tree-based structures on several benchmarks) -- the reproduction
keeps that behaviour observable by processing events strictly in trace
order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analyses.common.base import Analysis, AnalysisResult
from repro.analyses.common.hb import insert_ordering
from repro.core.instrumented import InstrumentedOrder
from repro.trace.event import Event, EventKind
from repro.trace.trace import Trace


@dataclass(frozen=True)
class C11Race:
    """A data race between two plain (non-atomic) accesses."""

    first: Event
    second: Event

    @property
    def variable(self):
        """The shared variable both accesses touch."""
        return self.first.variable

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"C11 race on {self.variable}: {self.first} || {self.second}"


class C11RaceAnalysis(Analysis):
    """C11Tester-style streaming race detection over atomics histories.

    Parameters
    ----------
    backend:
        Partial-order backend name or instance.
    report_all:
        When ``False`` (default) at most one race per variable pair of
        threads is reported, mirroring the deduplication real detectors do.
    """

    name = "c11-races"

    def __init__(self, backend="vc", report_all: bool = False,
                 **backend_kwargs) -> None:
        super().__init__(backend, **backend_kwargs)
        self._report_all = report_all

    # ------------------------------------------------------------------ #
    def _run(self, trace: Trace, order: InstrumentedOrder,
             result: AnalysisResult) -> None:
        # Per atomic variable: the last release-write (or RMW) event, which
        # heads the release sequence subsequent acquire reads synchronise with.
        last_release: Dict[object, Event] = {}
        # Per plain variable and thread: last access events, used for race checks.
        last_accesses: Dict[object, Dict[int, List[Event]]] = {}
        reported: set = set()
        sw_edges = 0

        for event in trace:
            if event.atomic:
                sw_edges += self._handle_atomic(order, last_release, event)
            elif event.is_access:
                self._check_races(order, last_accesses, reported, event, result)
            elif event.kind in (EventKind.ACQUIRE, EventKind.RELEASE):
                # Lock operations behave like acquire/release atomics on the
                # lock object.
                sw_edges += self._handle_lock(order, last_release, event)
        result.details["sw_edges"] = sw_edges
        result.details["plain_accesses"] = sum(
            len(events) for per_thread in last_accesses.values()
            for events in per_thread.values()
        )

    # ------------------------------------------------------------------ #
    # Synchronizes-with edges
    # ------------------------------------------------------------------ #
    @staticmethod
    def _handle_atomic(order: InstrumentedOrder, last_release: Dict[object, Event],
                       event: Event) -> int:
        """Create the synchronizes-with edge for an atomic access."""
        inserted = 0
        memory_order = event.memory_order
        is_acquire = memory_order is not None and memory_order.is_acquire
        is_release = memory_order is not None and memory_order.is_release
        if event.is_read and is_acquire:
            head = last_release.get(event.variable)
            if head is not None and head.thread != event.thread:
                if insert_ordering(order, head.node, event.node):
                    inserted += 1
        if event.is_write and is_release:
            last_release[event.variable] = event
        elif event.is_write and not is_release:
            # A relaxed write breaks the release sequence headed by an older
            # release write of another thread.
            head = last_release.get(event.variable)
            if head is not None and head.thread != event.thread:
                last_release.pop(event.variable, None)
        return inserted

    @staticmethod
    def _handle_lock(order: InstrumentedOrder, last_release: Dict[object, Event],
                     event: Event) -> int:
        inserted = 0
        if event.kind is EventKind.ACQUIRE:
            head = last_release.get(("lock", event.variable))
            if head is not None and head.thread != event.thread:
                if insert_ordering(order, head.node, event.node):
                    inserted += 1
        else:
            last_release[("lock", event.variable)] = event
        return inserted

    # ------------------------------------------------------------------ #
    # Race checks
    # ------------------------------------------------------------------ #
    def _check_races(self, order: InstrumentedOrder,
                     last_accesses: Dict[object, Dict[int, List[Event]]],
                     reported: set, event: Event, result: AnalysisResult) -> None:
        per_thread = last_accesses.setdefault(event.variable, {})
        for thread, history in per_thread.items():
            if thread == event.thread:
                continue
            for previous in history:
                if not (previous.is_write or event.is_write):
                    continue
                if order.reachable(previous.node, event.node):
                    continue
                key = (event.variable, previous.thread, event.thread)
                if not self._report_all and key in reported:
                    continue
                reported.add(key)
                result.findings.append(C11Race(previous, event))
        history = per_thread.setdefault(event.thread, [])
        # Keep only the most recent write and the most recent read per thread;
        # earlier ones are subsumed for race-reporting purposes.
        history[:] = [e for e in history if e.is_write != event.is_write][-1:]
        history.append(event)


def detect_c11_races(trace: Trace, backend="vc", **kwargs) -> AnalysisResult:
    """Convenience wrapper: run C11 race detection over ``trace``."""
    return C11RaceAnalysis(backend, **kwargs).run(trace)
