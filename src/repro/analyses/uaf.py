"""Use-after-free constraint generation (Table 5 of the paper).

UFO [19] predicts use-after-free vulnerabilities by encoding candidate
free/use pairs as SMT queries over ordering variables.  The expensive
partial-order work happens *before* the solver is invoked: the analysis
computes, for every candidate, the cone of events that any witness must
execute and the ordering constraints those events impose; the paper measures
exactly this query-generation time and so do we.

Findings are :class:`ConstraintQuery` objects -- a symbolic description of
the SMT query that would be emitted -- rather than solver verdicts, so the
analysis has no SMT dependency while exercising the same partial-order
operation mix (predecessor queries per thread, reachability pruning, and
reads-from saturation inserts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analyses.common.base import Analysis, AnalysisResult
from repro.analyses.common.hb import build_sync_order
from repro.analyses.common.saturation import CycleDetected, SaturationEngine
from repro.core.instrumented import InstrumentedOrder
from repro.trace.columns import ALLOC_CODE, FREE_CODE
from repro.trace.event import Event
from repro.trace.trace import Trace


@dataclass(frozen=True)
class OrderingConstraint:
    """A single ordering constraint ``before -> after`` of an SMT query."""

    before: Tuple[int, int]
    after: Tuple[int, int]
    reason: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.before} < {self.after} ({self.reason})"


@dataclass(frozen=True)
class ConstraintQuery:
    """The symbolic SMT query generated for one candidate free/use pair."""

    free: Event
    use: Event
    cone_sizes: Tuple[Tuple[int, int], ...]
    constraints: Tuple[OrderingConstraint, ...] = field(default_factory=tuple)

    @property
    def address(self):
        """The heap object involved."""
        return self.free.variable

    @property
    def constraint_count(self) -> int:
        return len(self.constraints)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"UAF query on {self.address}: {self.constraint_count} constraints, "
            f"cone={dict(self.cone_sizes)}"
        )


class UseAfterFreeAnalysis(Analysis):
    """UFO-style use-after-free query generation.

    Parameters
    ----------
    backend:
        Partial-order backend name or instance.
    max_candidates:
        Optional cap on the number of candidate pairs encoded.
    cone_window:
        Per-thread bound on how many cone events are encoded into the query
        (keeps query sizes independent of the trace length, as UFO's window
        slicing does).
    """

    name = "use-after-free"

    def __init__(self, backend="incremental-csst",
                 max_candidates: Optional[int] = None,
                 cone_window: int = 40, **backend_kwargs) -> None:
        super().__init__(backend, **backend_kwargs)
        self._max_candidates = max_candidates
        self._cone_window = cone_window

    # ------------------------------------------------------------------ #
    def _run(self, trace: Trace, order: InstrumentedOrder,
             result: AnalysisResult) -> None:
        sync_edges = build_sync_order(trace, order)
        engine = SaturationEngine(order, trace.writes_by_variable())
        try:
            saturation_edges = engine.saturate(trace.reads_from())
        except CycleDetected:
            result.details["closure_cycle"] = True
            saturation_edges = 0
        result.details["sync_edges"] = sync_edges
        result.details["saturation_edges"] = saturation_edges

        candidates = self._candidates(trace)
        result.details["candidates"] = len(candidates)
        reads_from = trace.reads_from()
        total_constraints = 0
        for free, use in candidates:
            if self._max_candidates is not None and len(result.findings) >= self._max_candidates:
                break
            query = self._encode(trace, order, free, use, reads_from)
            if query is not None:
                total_constraints += query.constraint_count
                result.findings.append(query)
        result.details["constraints_generated"] = total_constraints

    # ------------------------------------------------------------------ #
    # Candidate enumeration
    # ------------------------------------------------------------------ #
    @staticmethod
    def _candidates(trace: Trace) -> List[Tuple[Event, Event]]:
        # The scan runs over the columnar view: kind codes and interned
        # address ids classify each event without touching its Event object;
        # only allocs, frees and uses of allocated addresses materialise one.
        columns = trace.columns()
        kinds = columns.kinds
        var_ids = columns.var_ids
        access_flags = columns.access_flags
        events = columns.events
        frees: Dict[int, List[Event]] = {}
        uses: Dict[int, List[Event]] = {}
        allocated = set()
        for position in range(len(columns)):
            code = kinds[position]
            if code == ALLOC_CODE:
                allocated.add(var_ids[position])
            elif code == FREE_CODE:
                frees.setdefault(var_ids[position], []).append(events[position])
            elif access_flags[position] and var_ids[position] in allocated:
                uses.setdefault(var_ids[position], []).append(events[position])
        pairs: List[Tuple[Event, Event]] = []
        for address_id, free_events in frees.items():
            use_events = uses.get(address_id, ())
            for free in free_events:
                for use in use_events:
                    if use.thread != free.thread:
                        pairs.append((free, use))
        return pairs

    # ------------------------------------------------------------------ #
    # Query encoding
    # ------------------------------------------------------------------ #
    def _encode(self, trace: Trace, order: InstrumentedOrder, free: Event,
                use: Event, reads_from) -> Optional[ConstraintQuery]:
        """Encode the candidate as a constraint query, or return ``None`` if
        the partial order already rules the candidate out."""
        if order.reachable(use.node, free.node):
            return None
        cone = self._cone(trace, order, free, use)
        constraints: List[OrderingConstraint] = [
            OrderingConstraint(free.node, use.node, "target order")
        ]
        columns = trace.columns()
        read_flags = columns.read_flags
        events = columns.events
        positions_by_thread = columns.thread_positions
        for thread, limit in cone.items():
            window_start = max(0, limit + 1 - self._cone_window)
            positions = positions_by_thread.get(thread, ())
            for position in positions[window_start : limit + 1]:
                # Non-reads drop on the one-byte flag, no Event touched.
                if not read_flags[position]:
                    continue
                event = events[position]
                writer = reads_from.get(event)
                if writer is None:
                    continue
                if writer.index <= cone.get(writer.thread, -1) or writer is free:
                    if writer.thread != event.thread:
                        constraints.append(
                            OrderingConstraint(writer.node, event.node, "reads-from")
                        )
                else:
                    # The writer is outside the cone: the witness cannot
                    # execute this read consistently, so prune the candidate.
                    return None
        cone_sizes = tuple(sorted(cone.items()))
        return ConstraintQuery(free, use, cone_sizes, tuple(constraints))

    def _cone(self, trace: Trace, order: InstrumentedOrder, free: Event,
              use: Event) -> Dict[int, int]:
        """Latest event index per thread that the witness must execute."""
        cone: Dict[int, int] = {}
        for thread in trace.threads:
            best = -1
            for anchor in (free, use):
                if thread == anchor.thread:
                    best = max(best, anchor.index)
                    continue
                predecessor = order.predecessor(anchor.node, thread)
                if predecessor is not None:
                    best = max(best, predecessor)
            if best >= 0:
                cone[thread] = best
        return cone


def generate_uaf_queries(trace: Trace, backend="incremental-csst",
                         **kwargs) -> AnalysisResult:
    """Convenience wrapper: run UFO-style query generation over ``trace``."""
    return UseAfterFreeAnalysis(backend, **kwargs).run(trace)
