"""Root-causing linearizability violations (Table 7 of the paper).

The analysis of Çirisci et al. [12] explains why a concurrent-object history
is not linearizable.  Its engine is a search over *commit orders*: it
repeatedly picks a minimal pending operation whose response matches the
sequential specification, records the tentative ordering decisions in a
partial order, and -- when it runs into a dead end -- backtracks, *deleting*
the orderings it speculated.  This is the one analysis of the evaluation
whose partial order is fully dynamic (insertions *and* deletions), which is
why its baselines are plain graphs and why CSSTs shine there.

The reproduction implements that engine over histories of three sequential
specifications (set, queue, register), reports whether the history is
linearizable, and, when it is not, returns the *blocking window*: the set of
pending operations over which the search could make no further progress --
the root cause handed to the user.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analyses.common.base import Analysis, AnalysisResult
from repro.analyses.common.hb import insert_ordering
from repro.core.instrumented import InstrumentedOrder
from repro.errors import AnalysisError, TraceError
from repro.trace.event import Event, EventKind
from repro.trace.trace import Trace

Node = Tuple[int, int]


# --------------------------------------------------------------------------- #
# Operations and histories
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Operation:
    """One method invocation of the concurrent object."""

    thread: int
    ordinal: int          #: position among the thread's operations
    name: str
    argument: object
    result: object
    begin: Event
    end: Event

    @property
    def begin_node(self) -> Node:
        return self.begin.node

    @property
    def end_node(self) -> Node:
        return self.end.node

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"T{self.thread}:{self.name}({self.argument}) -> {self.result}"


@dataclass(frozen=True)
class Violation:
    """A linearizability violation together with its blocking window."""

    blocking: Tuple[Operation, ...]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        ops = ", ".join(str(op) for op in self.blocking)
        return f"linearizability violation; blocking window: [{ops}]"


def extract_operations(trace: Trace) -> List[Operation]:
    """Pair up begin/end events into operations, per thread."""
    operations: List[Operation] = []
    pending: Dict[int, Event] = {}
    ordinals: Dict[int, int] = {}
    for event in trace:
        if event.kind is EventKind.BEGIN:
            if event.thread in pending:
                raise TraceError(
                    f"thread {event.thread} begins {event.operation!r} while an "
                    "operation is still pending"
                )
            pending[event.thread] = event
        elif event.kind is EventKind.END:
            begin = pending.pop(event.thread, None)
            if begin is None or begin.operation != event.operation:
                raise TraceError(
                    f"unmatched end event {event} (pending begin: {begin})"
                )
            ordinal = ordinals.get(event.thread, 0)
            ordinals[event.thread] = ordinal + 1
            operations.append(
                Operation(
                    thread=event.thread,
                    ordinal=ordinal,
                    name=begin.operation,
                    argument=begin.argument,
                    result=event.result,
                    begin=begin,
                    end=event,
                )
            )
    if pending:
        raise TraceError(f"operations never completed: {sorted(pending)}")
    return operations


# --------------------------------------------------------------------------- #
# Sequential specifications
# --------------------------------------------------------------------------- #
class SequentialSpec:
    """A sequential specification: immutable-state ``apply`` semantics."""

    name = "spec"

    def initial_state(self):
        raise NotImplementedError

    def apply(self, state, operation: Operation):
        """Return ``(expected_result, next_state)`` for ``operation``."""
        raise NotImplementedError


class SetSpec(SequentialSpec):
    """A mathematical set with ``add`` / ``remove`` / ``contains``."""

    name = "set"

    def initial_state(self):
        return frozenset()

    def apply(self, state, operation: Operation):
        key = operation.argument
        if operation.name == "add":
            return key not in state, state | {key}
        if operation.name == "remove":
            return key in state, state - {key}
        if operation.name == "contains":
            return key in state, state
        raise AnalysisError(f"set spec does not define operation {operation.name!r}")


class QueueSpec(SequentialSpec):
    """A FIFO queue with ``enqueue`` / ``dequeue``."""

    name = "queue"

    def initial_state(self):
        return ()

    def apply(self, state, operation: Operation):
        if operation.name == "enqueue":
            return True, state + (operation.argument,)
        if operation.name == "dequeue":
            if not state:
                return None, state
            return state[0], state[1:]
        raise AnalysisError(f"queue spec does not define operation {operation.name!r}")


class RegisterSpec(SequentialSpec):
    """A single-value register with ``write`` / ``read``."""

    name = "register"

    def __init__(self, initial_value: int = 0) -> None:
        self._initial_value = initial_value

    def initial_state(self):
        return self._initial_value

    def apply(self, state, operation: Operation):
        if operation.name == "write":
            return True, operation.argument
        if operation.name == "read":
            return state, state
        raise AnalysisError(
            f"register spec does not define operation {operation.name!r}"
        )


SPECS = {"set": SetSpec, "queue": QueueSpec, "register": RegisterSpec}


# --------------------------------------------------------------------------- #
# The analysis
# --------------------------------------------------------------------------- #
@dataclass
class _Frame:
    """One speculation level of the commit-order search."""

    operation: Operation
    previous_state: object
    inserted_edges: List[Tuple[Node, Node]] = field(default_factory=list)
    tried: set = field(default_factory=set)


class LinearizabilityAnalysis(Analysis):
    """Commit-order search with backtracking over a fully dynamic order.

    Parameters
    ----------
    backend:
        A backend that supports deletion (``"csst"`` or ``"graph"``).
    spec:
        Name of the sequential specification (``"set"``, ``"queue"``,
        ``"register"``) or a :class:`SequentialSpec` instance.
    max_steps:
        Bound on commit/backtrack steps; exceeded searches report an
        ``"unknown"`` verdict instead of running forever.
    """

    name = "linearizability"
    requires_deletion = True

    def __init__(self, backend="csst", spec="set", max_steps: int = 200_000,
                 **backend_kwargs) -> None:
        super().__init__(backend, **backend_kwargs)
        if isinstance(spec, str):
            try:
                spec = SPECS[spec]()
            except KeyError:
                raise AnalysisError(f"unknown sequential spec {spec!r}") from None
        self._spec = spec
        self._max_steps = max_steps

    # ------------------------------------------------------------------ #
    def _run(self, trace: Trace, order: InstrumentedOrder,
             result: AnalysisResult) -> None:
        operations = extract_operations(trace)
        per_thread: Dict[int, List[Operation]] = {}
        for operation in operations:
            per_thread.setdefault(operation.thread, []).append(operation)
        result.details["operations"] = len(operations)

        realtime_edges = self._insert_realtime_order(trace, order, operations)
        result.details["realtime_edges"] = realtime_edges

        verdict, blocking, steps = self._search(order, per_thread)
        result.details["verdict"] = verdict
        result.details["steps"] = steps
        if verdict == "violation":
            result.findings.append(Violation(tuple(blocking)))

    # ------------------------------------------------------------------ #
    # Real-time order
    # ------------------------------------------------------------------ #
    @staticmethod
    def _insert_realtime_order(trace: Trace, order: InstrumentedOrder,
                               operations: Sequence[Operation]) -> int:
        """Insert the (covering) real-time order between operations.

        For every operation ``o`` and every other thread, an edge is added
        from the end of the latest operation of that thread that returned
        before ``o`` was invoked.  Together with program order this implies
        the full real-time order.
        """
        inserted = 0
        # Global position of every event, to compare across threads.
        position = {event.node: index for index, event in enumerate(trace)}
        last_completed: Dict[int, Operation] = {}
        ordered_by_begin = sorted(operations, key=lambda op: position[op.begin_node])
        completed = sorted(operations, key=lambda op: position[op.end_node])
        completed_cursor = 0
        for operation in ordered_by_begin:
            begin_position = position[operation.begin_node]
            while (completed_cursor < len(completed)
                   and position[completed[completed_cursor].end_node] < begin_position):
                finished = completed[completed_cursor]
                last_completed[finished.thread] = finished
                completed_cursor += 1
            for thread, finished in last_completed.items():
                if thread == operation.thread:
                    continue
                if insert_ordering(order, finished.end_node, operation.begin_node):
                    inserted += 1
        return inserted

    # ------------------------------------------------------------------ #
    # Commit-order search
    # ------------------------------------------------------------------ #
    def _search(self, order: InstrumentedOrder,
                per_thread: Dict[int, List[Operation]]):
        pointers = {thread: 0 for thread in per_thread}
        state = self._spec.initial_state()
        stack: List[_Frame] = []
        steps = 0

        def frontier() -> List[Operation]:
            ops = []
            for thread, pointer in pointers.items():
                if pointer < len(per_thread[thread]):
                    ops.append(per_thread[thread][pointer])
            return ops

        tried_at_level: set = set()
        while True:
            steps += 1
            if steps > self._max_steps:
                return "unknown", [], steps
            pending = frontier()
            if not pending:
                return "linearizable", [], steps
            candidate = self._pick_candidate(order, pending, tried_at_level, state)
            if candidate is not None:
                operation, next_state = candidate
                frame = _Frame(operation, state, tried=tried_at_level)
                frame.inserted_edges = self._commit_edges(order, operation, pending)
                stack.append(frame)
                pointers[operation.thread] += 1
                state = next_state
                tried_at_level = set()
                continue
            # Dead end: no minimal pending operation matches the spec.
            if not stack:
                return "violation", pending, steps
            frame = stack.pop()
            for source, target in reversed(frame.inserted_edges):
                order.delete_edge(source, target)
            pointers[frame.operation.thread] -= 1
            state = frame.previous_state
            tried_at_level = frame.tried
            tried_at_level.add(self._key(frame.operation))

        # Unreachable.

    def _pick_candidate(self, order: InstrumentedOrder,
                        pending: Sequence[Operation], tried: set, state):
        """Return a minimal, spec-consistent, not-yet-tried pending operation
        together with the state it produces, or ``None``."""
        for operation in pending:
            if self._key(operation) in tried:
                continue
            if not self._is_minimal(order, operation, pending):
                continue
            expected, next_state = self._spec.apply(state, operation)
            if expected == operation.result:
                return operation, next_state
        return None

    @staticmethod
    def _is_minimal(order: InstrumentedOrder, operation: Operation,
                    pending: Sequence[Operation]) -> bool:
        """No other pending operation is forced (real-time or committed
        order) to linearize before ``operation``."""
        for other in pending:
            if other is operation:
                continue
            if order.reachable(other.end_node, operation.begin_node):
                return False
        return True

    @staticmethod
    def _commit_edges(order: InstrumentedOrder, operation: Operation,
                      pending: Sequence[Operation]) -> List[Tuple[Node, Node]]:
        """Record that ``operation`` linearizes before the other pending
        operations.  Returns the edges actually inserted (for undo)."""
        inserted: List[Tuple[Node, Node]] = []
        for other in pending:
            if other is operation or other.thread == operation.thread:
                continue
            source, target = operation.begin_node, other.begin_node
            if order.reachable(source, target) or order.reachable(target, source):
                continue
            order.insert_edge(source, target)
            inserted.append((source, target))
        return inserted

    @staticmethod
    def _key(operation: Operation) -> Tuple[int, int]:
        return (operation.thread, operation.ordinal)


def check_linearizability(trace: Trace, backend="csst", spec="set",
                          **kwargs) -> AnalysisResult:
    """Convenience wrapper: run the linearizability root-causing analysis."""
    return LinearizabilityAnalysis(backend, spec=spec, **kwargs).run(trace)
