"""Predictive data-race detection (Table 1 of the paper).

This reproduces the partial-order workload of the M2 race predictor [31]:
starting from an observed trace, the analysis asks -- for every pair of
conflicting accesses -- whether some *correct reordering* of the trace makes
the two accesses concurrent.  The analysis is non-streaming: establishing
the feasibility of a candidate pair inserts orderings between arbitrary
events (the saturation step of Section 1.1) and issues many reachability
queries, which is exactly the workload CSSTs accelerate.

The reproduction keeps the algorithmic skeleton that matters for the data
structure comparison (sync-order construction, reads-from saturation,
candidate enumeration, witness cone feasibility checks) and omits M2's
engineering around trace ideals, which does not change the pattern of
partial-order operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analyses.common.base import Analysis, AnalysisResult
from repro.analyses.common.hb import build_sync_order, conflicting_pairs
from repro.analyses.common.saturation import CycleDetected, SaturationEngine
from repro.core.instrumented import InstrumentedOrder
from repro.trace.event import Event
from repro.trace.trace import Trace


@dataclass(frozen=True)
class Race:
    """A predicted data race between two conflicting accesses."""

    first: Event
    second: Event

    @property
    def variable(self):
        """The shared variable both accesses touch."""
        return self.first.variable

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"race on {self.variable}: {self.first} || {self.second}"


class RacePredictionAnalysis(Analysis):
    """M2-style predictive race detection.

    Parameters
    ----------
    backend:
        Partial-order backend name or instance.
    max_candidates:
        Optional cap on the number of conflicting pairs examined (practical
        detectors bound this; benchmarks use it to control run length).
    candidate_window:
        Only consider conflicting accesses at most this many positions apart
        in the per-variable access list.
    witness_window:
        Per-thread bound on how far back in the witness cone the feasibility
        check examines enabling reads.  Real predictive detectors bound this
        window (the "ideal" in M2); it keeps the per-candidate cost
        independent of the trace length.
    """

    name = "race-prediction"

    def __init__(self, backend="incremental-csst",
                 max_candidates: Optional[int] = None,
                 candidate_window: Optional[int] = 25,
                 witness_window: int = 40, **backend_kwargs) -> None:
        super().__init__(backend, **backend_kwargs)
        self._max_candidates = max_candidates
        self._candidate_window = candidate_window
        self._witness_window = witness_window

    # ------------------------------------------------------------------ #
    def _run(self, trace: Trace, order: InstrumentedOrder,
             result: AnalysisResult) -> None:
        # Phase 1: sound closure of the observed trace -- sync order plus
        # reads-from saturation.
        sync_edges = build_sync_order(trace, order)
        engine = SaturationEngine(order, trace.writes_by_variable())
        try:
            saturation_edges = engine.saturate(trace.reads_from())
        except CycleDetected:
            # The observed trace itself is always feasible; a cycle can only
            # mean the caller handed us an inconsistent synthetic trace.
            result.details["closure_cycle"] = True
            saturation_edges = 0
        result.details["sync_edges"] = sync_edges
        result.details["saturation_edges"] = saturation_edges

        # Phase 2: candidate enumeration and witness checks.
        candidates = conflicting_pairs(
            trace, max_pairs=self._max_candidates,
            same_variable_window=self._candidate_window,
        )
        result.details["candidates"] = len(candidates)
        reads_from = trace.reads_from()
        writes = trace.writes_by_variable()
        locks_held = trace.locks_held_map()
        checked = 0
        for first, second in candidates:
            checked += 1
            if locks_held[first.node] & locks_held[second.node]:
                continue
            if order.ordered(first.node, second.node):
                continue
            if self._witness_feasible(trace, order, first, second, reads_from, writes):
                result.findings.append(Race(first, second))
        result.details["checked"] = checked

    # ------------------------------------------------------------------ #
    # Witness feasibility
    # ------------------------------------------------------------------ #
    def _witness_feasible(self, trace: Trace, order: InstrumentedOrder,
                          first: Event, second: Event, reads_from, writes) -> bool:
        """Check that a correct reordering witnessing the race can exist.

        The witness must execute, for every thread, the prefix of events
        that happen-before either access (its *cone*).  The race is feasible
        when every read inside the cone can still observe its writer: the
        writer is inside the cone as well, and no write that overwrites it
        is forced between the writer and the read.  Every check is a
        reachability query against the maintained partial order.

        The per-thread window scan runs over the trace's columnar view:
        non-read events are skipped on a one-byte flag without touching
        their :class:`Event` objects.
        """
        cone = self._cone(trace, order, first, second)
        columns = trace.columns()
        read_flags = columns.read_flags
        events = columns.events
        positions_by_thread = columns.thread_positions
        for thread, limit in cone.items():
            window_start = max(0, limit + 1 - self._witness_window)
            positions = positions_by_thread.get(thread, ())
            for position in positions[window_start : limit + 1]:
                if not read_flags[position]:
                    continue
                event = events[position]
                if event is first or event is second:
                    continue
                writer = reads_from.get(event)
                if writer is None:
                    continue
                if not self._inside_cone(cone, writer):
                    return False
                for competitor in writes.get(event.variable, ()):
                    if competitor is writer or not self._inside_cone(cone, competitor):
                        continue
                    # A competing write forced between writer and read makes
                    # the read observe the wrong value in every reordering.
                    if (
                        order.reachable(writer.node, competitor.node)
                        and order.reachable(competitor.node, event.node)
                    ):
                        return False
        return True

    def _cone(self, trace: Trace, order: InstrumentedOrder, first: Event,
              second: Event) -> Dict[int, int]:
        """Latest event index per thread that must precede either access."""
        cone: Dict[int, int] = {}
        for thread in trace.threads:
            best = -1
            for anchor in (first, second):
                if thread == anchor.thread:
                    best = max(best, anchor.index - 1)
                    continue
                predecessor = order.predecessor(anchor.node, thread)
                if predecessor is not None:
                    best = max(best, predecessor)
            if best >= 0:
                cone[thread] = best
        return cone

    @staticmethod
    def _inside_cone(cone: Dict[int, int], event: Event) -> bool:
        return event.index <= cone.get(event.thread, -1)


def predict_races(trace: Trace, backend="incremental-csst",
                  **kwargs) -> AnalysisResult:
    """Convenience wrapper: run race prediction over ``trace``."""
    return RacePredictionAnalysis(backend, **kwargs).run(trace)
