"""Predictive deadlock detection (Table 2 of the paper).

This reproduces the partial-order workload of SeqCheck-style deadlock
prediction [8]: the analysis builds the lock-acquisition graph of the
observed trace, enumerates cycles (potential deadlock patterns), and then
uses partial-order reasoning to decide whether each pattern can actually be
realised by a correct reordering -- the involved acquisitions must be
mutually unordered, must not be protected by a common guard lock, and the
events establishing their enabling conditions must be consistent.

The feasibility checks are reachability queries over a partial order that
is populated with non-streaming orderings (reads-from saturation of the
enabling reads), the workload CSSTs target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analyses.common.base import Analysis, AnalysisResult
from repro.analyses.common.hb import build_sync_order, lock_graph
from repro.analyses.common.saturation import CycleDetected, SaturationEngine
from repro.core.instrumented import InstrumentedOrder
from repro.trace.event import Event
from repro.trace.trace import Trace


@dataclass(frozen=True)
class DeadlockPattern:
    """A predicted deadlock: a cyclic chain of lock acquisitions.

    ``acquisitions`` holds one ``(outer_acquire, inner_acquire)`` pair per
    participating thread: the thread holds ``outer_acquire``'s lock while
    requesting ``inner_acquire``'s lock, and the requested locks form a
    cycle across the participating threads.
    """

    acquisitions: Tuple[Tuple[Event, Event], ...]

    @property
    def locks(self) -> Tuple:
        """The locks participating in the cycle."""
        return tuple(outer.variable for outer, _inner in self.acquisitions)

    @property
    def threads(self) -> Tuple[int, ...]:
        """The threads participating in the cycle."""
        return tuple(outer.thread for outer, _inner in self.acquisitions)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = " ; ".join(
            f"T{outer.thread} holds {outer.variable} wants {inner.variable}"
            for outer, inner in self.acquisitions
        )
        return f"deadlock: {parts}"


class DeadlockPredictionAnalysis(Analysis):
    """SeqCheck-style predictive deadlock detection.

    Parameters
    ----------
    backend:
        Partial-order backend name or instance.
    max_patterns:
        Optional cap on the number of candidate lock cycles examined.
    """

    name = "deadlock-prediction"

    def __init__(self, backend="incremental-csst",
                 max_patterns: Optional[int] = None, **backend_kwargs) -> None:
        super().__init__(backend, **backend_kwargs)
        self._max_patterns = max_patterns

    # ------------------------------------------------------------------ #
    def _run(self, trace: Trace, order: InstrumentedOrder,
             result: AnalysisResult) -> None:
        # The predictive order deliberately omits the observed lock order of
        # the candidate locks (the whole point is to reorder critical
        # sections), but keeps fork/join and the reads-from saturation that
        # any correct reordering must respect.
        sync_edges = build_sync_order(trace, order, include_locks=False)
        engine = SaturationEngine(order, trace.writes_by_variable())
        try:
            saturation_edges = engine.saturate(trace.reads_from())
        except CycleDetected:
            result.details["closure_cycle"] = True
            saturation_edges = 0
        result.details["sync_edges"] = sync_edges
        result.details["saturation_edges"] = saturation_edges

        graph = lock_graph(trace)
        candidates = self._candidate_cycles(graph)
        result.details["candidates"] = len(candidates)
        for pattern in candidates:
            if self._max_patterns is not None and len(result.findings) >= self._max_patterns:
                break
            if self._realisable(trace, order, pattern):
                result.findings.append(DeadlockPattern(tuple(pattern)))

    # ------------------------------------------------------------------ #
    # Candidate enumeration
    # ------------------------------------------------------------------ #
    @staticmethod
    def _candidate_cycles(graph) -> List[List[Tuple[Event, Event]]]:
        """Enumerate two-lock cycles from the lock-acquisition graph.

        Longer cycles exist in principle but two-lock cycles dominate real
        deadlocks and the corresponding benchmark suites; the feasibility
        machinery is identical for longer cycles.
        """
        candidates: List[List[Tuple[Event, Event]]] = []
        locks = sorted(graph, key=str)
        for position, lock_a in enumerate(locks):
            for lock_b in locks[position + 1 :]:
                forward = graph.get(lock_a, {}).get(lock_b, [])
                backward = graph.get(lock_b, {}).get(lock_a, [])
                for outer_a, inner_a in forward:
                    for outer_b, inner_b in backward:
                        if outer_a.thread == outer_b.thread:
                            continue
                        candidates.append([(outer_a, inner_a), (outer_b, inner_b)])
        return candidates

    # ------------------------------------------------------------------ #
    # Feasibility
    # ------------------------------------------------------------------ #
    def _realisable(self, trace: Trace, order: InstrumentedOrder,
                    pattern: Sequence[Tuple[Event, Event]]) -> bool:
        """Can the candidate cycle be realised by a correct reordering?

        Requirements (standard for sound deadlock prediction):

        * the requesting acquisitions are pairwise unordered in the
          predictive partial order (they can be co-enabled);
        * the threads hold no common *guard* lock at the requesting points
          (a common guard serialises the pattern);
        * the outer acquisition of each thread is not ordered after another
          thread's inner request (otherwise the hold-and-wait state cannot
          be reached simultaneously).
        """
        requests = [inner for _outer, inner in pattern]
        for i, first in enumerate(requests):
            for second in requests[i + 1 :]:
                if order.ordered(first.node, second.node):
                    return False
        held_sets = []
        cycle_locks = {outer.variable for outer, _inner in pattern}
        for _outer, inner in pattern:
            held = trace.locks_held_at(inner) - cycle_locks
            held_sets.append(held)
        for i, first_held in enumerate(held_sets):
            for second_held in held_sets[i + 1 :]:
                if first_held & second_held:
                    return False
        for outer, _inner in pattern:
            for _other_outer, other_inner in pattern:
                if outer.thread == other_inner.thread:
                    continue
                if order.reachable(other_inner.node, outer.node):
                    return False
        return True


def predict_deadlocks(trace: Trace, backend="incremental-csst",
                      **kwargs) -> AnalysisResult:
    """Convenience wrapper: run deadlock prediction over ``trace``."""
    return DeadlockPredictionAnalysis(backend, **kwargs).run(trace)
