"""The seven dynamic analyses of the paper's evaluation (Section 5).

Every analysis is written against the generic
:class:`~repro.core.PartialOrder` interface, so any backend -- CSSTs,
Segment Trees, Vector Clocks, plain graphs -- can be plugged in, exactly as
in the paper's comparison.

==============================================  =====================
Module                                           Paper table
==============================================  =====================
:mod:`repro.analyses.race_prediction`            Table 1
:mod:`repro.analyses.deadlock`                   Table 2
:mod:`repro.analyses.membug`                     Table 3
:mod:`repro.analyses.tso`                        Table 4
:mod:`repro.analyses.uaf`                        Table 5
:mod:`repro.analyses.c11`                        Table 6
:mod:`repro.analyses.linearizability`            Table 7
==============================================  =====================
"""

from repro.analyses.c11 import C11Race, C11RaceAnalysis, detect_c11_races
from repro.analyses.common import Analysis, AnalysisResult
from repro.analyses.deadlock import (
    DeadlockPattern,
    DeadlockPredictionAnalysis,
    predict_deadlocks,
)
from repro.analyses.linearizability import (
    LinearizabilityAnalysis,
    Operation,
    QueueSpec,
    RegisterSpec,
    SetSpec,
    Violation,
    check_linearizability,
    extract_operations,
)
from repro.analyses.membug import MemoryBug, MemoryBugAnalysis, predict_memory_bugs
from repro.analyses.race_prediction import Race, RacePredictionAnalysis, predict_races
from repro.analyses.tso import (
    InconsistencyWitness,
    TSOConsistencyAnalysis,
    check_tso_consistency,
)
from repro.analyses.uaf import (
    ConstraintQuery,
    OrderingConstraint,
    UseAfterFreeAnalysis,
    generate_uaf_queries,
)

__all__ = [
    "Analysis",
    "AnalysisResult",
    "C11Race",
    "C11RaceAnalysis",
    "ConstraintQuery",
    "DeadlockPattern",
    "DeadlockPredictionAnalysis",
    "InconsistencyWitness",
    "LinearizabilityAnalysis",
    "MemoryBug",
    "MemoryBugAnalysis",
    "Operation",
    "OrderingConstraint",
    "QueueSpec",
    "Race",
    "RacePredictionAnalysis",
    "RegisterSpec",
    "SetSpec",
    "TSOConsistencyAnalysis",
    "UseAfterFreeAnalysis",
    "Violation",
    "check_linearizability",
    "check_tso_consistency",
    "detect_c11_races",
    "extract_operations",
    "generate_uaf_queries",
    "predict_deadlocks",
    "predict_memory_bugs",
    "predict_races",
]
