"""Predictive concurrency memory-bug detection (Table 3 of the paper).

This reproduces the partial-order workload of ConVulPOE [39]: the analysis
looks for memory bugs -- use-after-free and double-free -- that are not
present in the observed trace but can be exposed by a correct reordering.
Candidates are pairs of a ``free`` and another access (or another ``free``)
to the same heap object from a different thread; a candidate is reported
when the dangerous order (use after free / second free after first) is not
excluded by the predictive partial order and the enabling reads of both
events can still observe their writers.

As with race prediction, the feasibility reasoning inserts saturation
orderings between arbitrary trace events and issues many reachability
queries -- the non-streaming pattern CSSTs target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analyses.common.base import Analysis, AnalysisResult
from repro.analyses.common.hb import build_sync_order
from repro.analyses.common.saturation import CycleDetected, SaturationEngine
from repro.core.instrumented import InstrumentedOrder
from repro.trace.event import Event, EventKind
from repro.trace.trace import Trace


@dataclass(frozen=True)
class MemoryBug:
    """A predicted memory bug."""

    kind: str  #: ``"use-after-free"`` or ``"double-free"``
    free: Event
    access: Event

    @property
    def address(self):
        """The heap object involved."""
        return self.free.variable

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind} on {self.address}: {self.free} / {self.access}"


class MemoryBugAnalysis(Analysis):
    """ConVulPOE-style prediction of use-after-free and double-free bugs.

    Parameters
    ----------
    backend:
        Partial-order backend name or instance.
    max_candidates:
        Optional cap on the number of candidate pairs examined.
    enabling_window:
        Per-candidate bound on how many events of the access's thread prefix
        are examined for enabling reads (keeps per-candidate cost independent
        of the trace length, as practical tools do).
    """

    name = "memory-bugs"

    def __init__(self, backend="incremental-csst",
                 max_candidates: Optional[int] = None,
                 enabling_window: int = 40, **backend_kwargs) -> None:
        super().__init__(backend, **backend_kwargs)
        self._max_candidates = max_candidates
        self._enabling_window = enabling_window

    # ------------------------------------------------------------------ #
    def _run(self, trace: Trace, order: InstrumentedOrder,
             result: AnalysisResult) -> None:
        sync_edges = build_sync_order(trace, order)
        engine = SaturationEngine(order, trace.writes_by_variable())
        try:
            saturation_edges = engine.saturate(trace.reads_from())
        except CycleDetected:
            result.details["closure_cycle"] = True
            saturation_edges = 0
        result.details["sync_edges"] = sync_edges
        result.details["saturation_edges"] = saturation_edges

        frees, accesses = self._heap_events(trace)
        candidates = self._candidates(frees, accesses)
        result.details["candidates"] = len(candidates)
        reads_from = trace.reads_from()
        locks_held = trace.locks_held_map()
        for kind, free, access in candidates:
            if self._max_candidates is not None and len(result.findings) >= self._max_candidates:
                break
            if self._feasible(trace, order, free, access, reads_from, locks_held):
                result.findings.append(MemoryBug(kind, free, access))

    # ------------------------------------------------------------------ #
    # Candidate enumeration
    # ------------------------------------------------------------------ #
    @staticmethod
    def _heap_events(trace: Trace) -> Tuple[Dict[object, List[Event]],
                                            Dict[object, List[Event]]]:
        """Group free events and (non-alloc) accesses by heap address."""
        frees: Dict[object, List[Event]] = {}
        accesses: Dict[object, List[Event]] = {}
        allocated = set()
        for event in trace:
            if event.kind is EventKind.ALLOC:
                allocated.add(event.variable)
            elif event.kind is EventKind.FREE:
                frees.setdefault(event.variable, []).append(event)
            elif event.is_access and event.variable in allocated:
                accesses.setdefault(event.variable, []).append(event)
        return frees, accesses

    def _candidates(self, frees: Dict[object, List[Event]],
                    accesses: Dict[object, List[Event]]
                    ) -> List[Tuple[str, Event, Event]]:
        candidates: List[Tuple[str, Event, Event]] = []
        for address, free_events in frees.items():
            for free in free_events:
                for access in accesses.get(address, ()):
                    if access.thread != free.thread:
                        candidates.append(("use-after-free", free, access))
                for other in free_events:
                    if other is not free and other.thread != free.thread:
                        if (free.index, free.thread) < (other.index, other.thread):
                            candidates.append(("double-free", free, other))
        return candidates

    # ------------------------------------------------------------------ #
    # Feasibility
    # ------------------------------------------------------------------ #
    def _feasible(self, trace: Trace, order: InstrumentedOrder, free: Event,
                  access: Event, reads_from, locks_held) -> bool:
        """The dangerous order ``free -> access`` is feasible when the access
        is not already forced before the free, the two events are not
        serialised by a common lock, and the enabling reads of the access's
        thread prefix can still observe their writers."""
        if order.reachable(access.node, free.node):
            # The access is forced before the free in every correct
            # reordering: no bug.
            return False
        if locks_held[free.node] & locks_held[access.node]:
            return False
        # Enabling condition: every read of the access's thread prefix (up
        # to the access) whose writer lies in another thread must be able to
        # keep its writer before it even when the free is moved earlier.
        window_start = max(0, access.index - self._enabling_window)
        for event in trace.thread_events(access.thread)[window_start : access.index]:
            if not event.is_read:
                continue
            writer = reads_from.get(event)
            if writer is None or writer.thread == event.thread:
                continue
            if order.reachable(free.node, writer.node) and order.reachable(
                access.node, writer.node
            ):
                return False
        return True


def predict_memory_bugs(trace: Trace, backend="incremental-csst",
                        **kwargs) -> AnalysisResult:
    """Convenience wrapper: run memory-bug prediction over ``trace``."""
    return MemoryBugAnalysis(backend, **kwargs).run(trace)
