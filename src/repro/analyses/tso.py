"""x86-TSO consistency checking (Table 4 of the paper).

Given a trace of (atomic) writes and reads annotated with values, the
consistency-testing problem asks whether some interleaving consistent with
x86-TSO explains every read's value.  The problem is NP-complete in general;
the analysis follows the polynomial-time saturation heuristic of Roy et
al. [34]: derive all orderings that *must* hold in any witness and report an
inconsistency when they form a cycle.

The store-buffer semantics of TSO is modelled exactly as in the paper's
evaluation setup: the chain DAG has **two chains per thread** -- the
program-order chain holding every event the thread issues, and a
store-buffer chain holding one flush pseudo-event per write (flushes are
FIFO, hence totally ordered within the chain).  Cross-chain edges express

* a write being ordered before its own flush,
* reads-from edges ``flush(w) -> r`` for cross-thread observations, and
* the coherence orderings inferred by saturation.

Those inferred orderings land between arbitrary events of the trace, which
is why this analysis stresses partial-order updates deep inside the order --
the workload Table 4 shows CSSTs dominating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analyses.common.base import Analysis, AnalysisResult
from repro.core.instrumented import InstrumentedOrder
from repro.errors import AnalysisError
from repro.trace.event import Event
from repro.trace.trace import Trace

Node = Tuple[int, int]

#: Value observed by reads that precede every write of their variable.
INITIAL_VALUE = 0


@dataclass(frozen=True)
class InconsistencyWitness:
    """Evidence that the trace is not TSO-consistent: the ordering that
    closed a cycle during saturation."""

    source: Node
    target: Node
    reason: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"cycle when ordering {self.source} -> {self.target} ({self.reason})"


class TSOConsistencyAnalysis(Analysis):
    """Saturation-based x86-TSO consistency checking.

    The result's ``details["consistent"]`` field carries the verdict;
    ``findings`` holds the :class:`InconsistencyWitness` when the verdict is
    negative.
    """

    name = "tso-consistency"

    def __init__(self, backend="incremental-csst", max_rounds: int = 16,
                 **backend_kwargs) -> None:
        super().__init__(backend, **backend_kwargs)
        self._max_rounds = max_rounds

    # Two chains per thread: program order and store buffer.
    def _num_chains(self, trace: Trace) -> int:
        return max(2 * trace.num_threads, 2)

    # ------------------------------------------------------------------ #
    def _run(self, trace: Trace, order: InstrumentedOrder,
             result: AnalysisResult) -> None:
        threads = trace.threads
        thread_position = {thread: position for position, thread in enumerate(threads)}
        writes_by_value: Dict[object, Event] = {}
        writes_by_variable: Dict[object, List[Event]] = {}
        flush_node: Dict[Event, Node] = {}
        issue_node: Dict[Event, Node] = {}
        flush_counts = {thread: 0 for thread in threads}

        for event in trace:
            if not event.is_access:
                continue
            position = thread_position[event.thread]
            issue_node[event] = (2 * position, event.index)
            if event.is_write:
                if event.value in writes_by_value:
                    raise AnalysisError(
                        f"duplicate written value {event.value!r}; the TSO checker "
                        "requires unique write values to recover reads-from"
                    )
                writes_by_value[event.value] = event
                writes_by_variable.setdefault(event.variable, []).append(event)
                flush_node[event] = (2 * position + 1, flush_counts[event.thread])
                flush_counts[event.thread] += 1

        inserted = 0
        witness: Optional[InconsistencyWitness] = None

        def add(source: Node, target: Node, reason: str) -> bool:
            """Insert ``source -> target``; record a witness on cycles."""
            nonlocal inserted, witness
            if witness is not None:
                return False
            if source[0] == target[0]:
                if source[1] > target[1]:
                    witness = InconsistencyWitness(source, target, reason)
                return False
            if order.reachable(source, target):
                return False
            if order.reachable(target, source):
                witness = InconsistencyWitness(source, target, reason)
                return False
            order.insert_edge(source, target)
            inserted += 1
            return True

        # Base orderings: every write precedes its own flush.
        for write, flush in flush_node.items():
            add(issue_node[write], flush, "write before flush")

        # Reads-from edges.
        reads_from = self._recover_reads_from(trace, writes_by_value)
        for read, write in reads_from.items():
            if write is None:
                continue
            if write.thread != read.thread:
                add(flush_node[write], issue_node[read], "reads-from")
            # Same-thread early reads (store-to-load forwarding) need no edge:
            # program order already orders the write before the read.

        # Saturation: coherence-driven inference until a fixed point.
        rounds = 0
        for _ in range(self._max_rounds):
            rounds += 1
            changed = 0
            for read, write in reads_from.items():
                if witness is not None:
                    break
                changed += self._saturate_read(
                    order, add, reads_from, writes_by_variable, flush_node,
                    issue_node, read, write,
                )
            if changed == 0 or witness is not None:
                break

        result.details["consistent"] = witness is None
        result.details["inserted"] = inserted
        result.details["rounds"] = rounds
        result.details["reads"] = len(reads_from)
        result.details["writes"] = len(writes_by_value)
        if witness is not None:
            result.findings.append(witness)

    # ------------------------------------------------------------------ #
    # Reads-from recovery
    # ------------------------------------------------------------------ #
    @staticmethod
    def _recover_reads_from(trace: Trace, writes_by_value: Dict[object, Event]
                            ) -> Dict[Event, Optional[Event]]:
        """Map every read to its writer using the written values."""
        mapping: Dict[Event, Optional[Event]] = {}
        for event in trace:
            if not event.is_read:
                continue
            if event.value == INITIAL_VALUE or event.value is None:
                mapping[event] = None
                continue
            writer = writes_by_value.get(event.value)
            if writer is None or writer.variable != event.variable:
                raise AnalysisError(
                    f"read {event} observes value {event.value!r} that no write "
                    "to the same variable produced"
                )
            mapping[event] = writer
        return mapping

    # ------------------------------------------------------------------ #
    # Saturation rules
    # ------------------------------------------------------------------ #
    def _saturate_read(self, order, add, reads_from, writes_by_variable,
                       flush_node, issue_node, read: Event,
                       write: Optional[Event]) -> int:
        """Coherence rules for one read (Roy et al. heuristic):

        for every other write ``w'`` to the same variable,

        * if ``w'`` is (already) ordered before the read, its flush must be
          ordered before the writer's flush (otherwise the read would have
          observed ``w'``);
        * if the writer's flush is ordered before ``w'``'s flush, the read
          must be ordered before ``w'``'s flush.
        """
        changed = 0
        read_node = issue_node[read]
        for competitor in writes_by_variable.get(read.variable, ()):
            if competitor is write:
                continue
            competitor_flush = flush_node[competitor]
            competitor_issue = issue_node[competitor]
            if write is None:
                # Read of the initial value: no write to the variable may be
                # flushed before the read in any witness order.
                if add(read_node, competitor_flush, "initial-value read"):
                    changed += 1
                continue
            writer_flush = flush_node[write]
            before_read = self._ordered_before(order, competitor_flush, read_node) or \
                self._ordered_before(order, competitor_issue, read_node)
            if before_read and not self._ordered_before(order, competitor_flush,
                                                        writer_flush):
                if add(competitor_flush, writer_flush, "coherence (write before read)"):
                    changed += 1
            if self._ordered_before(order, writer_flush, competitor_flush):
                if not self._ordered_before(order, read_node, competitor_flush):
                    if add(read_node, competitor_flush, "coherence (read before write)"):
                        changed += 1
        return changed

    @staticmethod
    def _ordered_before(order, source: Node, target: Node) -> bool:
        if source[0] == target[0]:
            return source[1] <= target[1]
        return order.reachable(source, target)


def check_tso_consistency(trace: Trace, backend="incremental-csst",
                          **kwargs) -> AnalysisResult:
    """Convenience wrapper: run TSO consistency checking over ``trace``."""
    return TSOConsistencyAnalysis(backend, **kwargs).run(trace)
